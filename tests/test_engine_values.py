"""Unit tests for the MiniDB value model (types, coercion, comparison, rendering)."""

import pytest

from repro.engine.values import (
    SQLType,
    cast_value,
    coerce_to_declared,
    compare_values,
    declared_runtime_type,
    is_known_type,
    render_value,
    sql_type_of,
    to_boolean,
    to_number,
    values_equal,
)
from repro.errors import ConversionError, UnsupportedTypeError


class TestTypeOf:
    def test_runtime_types(self):
        assert sql_type_of(None) is SQLType.NULL
        assert sql_type_of(True) is SQLType.BOOLEAN
        assert sql_type_of(5) is SQLType.INTEGER
        assert sql_type_of(5.5) is SQLType.FLOAT
        assert sql_type_of("x") is SQLType.TEXT
        assert sql_type_of([1]) is SQLType.LIST
        assert sql_type_of({"k": 1}) is SQLType.STRUCT

    def test_declared_type_mapping(self):
        assert declared_runtime_type("VARCHAR(20)") is SQLType.TEXT
        assert declared_runtime_type("bigint") is SQLType.INTEGER
        assert declared_runtime_type("DOUBLE") is SQLType.FLOAT

    def test_unknown_type_raises(self):
        with pytest.raises(UnsupportedTypeError):
            declared_runtime_type("GEOMETRY")
        assert not is_known_type("GEOMETRY")


class TestConversions:
    def test_to_number_strict(self):
        assert to_number("42") == 42
        assert to_number("4.5") == 4.5
        with pytest.raises(ConversionError):
            to_number("abc", strict=True)

    def test_to_number_weak_typing_prefix_parse(self):
        assert to_number("abc", strict=False) == 0
        assert to_number("12abc", strict=False) == 12

    def test_to_boolean(self):
        assert to_boolean("true") is True
        assert to_boolean("f") is False
        assert to_boolean(1) is True
        with pytest.raises(ConversionError):
            to_boolean(1, accepts_integers=False)
        with pytest.raises(ConversionError):
            to_boolean("maybe")

    def test_cast_value(self):
        assert cast_value("12", "INTEGER") == 12
        assert cast_value(3.9, "INTEGER") == 3
        assert cast_value(1, "VARCHAR") == "1"
        assert cast_value(None, "INTEGER") is None

    def test_coerce_strict_vs_dynamic(self):
        assert coerce_to_declared("7", "INTEGER", strict=True) == 7
        # dynamic typing applies affinity but never fails
        assert coerce_to_declared("abc", "INTEGER", strict=False) == "abc"
        assert coerce_to_declared("7", "INTEGER", strict=False) == 7


class TestComparison:
    def test_null_propagation(self):
        assert compare_values(None, 1) is None
        assert values_equal(None, None) is None

    def test_numeric_comparison_across_int_and_float(self):
        assert compare_values(1, 1.0) == 0
        assert compare_values(2, 1.5) == 1

    def test_numbers_sort_before_text(self):
        assert compare_values(5, "abc") == -1
        assert compare_values("abc", 5) == 1

    def test_text_comparison(self):
        assert compare_values("abc", "abd") == -1

    def test_list_comparison(self):
        assert compare_values([1, 2], [1, 3]) == -1
        assert compare_values([1, 2], [1, 2]) == 0


class TestRendering:
    def test_null_and_booleans(self):
        assert render_value(None) == "NULL"
        assert render_value(True) == "True"
        assert render_value(False, style="psql") == "f"

    def test_floats_keep_decimal_point(self):
        assert render_value(4999.5) == "4999.5"
        assert render_value(31.0) == "31.0"

    def test_list_styles(self):
        assert render_value([1, 2, 3]) == "[1, 2, 3]"
        assert render_value([1, 2, 3], style="psql") == "{1,2,3}"

    def test_struct_rendering(self):
        assert render_value({"k": "key1", "v": 1}) == "{'k': key1, 'v': 1}"
