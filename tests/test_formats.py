"""The registry-driven format subsystem: registry lookup and detect_format().

The detection tests focus on the awkward cases: the ``.test`` extension is
claimed by three formats (SLT, DuckDB, MySQL) and must be disambiguated by
content, and malformed/empty content must raise instead of guessing.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.core.records import QueryRecord
from repro.errors import TestFormatError as FormatError
from repro.formats import (
    FormatParser,
    available_formats,
    detect_format,
    get_format,
    parse_test_file,
    parse_test_text,
    registered_parsers,
)

SLT_TEXT = textwrap.dedent(
    """\
    statement ok
    CREATE TABLE t1(a INTEGER, b INTEGER)

    query II rowsort
    SELECT a, b FROM t1;
    ----
    1
    2
    """
)

DUCKDB_TEXT = textwrap.dedent(
    """\
    require json

    statement ok
    CREATE TABLE t1(a INTEGER, b INTEGER)

    query II
    SELECT a, b FROM t1;
    ----
    1\t2
    """
)

MYSQL_TEXT = textwrap.dedent(
    """\
    --disable_warnings
    DROP TABLE IF EXISTS t1;
    --enable_warnings
    CREATE TABLE t1 (a INT, b INT);
    --error ER_NO_SUCH_TABLE
    SELECT * FROM missing;
    """
)

POSTGRES_TEXT = textwrap.dedent(
    """\
    \\set ON_ERROR_STOP 0
    -- a regression script comment
    CREATE TABLE t1 (a integer, b integer);
    INSERT INTO t1 VALUES (1, 2);
    SELECT a, b FROM t1;
    """
)


class TestRegistry:
    def test_all_four_formats_registered(self):
        assert {"slt", "duckdb", "postgres", "mysql"} <= set(available_formats())

    def test_aliases_resolve_to_canonical_parser(self):
        assert get_format("sqlite") is get_format("slt")
        assert get_format("postgresql") is get_format("postgres")
        assert get_format("mariadb") is get_format("mysql")
        assert "sqlite" in available_formats(include_aliases=True)

    def test_unknown_format_raises(self):
        with pytest.raises(FormatError):
            get_format("oracle")

    def test_registered_parsers_are_format_parsers(self):
        for parser in registered_parsers():
            assert isinstance(parser, FormatParser)
            assert parser.name
            assert parser.extensions


class TestDetectByContent:
    def test_detects_each_shipped_format(self):
        assert detect_format(text=SLT_TEXT).name == "slt"
        assert detect_format(text=DUCKDB_TEXT).name == "duckdb"
        assert detect_format(text=MYSQL_TEXT).name == "mysql"
        assert detect_format(text=POSTGRES_TEXT).name == "postgres"

    def test_plain_slt_prefers_slt_over_duckdb(self):
        # valid content for both SLT-family parsers; without DuckDB markers
        # the plain SLT format must win
        assert detect_format(text=SLT_TEXT).name == "slt"

    def test_tab_in_sql_text_does_not_flip_slt_to_duckdb(self):
        # tabs are ordinary whitespace in SQL; only tabs inside expected-result
        # blocks (after ----) signal DuckDB's row-wise format
        tabbed_sql = SLT_TEXT.replace("CREATE TABLE t1(a INTEGER, b INTEGER)", "CREATE TABLE t1(a INTEGER,\tb INTEGER)")
        assert detect_format(text=tabbed_sql).name == "slt"

    def test_space_separated_rows_detect_as_duckdb_without_markers(self):
        # no require/load/tabs, but the multi-column query's expected lines
        # hold one full row each — DuckDB's row-wise convention, not SLT's
        # one-value-per-line
        text = "statement ok\nCREATE TABLE t1(a INTEGER, b INTEGER)\n\nquery II\nSELECT a, b FROM t1;\n----\n1 2\n3 4\n"
        assert detect_format(text=text).name == "duckdb"

    def test_text_values_with_spaces_stay_slt(self):
        # a T column whose values contain spaces makes some lines look
        # row-shaped; the record is only row-wise if EVERY line matches
        text = "query TT\nSELECT x, y FROM t1;\n----\nhello world\nvalue\nanother value\nvalue\n"
        assert detect_format(text=text).name == "slt"

    def test_consistently_spaced_text_values_stay_slt(self):
        # every expected line is two tokens wide, but the tokens are text:
        # space-separated rows only signal DuckDB when they look numeric
        # (DuckDB's canonical multi-column rendering is tab-separated)
        text = "query TT\nSELECT x, y FROM t1;\n----\nhello world\nfoo bar\n"
        assert detect_format(text=text).name == "slt"

    def test_psql_comments_starting_with_mtr_words_stay_postgres(self):
        # "-- error cases ..." is a psql prose comment, not an mtr --error
        # directive (commands are written flush against the dashes)
        text = (
            "-- error cases are exercised below\n"
            "-- echo of the server output is compared\n"
            "CREATE TABLE t1 (a integer);\n"
            "SELECT a FROM t1;\n"
        )
        assert detect_format(text=text).name == "postgres"

    def test_pure_sql_test_file_detects_as_mysql(self, tmp_path):
        # a mysqltest script with no runner commands is just SQL; it must
        # still be claimed rather than aborting an auto-detect suite load
        path = tmp_path / "plain_sql.test"
        path.write_text("CREATE TABLE t1 (a INT);\nINSERT INTO t1 VALUES (1);\nSELECT a FROM t1;\n")
        assert detect_format(path=str(path)).name == "mysql"

        from repro.core.suite import load_suite

        suite = load_suite(str(tmp_path))
        assert len(suite.files) == 1
        assert len(suite.files[0].sql_records()) == 3

    def test_malformed_text_raises(self):
        with pytest.raises(FormatError):
            detect_format(text="%%% this is not a test file @@@\njust prose\n")

    def test_empty_text_raises(self):
        with pytest.raises(FormatError):
            detect_format(text="")

    def test_no_arguments_raises(self):
        with pytest.raises(FormatError):
            detect_format()


class TestDetectByPath:
    def test_sql_extension_is_unambiguous(self, tmp_path):
        path = tmp_path / "boolean.sql"
        path.write_text(POSTGRES_TEXT)
        assert detect_format(path=str(path)).name == "postgres"

    def test_ambiguous_test_extension_resolved_by_content(self, tmp_path):
        slt = tmp_path / "select1.test"
        slt.write_text(SLT_TEXT)
        duck = tmp_path / "aggregate.test"
        duck.write_text(DUCKDB_TEXT)
        mysql = tmp_path / "warnings.test"
        mysql.write_text(MYSQL_TEXT)
        assert detect_format(path=str(slt)).name == "slt"
        assert detect_format(path=str(duck)).name == "duckdb"
        assert detect_format(path=str(mysql)).name == "mysql"

    def test_test_slow_extension_narrows_to_duckdb(self):
        # .test_slow is claimed only by DuckDB: no content needed
        assert detect_format(path="window.test_slow").name == "duckdb"

    def test_unambiguous_extension_wins_without_sniffing(self, tmp_path):
        # a comment-only .sql file sniffs to nothing, but .sql is claimed by
        # exactly one format — the extension must decide, matching what a
        # named-format load would happily parse
        path = tmp_path / "comments_only.sql"
        path.write_text("-- just a comment\n-- and another\n")
        assert detect_format(path=str(path)).name == "postgres"

        from repro.core.suite import load_suite

        suite = load_suite(str(tmp_path))
        assert len(suite.files) == 1
        assert suite.files[0].records == []

    def test_ambiguous_extension_without_content_raises(self):
        with pytest.raises(FormatError):
            detect_format(path="no_such_file.test")

    def test_malformed_file_with_ambiguous_extension_raises(self, tmp_path):
        path = tmp_path / "garbage.test"
        path.write_text("<<<>>> binary-ish garbage\x00\x01\n")
        with pytest.raises(FormatError):
            detect_format(path=str(path))


class TestParseEntryPoints:
    def test_parse_test_text_autodetects(self):
        test_file = parse_test_text(SLT_TEXT)
        assert test_file.suite == "slt"
        assert len(test_file.records) == 2
        assert isinstance(test_file.records[1], QueryRecord)

    def test_parse_test_file_autodetects_and_pairs_companion(self, tmp_path):
        script = tmp_path / "case.sql"
        script.write_text("SELECT 1;\n")
        out = tmp_path / "case.out"
        out.write_text("SELECT 1;\n ?column? \n----------\n 1\n(1 row)\n")
        test_file = parse_test_file(str(script))
        assert test_file.suite == "postgres"
        [record] = test_file.records
        assert isinstance(record, QueryRecord)
        assert record.expected_rows == [["1"]]

    def test_legacy_transcript_keywords_still_accepted(self):
        # the seed spellings used by corpus serialization round-trips
        pg = parse_test_text("SELECT 1;\n", "postgres", out_text=None)
        assert pg.suite == "postgres"
        my = parse_test_text("SELECT 1;\n", "mysql", result_text=None)
        assert my.suite == "mysql"

    def test_load_suite_autodetects_mixed_directory(self, tmp_path):
        from repro.core.suite import load_suite

        (tmp_path / "a.slt").write_text(SLT_TEXT)
        (tmp_path / "b.sql").write_text(POSTGRES_TEXT)
        suite = load_suite(str(tmp_path))
        assert len(suite.files) == 2
        assert {test_file.suite for test_file in suite.files} == {"slt", "postgres"}

    def test_load_suite_tolerates_comment_only_files(self, tmp_path):
        from repro.core.suite import load_suite

        (tmp_path / "real.test").write_text(SLT_TEXT)
        (tmp_path / "empty.test").write_text("# placeholder, nothing here yet\n\n")
        suite = load_suite(str(tmp_path))
        assert len(suite.files) == 2
        assert sum(len(test_file.records) for test_file in suite.files) == 2

    def test_load_suite_still_raises_on_unrecognisable_content(self, tmp_path):
        from repro.core.suite import load_suite

        (tmp_path / "junk.test").write_text("%%% prose, not a test file\nmore prose\n")
        with pytest.raises(FormatError):
            load_suite(str(tmp_path))


class TestCustomFormatRegistration:
    def test_fifth_format_is_one_register_call(self):
        from repro.formats.registry import _NAMES, _REGISTRY, register_format

        @register_format
        class OneLinerFormat(FormatParser):
            name = "oneliner"
            extensions = (".one",)
            description = "each line is one expect-ok statement"

            def parse_text(self, text, companion=None, path="<memory>", suite=None):
                from repro.core.records import StatementRecord

                test_file = self.new_test_file(text, path, suite)
                for number, line in enumerate(text.splitlines(), start=1):
                    if line.strip():
                        test_file.records.append(StatementRecord(line=number, raw=line, sql=line.strip()))
                return test_file

        try:
            assert get_format("oneliner").parse_text("SELECT 1\nSELECT 2\n").sql_records()
            assert detect_format(path="x.one").name == "oneliner"
        finally:
            _REGISTRY.pop("oneliner", None)
            _NAMES.pop("oneliner", None)
