"""Unit tests for the structural SQL analyzer (WHERE tokens, joins, functions)."""

from repro.sqlparser.analyzer import (
    JoinKind,
    analyze_select,
    extract_function_names,
    predicate_bucket,
    referenced_settings,
    uses_cast_operator,
    where_token_count,
)


class TestWhereTokenCount:
    def test_no_where_clause_is_zero(self):
        assert where_token_count("SELECT interval '1-2'") == 0

    def test_simple_predicate(self):
        # "c > a" = 3 significant tokens, the paper's line-2 example
        assert where_token_count("SELECT a, b FROM t1 WHERE c > a") == 3

    def test_terminators_stop_the_count(self):
        assert where_token_count("SELECT a FROM t WHERE a > 1 ORDER BY a") == 3
        assert where_token_count("SELECT a FROM t WHERE a > 1 GROUP BY a") == 3
        assert where_token_count("SELECT a FROM t WHERE a > 1 LIMIT 5") == 3

    def test_nested_subquery_where_not_double_counted(self):
        count = where_token_count("SELECT a FROM t WHERE a IN (SELECT b FROM u) AND a > 0")
        assert count >= 7

    def test_long_predicate(self):
        predicate = " OR ".join(f"a = {i}" for i in range(40))
        assert where_token_count(f"SELECT a FROM t WHERE {predicate}") > 100

    def test_buckets(self):
        assert predicate_bucket(0) == "0"
        assert predicate_bucket(2) == "1-2"
        assert predicate_bucket(7) == "3-10"
        assert predicate_bucket(50) == "11-100"
        assert predicate_bucket(200) == "100+"


class TestJoins:
    def test_no_join(self):
        assert analyze_select("SELECT a FROM t1").join_kind is JoinKind.NONE

    def test_implicit_join(self):
        shape = analyze_select("SELECT unit.total_profit FROM unit, unit2")
        assert shape.join_kind is JoinKind.IMPLICIT

    def test_inner_join(self):
        shape = analyze_select("SELECT a, test.b, c FROM test INNER JOIN test2 ON test.b = 2 ORDER BY c")
        assert shape.join_kind is JoinKind.INNER
        assert shape.has_order_by

    def test_left_join(self):
        assert analyze_select("SELECT * FROM a LEFT JOIN b ON a.x = b.x").join_kind is JoinKind.LEFT

    def test_aggregate_detection(self):
        shape = analyze_select("SELECT count(*), sum(a) FROM t GROUP BY b")
        assert shape.has_aggregate
        assert shape.has_group_by


class TestFunctionExtraction:
    def test_extract_functions(self):
        assert extract_function_names("SELECT to_json(date '2014-05-28'), abs(-1)") == ["to_json", "abs"]

    def test_nested_functions(self):
        assert extract_function_names("SELECT coalesce(nullif(a, 0), 1) FROM t") == ["coalesce", "nullif"]

    def test_no_functions(self):
        assert extract_function_names("SELECT a FROM t") == []

    def test_cast_operator_detection(self):
        assert uses_cast_operator("SELECT 1::INTEGER")
        assert not uses_cast_operator("SELECT CAST(1 AS INTEGER)")

    def test_referenced_settings(self):
        assert referenced_settings("SET default_null_order = 'nulls_first'") == ["default_null_order"]
        assert referenced_settings("PRAGMA explain_output = OPTIMIZED_ONLY") == ["explain_output"]
        assert referenced_settings("SELECT 1") == []
