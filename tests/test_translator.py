"""Cross-dialect SQL translation (the sqlglot-substitute) unit tests."""

from repro.dialects import DUCKDB, MYSQL, POSTGRES, SQLITE, translate, translate_script
from repro.engine.session import Session


class TestRewrites:
    def test_identity_when_dialects_match(self):
        result = translate("SELECT 1::INTEGER", POSTGRES, POSTGRES)
        assert result.sql == "SELECT 1::INTEGER"
        assert not result.changed

    def test_cast_operator_rewritten_for_sqlite(self):
        result = translate("SELECT 10::TEXT", POSTGRES, SQLITE)
        assert "CAST" in result.sql and "::" not in result.sql
        assert "cast_operator" in result.applied_rules

    def test_cast_operator_kept_for_duckdb(self):
        result = translate("SELECT 10::TEXT", POSTGRES, DUCKDB)
        assert "::" in result.sql

    def test_div_operator_rewritten_for_postgres(self):
        result = translate("SELECT 62 DIV 2", MYSQL, POSTGRES)
        assert "DIV" not in result.sql
        assert "div_operator" in result.applied_rules

    def test_integer_division_preserved_on_decimal_hosts(self):
        result = translate("SELECT 7 / 2", SQLITE, DUCKDB)
        assert "integer_division" in result.applied_rules
        assert "CAST" in result.sql

    def test_concat_rewritten_for_mysql(self):
        result = translate("SELECT 'a' || 'b'", POSTGRES, MYSQL)
        assert "CONCAT" in result.sql
        assert "concat_operator" in result.applied_rules

    def test_pragma_to_set(self):
        result = translate("PRAGMA threads = 2", DUCKDB, POSTGRES)
        assert result.sql.upper().startswith("SET")

    def test_set_to_pragma_for_sqlite(self):
        result = translate("SET foreign_keys = 1", MYSQL, SQLITE)
        assert result.sql.upper().startswith("PRAGMA")

    def test_varchar_gets_length_on_mysql(self):
        result = translate("CREATE TABLE t(s VARCHAR)", POSTGRES, MYSQL)
        assert "VARCHAR(255)" in result.sql

    def test_function_mapping(self):
        result = translate("SELECT group_concat(a) FROM t", SQLITE, POSTGRES)
        assert "string_agg" in result.sql

    def test_unknown_function_produces_warning(self):
        result = translate("SELECT median(a) FROM t", DUCKDB, POSTGRES)
        assert result.warnings

    def test_untokenizable_statement_left_unchanged(self):
        broken = "SELECT 'unterminated"
        result = translate(broken, SQLITE, POSTGRES)
        assert result.sql == broken
        assert result.warnings

    def test_translate_script(self):
        results = translate_script("SELECT 1::TEXT; SELECT 2 DIV 1", POSTGRES, SQLITE)
        assert len(results) == 2


class TestTranslationsExecute:
    """Translated statements must actually run on the target engine."""

    def test_translated_cast_runs_on_sqlite(self):
        translated = translate("SELECT 10::TEXT", POSTGRES, SQLITE).sql
        assert Session("sqlite").execute(translated).rows == [["10"]]

    def test_translated_division_matches_donor_semantics(self):
        donor_value = Session("sqlite").execute("SELECT 7 / 2").rows[0][0]
        translated = translate("SELECT 7 / 2", SQLITE, DUCKDB).sql
        host_value = Session("duckdb").execute(translated).rows[0][0]
        assert host_value == donor_value == 3

    def test_translated_concat_runs_on_mysql(self):
        translated = translate("SELECT 'a' || 'b'", POSTGRES, MYSQL).sql
        assert Session("mysql").execute(translated).rows == [["ab"]]

    def test_translated_div_runs_on_postgres(self):
        translated = translate("SELECT 63 DIV 2", MYSQL, POSTGRES).sql
        assert Session("postgres").execute(translated).rows == [[31]]
