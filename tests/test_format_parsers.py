"""Native test-format parsers: SLT, DuckDB, PostgreSQL, MySQL."""

import importlib
import sys
import textwrap

import pytest

from repro.core.records import ControlRecord, QueryRecord, ResultFormat, SortMode, StatementRecord
from repro.core.suite import parse_test_text, supported_formats
from repro.formats.duckdb import parse_duckdb_text
from repro.formats.mysql import parse_mysql_text
from repro.formats.postgres import parse_postgres_text
from repro.formats.slt import parse_slt_text


LISTING1 = textwrap.dedent(
    """\
    statement ok
    CREATE TABLE t1(a INTEGER, b INTEGER, c INTEGER)

    statement ok
    INSERT INTO t1(c,b,a) VALUES (3,4,2), (5,1,3), (1,6,4)

    query I rowsort
    SELECT a, b FROM t1 WHERE c > a;
    ----
    2
    4
    3
    1
    """
)

LISTING4 = textwrap.dedent(
    """\
    onlyif mysql # DIV for integer division:
    query I rowsort label-11
    SELECT ALL 62 DIV ( + - 2 )
    ----
    -31

    skipif mysql # not compatible
    query I rowsort label-11
    SELECT ALL 62 / ( + - 2 )
    ----
    -31
    """
)


class TestSLTParser:
    def test_listing1_roundtrip(self):
        test_file = parse_slt_text(LISTING1)
        assert len(test_file.records) == 3
        statement, insert, query = test_file.records
        assert isinstance(statement, StatementRecord) and statement.expect_ok
        assert isinstance(query, QueryRecord)
        assert query.sort_mode is SortMode.ROWSORT
        assert query.expected_values == ["2", "4", "3", "1"]
        assert query.type_string == "I"

    def test_listing4_conditions_and_labels(self):
        test_file = parse_slt_text(LISTING4)
        first, second = test_file.records
        assert first.conditions[0].kind == "onlyif" and first.conditions[0].dbms == "mysql"
        assert second.conditions[0].kind == "skipif"
        assert first.label == "label-11"
        assert not first.runs_on("sqlite")
        assert first.runs_on("mysql")
        assert second.runs_on("postgres")
        assert not second.runs_on("mysql")

    def test_statement_error_record(self):
        test_file = parse_slt_text("statement error\nSELECT * FROM missing\n")
        record = test_file.records[0]
        assert isinstance(record, StatementRecord) and not record.expect_ok

    def test_hash_threshold_and_halt_controls(self):
        text = "hash-threshold 8\n\nhalt\n\nstatement ok\nSELECT 1\n"
        test_file = parse_slt_text(text)
        controls = [record for record in test_file.records if isinstance(record, ControlRecord)]
        assert [control.command for control in controls] == ["hash-threshold", "halt"]

    def test_hashed_result(self):
        text = "query III rowsort\nSELECT a, b, c FROM t1\n----\n30 values hashing to 3c13dee48d9356ae19af2515e05e6b54\n"
        record = parse_slt_text(text).records[0]
        assert record.result_format is ResultFormat.HASH
        assert record.expected_hash_count == 30
        assert record.expects_rows == 10

    def test_comment_lines_ignored(self):
        test_file = parse_slt_text("# a comment\n\nstatement ok\nSELECT 1\n")
        assert len(test_file.records) == 1


class TestDuckDBParser:
    def test_row_wise_results(self):
        text = "query II\nSELECT a, b FROM t1;\n----\n2\t4\n3\t1\n"
        record = parse_duckdb_text(text).records[0]
        assert record.result_format is ResultFormat.ROW_WISE
        assert record.expected_rows == [["2", "4"], ["3", "1"]]

    def test_require_control(self):
        text = "require icu\n\nstatement ok\nSELECT 1\n"
        records = parse_duckdb_text(text).records
        assert isinstance(records[0], ControlRecord) and records[0].command == "require"

    def test_loop_expansion(self):
        text = "loop i 0 3\n\nstatement ok\nINSERT INTO t VALUES (${i})\n\nendloop\n"
        records = parse_duckdb_text(text).records
        statements = [record.sql for record in records if isinstance(record, StatementRecord)]
        assert statements == ["INSERT INTO t VALUES (0)", "INSERT INTO t VALUES (1)", "INSERT INTO t VALUES (2)"]

    def test_statement_error_with_expected_message(self):
        text = "statement error\nSELECT * FROM missing\n----\nTable with name missing does not exist\n"
        record = parse_duckdb_text(text).records[0]
        assert not record.expect_ok
        assert "does not exist" in record.expected_error


class TestPostgresParser:
    SQL = "SELECT 1 AS one;\nCREATE TABLE t(a int);\n\\d t\nSELECT * FROM missing;\n"
    OUT = textwrap.dedent(
        """\
        SELECT 1 AS one;
         one
        -----
         1
        (1 row)

        CREATE TABLE t(a int);
        SELECT * FROM missing;
        ERROR:  relation "missing" does not exist
        """
    )

    def test_statements_and_cli_commands(self):
        test_file = parse_postgres_text(self.SQL)
        commands = [record for record in test_file.records if isinstance(record, ControlRecord)]
        assert len(commands) == 1 and commands[0].command.startswith("psql:")
        assert len(test_file.sql_records()) == 3

    def test_out_file_gives_query_expectations(self):
        test_file = parse_postgres_text(self.SQL, self.OUT)
        first = test_file.records[0]
        assert isinstance(first, QueryRecord)
        assert first.expected_rows == [["1"]]
        assert first.expected_column_names == ["one"]

    def test_out_file_gives_error_expectations(self):
        test_file = parse_postgres_text(self.SQL, self.OUT)
        last = test_file.sql_records()[-1]
        assert isinstance(last, StatementRecord)
        assert not last.expect_ok
        assert "does not exist" in last.expected_error


class TestMySQLParser:
    TEST = textwrap.dedent(
        """\
        --disable_warnings
        CREATE TABLE t1(a INTEGER, b INTEGER, c INTEGER);
        INSERT INTO t1(c,b,a) VALUES (3,4,2), (5,1,3), (1,6,4);
        --error ER_NO_SUCH_TABLE
        SELECT * FROM missing;
        SELECT a, b FROM t1 WHERE c > a;
        let $x = 10;
        """
    )
    RESULT = textwrap.dedent(
        """\
        CREATE TABLE t1(a INTEGER, b INTEGER, c INTEGER);
        INSERT INTO t1(c,b,a) VALUES (3,4,2), (5,1,3), (1,6,4);
        SELECT * FROM missing;
        SELECT a, b FROM t1 WHERE c > a;
        a\tb
        2\t4
        3\t1
        """
    )

    def test_runner_commands_extracted(self):
        test_file = parse_mysql_text(self.TEST)
        commands = [record.command for record in test_file.control_records()]
        assert "disable_warnings" in commands
        assert "error" in commands
        assert "let" in commands

    def test_error_directive_marks_statement(self):
        test_file = parse_mysql_text(self.TEST)
        failing = [record for record in test_file.sql_records() if isinstance(record, StatementRecord) and not record.expect_ok]
        assert len(failing) == 1
        assert "missing" in failing[0].sql

    def test_result_file_gives_expectations(self):
        test_file = parse_mysql_text(self.TEST, self.RESULT)
        queries = [record for record in test_file.records if isinstance(record, QueryRecord)]
        assert queries
        assert queries[-1].expected_rows == [["2", "4"], ["3", "1"]]
        assert queries[-1].expected_column_names == ["a", "b"]


class TestSuiteLoader:
    def test_supported_formats(self):
        assert {"slt", "duckdb", "postgres", "mysql"} <= set(supported_formats())

    def test_parse_test_text_dispatch(self):
        assert len(parse_test_text(LISTING1, "slt").records) == 3
        assert parse_test_text(LISTING1, "duckdb").suite == "duckdb"

    def test_unknown_format_raises(self):
        import pytest
        from repro.errors import TestFormatError

        with pytest.raises(TestFormatError):
            parse_test_text("x", "oracle")

    def test_load_suite_from_directory(self, tmp_path):
        from repro.core.suite import load_suite
        from repro.corpus import write_corpus

        write_corpus(str(tmp_path / "slt"), "slt", file_count=2)
        suite = load_suite(str(tmp_path / "slt"), "slt")
        assert len(suite.files) == 2
        assert suite.total_sql_records > 0

    def test_load_postgres_suite_pairs_out_files(self, tmp_path):
        from repro.core.suite import load_suite
        from repro.corpus import write_corpus

        write_corpus(str(tmp_path / "pg"), "postgres", file_count=2)
        suite = load_suite(str(tmp_path / "pg"), "postgres")
        assert len(suite.files) == 2
        assert any(isinstance(record, QueryRecord) and record.expected_rows for test_file in suite.files for record in test_file.records)


class TestDeprecatedParserShims:
    """The repro.core.parser_* shims still re-export, but warn on import."""

    @pytest.mark.parametrize(
        "shim, symbol",
        [
            ("repro.core.parser_slt", "parse_slt_text"),
            ("repro.core.parser_duckdb", "parse_duckdb_text"),
            ("repro.core.parser_postgres", "parse_postgres_text"),
            ("repro.core.parser_mysql", "parse_mysql_text"),
        ],
    )
    def test_shim_import_warns_and_reexports(self, shim, symbol):
        # the module-level warning fires at import time, so force a re-import
        sys.modules.pop(shim, None)
        with pytest.warns(DeprecationWarning, match="deprecated; import from repro.formats"):
            module = importlib.import_module(shim)
        assert callable(getattr(module, symbol))

    def test_shim_parses_like_the_format_module(self):
        sys.modules.pop("repro.core.parser_slt", None)
        with pytest.warns(DeprecationWarning):
            shim = importlib.import_module("repro.core.parser_slt")
        via_shim = shim.parse_slt_text(LISTING1, "listing1.test")
        native = parse_slt_text(LISTING1, "listing1.test")
        assert len(via_shim.records) == len(native.records)
