"""MiniDB SELECT execution: projection, filters, joins, aggregates, set ops, CTEs."""

import pytest

from repro.engine.session import Session
from repro.errors import CatalogError, DatabaseError


@pytest.fixture
def session():
    s = Session("sqlite")
    s.execute("CREATE TABLE t1(a INTEGER, b INTEGER, c INTEGER)")
    s.execute("INSERT INTO t1(c,b,a) VALUES (3,4,2), (5,1,3), (1,6,4)")
    return s


class TestProjectionAndFilter:
    def test_paper_listing1_query(self, session):
        result = session.execute("SELECT a, b FROM t1 WHERE c > a")
        assert sorted(result.rows) == [[2, 4], [3, 1]]
        assert result.columns == ["a", "b"]

    def test_select_star(self, session):
        result = session.execute("SELECT * FROM t1")
        assert len(result.rows) == 3
        assert result.columns == ["a", "b", "c"]

    def test_qualified_star(self, session):
        result = session.execute("SELECT t1.* FROM t1")
        assert result.columns == ["a", "b", "c"]

    def test_expression_projection_with_alias(self, session):
        result = session.execute("SELECT a + b AS total FROM t1 ORDER BY total")
        assert result.columns == ["total"]
        assert result.rows == [[4], [6], [10]]

    def test_where_with_and_or(self, session):
        result = session.execute("SELECT a FROM t1 WHERE a > 2 AND b < 5 ORDER BY a")
        assert result.rows == [[3]]
        result = session.execute("SELECT a FROM t1 WHERE a = 2 OR a = 4 ORDER BY a")
        assert result.rows == [[2], [4]]

    def test_between_in_like(self, session):
        assert session.execute("SELECT a FROM t1 WHERE a BETWEEN 3 AND 4 ORDER BY a").rows == [[3], [4]]
        assert session.execute("SELECT a FROM t1 WHERE a IN (2, 4) ORDER BY a").rows == [[2], [4]]
        session.execute("CREATE TABLE names(n TEXT)")
        session.execute("INSERT INTO names VALUES ('alpha'), ('beta')")
        assert session.execute("SELECT n FROM names WHERE n LIKE 'al%'").rows == [["alpha"]]

    def test_is_null(self, session):
        session.execute("INSERT INTO t1 VALUES (NULL, 1, 1)")
        assert session.execute("SELECT count(*) FROM t1 WHERE a IS NULL").rows == [[1]]
        assert session.execute("SELECT count(*) FROM t1 WHERE a IS NOT NULL").rows == [[3]]

    def test_missing_table_raises(self, session):
        with pytest.raises(CatalogError):
            session.execute("SELECT * FROM missing")

    def test_missing_column_raises(self, session):
        with pytest.raises(CatalogError):
            session.execute("SELECT zzz FROM t1")


class TestOrderLimitDistinct:
    def test_order_by_desc(self, session):
        assert session.execute("SELECT a FROM t1 ORDER BY a DESC").rows == [[4], [3], [2]]

    def test_order_by_position(self, session):
        assert session.execute("SELECT a FROM t1 ORDER BY 1").rows == [[2], [3], [4]]

    def test_limit_offset(self, session):
        assert session.execute("SELECT a FROM t1 ORDER BY a LIMIT 2").rows == [[2], [3]]
        assert session.execute("SELECT a FROM t1 ORDER BY a LIMIT 1 OFFSET 2").rows == [[4]]

    def test_distinct(self, session):
        session.execute("INSERT INTO t1 VALUES (2, 4, 3)")
        assert session.execute("SELECT DISTINCT a FROM t1 ORDER BY a").rows == [[2], [3], [4]]

    def test_nulls_ordering_sqlite_default_first(self):
        s = Session("sqlite")
        s.execute("CREATE TABLE t(a INTEGER)")
        s.execute("INSERT INTO t VALUES (1), (NULL), (2)")
        assert s.execute("SELECT a FROM t ORDER BY a").rows == [[None], [1], [2]]

    def test_nulls_ordering_postgres_default_last(self):
        s = Session("postgres")
        s.execute("CREATE TABLE t(a INTEGER)")
        s.execute("INSERT INTO t VALUES (1), (NULL), (2)")
        assert s.execute("SELECT a FROM t ORDER BY a").rows == [[1], [2], [None]]


class TestJoins:
    def test_inner_join(self, session):
        session.execute("CREATE TABLE t2(a INTEGER, label TEXT)")
        session.execute("INSERT INTO t2 VALUES (2, 'two'), (3, 'three'), (9, 'nine')")
        result = session.execute("SELECT t1.a, t2.label FROM t1 INNER JOIN t2 ON t1.a = t2.a ORDER BY 1")
        assert result.rows == [[2, "two"], [3, "three"]]

    def test_implicit_join(self, session):
        session.execute("CREATE TABLE t2(x INTEGER)")
        session.execute("INSERT INTO t2 VALUES (2), (3)")
        result = session.execute("SELECT t1.a FROM t1, t2 WHERE t1.a = t2.x ORDER BY 1")
        assert result.rows == [[2], [3]]

    def test_left_join_keeps_unmatched(self, session):
        session.execute("CREATE TABLE t2(a INTEGER, label TEXT)")
        session.execute("INSERT INTO t2 VALUES (2, 'two')")
        result = session.execute("SELECT t1.a, t2.label FROM t1 LEFT JOIN t2 ON t1.a = t2.a ORDER BY 1")
        assert result.rows == [[2, "two"], [3, None], [4, None]]

    def test_cross_join_count(self, session):
        assert session.execute("SELECT count(*) FROM t1, t1 x").rows == [[9]]

    def test_join_using(self, session):
        session.execute("CREATE TABLE t3(a INTEGER, extra INTEGER)")
        session.execute("INSERT INTO t3 VALUES (3, 30), (4, 40)")
        result = session.execute("SELECT t1.a, extra FROM t1 JOIN t3 USING (a) ORDER BY 1")
        assert result.rows == [[3, 30], [4, 40]]


class TestAggregates:
    def test_count_sum_avg_min_max(self, session):
        assert session.execute("SELECT count(*), sum(a), min(a), max(a) FROM t1").rows == [[3, 9, 2, 4]]
        assert session.execute("SELECT avg(a) FROM t1").rows == [[3.0]]

    def test_group_by_with_having(self, session):
        session.execute("INSERT INTO t1 VALUES (2, 9, 9)")
        result = session.execute("SELECT a, count(*) FROM t1 GROUP BY a HAVING count(*) > 1 ORDER BY a")
        assert result.rows == [[2, 2]]

    def test_count_distinct(self, session):
        session.execute("INSERT INTO t1 VALUES (2, 0, 0)")
        assert session.execute("SELECT count(DISTINCT a) FROM t1").rows == [[3]]

    def test_aggregate_over_empty_table(self, session):
        session.execute("CREATE TABLE empty_t(a INTEGER)")
        assert session.execute("SELECT count(*), sum(a), max(a) FROM empty_t").rows == [[0, None, None]]

    def test_aggregate_in_expression(self, session):
        assert session.execute("SELECT max(a) - min(a) FROM t1").rows == [[2]]


class TestCompoundAndSubqueries:
    def test_union_all_and_union(self, session):
        assert session.execute("SELECT 1 UNION ALL SELECT 1").rows == [[1], [1]]
        assert session.execute("SELECT 1 UNION SELECT 1").rows == [[1]]

    def test_intersect_and_except(self, session):
        assert session.execute("SELECT a FROM t1 INTERSECT SELECT 3").rows == [[3]]
        assert sorted(session.execute("SELECT a FROM t1 EXCEPT SELECT 3").rows) == [[2], [4]]

    def test_column_count_mismatch_raises(self, session):
        with pytest.raises(DatabaseError):
            session.execute("SELECT 1, 2 UNION SELECT 1")

    def test_in_subquery(self, session):
        session.execute("CREATE TABLE picks(v INTEGER)")
        session.execute("INSERT INTO picks VALUES (3), (4)")
        result = session.execute("SELECT a FROM t1 WHERE a IN (SELECT v FROM picks) ORDER BY a")
        assert result.rows == [[3], [4]]

    def test_scalar_subquery(self, session):
        assert session.execute("SELECT (SELECT max(a) FROM t1)").rows == [[4]]

    def test_exists(self, session):
        assert session.execute("SELECT EXISTS (SELECT 1 FROM t1 WHERE a = 3)").rows == [[True]]

    def test_derived_table(self, session):
        result = session.execute("SELECT s.a FROM (SELECT a FROM t1 WHERE a > 2) s ORDER BY 1")
        assert result.rows == [[3], [4]]

    def test_values_clause(self, session):
        assert session.execute("VALUES (1, 'x'), (2, 'y')").rows == [[1, "x"], [2, "y"]]


class TestCTEs:
    def test_plain_cte(self, session):
        result = session.execute("WITH big AS (SELECT a FROM t1 WHERE a > 2) SELECT count(*) FROM big")
        assert result.rows == [[1 + 1]]

    def test_recursive_counter(self, session):
        result = session.execute(
            "WITH RECURSIVE cnt(x) AS (SELECT 1 UNION ALL SELECT x + 1 FROM cnt WHERE x < 5) SELECT count(*), max(x) FROM cnt"
        )
        assert result.rows == [[5, 5]]

    def test_view_over_cte(self, session):
        session.execute("CREATE VIEW v1 AS SELECT a * 10 AS a10 FROM t1")
        assert session.execute("SELECT max(a10) FROM v1").rows == [[40]]

    def test_table_function_in_from(self, session):
        assert session.execute("SELECT count(*) FROM generate_series(1, 5)").rows == [[5]]
