"""The persistent artifact store: correctness, resilience, and its two clients.

The invariants pinned here are the ones that make disk-backed reuse safe to
leave on by default:

* corrupt or truncated artifacts are treated as misses (regenerate, never
  crash) and are removed from disk,
* a code-fingerprint bump invalidates every old entry,
* concurrent writers cannot clobber each other (tmp + rename),
* a warm ``run_matrix`` reproduces the storeless results byte-for-byte
  (canonical serialization), and
* ``store_disabled()`` / ``store=None`` really do force the storeless path.
"""

from __future__ import annotations

import concurrent.futures
import os
import pickle
import threading

import pytest

from repro.core.records import TestSuite
from repro.core.transplant import run_matrix, run_transplant
from repro.corpus import build_suite
from repro.store import (
    ArtifactStore,
    canonical_bytes,
    store_disabled,
    suite_content_hash,
)
from repro.store.artifacts import STORE_FORMAT_VERSION


@pytest.fixture
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(root=tmp_path / "store", fingerprint="test-fp")


# -- core store behaviour ----------------------------------------------------------


class TestArtifactStore:
    def test_round_trip(self, store):
        key = {"suite": "slt", "seed": 7}
        assert store.load("ns", key) is None
        assert store.save("ns", key, {"value": [1, 2, 3]})
        assert store.load("ns", key) == {"value": [1, 2, 3]}
        assert store.stats.hits == 1
        assert store.stats.misses == 1
        assert store.stats.writes == 1

    def test_distinct_keys_and_namespaces(self, store):
        store.save("a", {"k": 1}, "first")
        store.save("a", {"k": 2}, "second")
        store.save("b", {"k": 1}, "third")
        assert store.load("a", {"k": 1}) == "first"
        assert store.load("a", {"k": 2}) == "second"
        assert store.load("b", {"k": 1}) == "third"

    def test_key_order_is_canonical(self, store):
        store.save("ns", {"a": 1, "b": 2}, "value")
        assert store.load("ns", {"b": 2, "a": 1}) == "value"

    def test_memoize_produces_once(self, store):
        calls = []

        def producer():
            calls.append(1)
            return "expensive"

        assert store.memoize("ns", "key", producer) == "expensive"
        assert store.memoize("ns", "key", producer) == "expensive"
        assert len(calls) == 1

    def test_truncated_artifact_is_a_miss(self, store):
        key = {"seed": 1}
        store.save("ns", key, list(range(1000)))
        path = store.path_for("ns", key)
        path.write_bytes(path.read_bytes()[:20])  # truncate mid-pickle
        assert store.load("ns", key, default="fallback") == "fallback"
        assert store.stats.errors == 1
        assert not path.exists(), "corrupt artifact must be removed"
        # and the slot is usable again
        assert store.save("ns", key, "regenerated")
        assert store.load("ns", key) == "regenerated"

    def test_garbage_artifact_is_a_miss(self, store):
        key = {"seed": 2}
        store.save("ns", key, "value")
        store.path_for("ns", key).write_bytes(b"not a pickle at all")
        assert store.load("ns", key) is None
        assert store.stats.errors == 1

    def test_wrong_header_is_a_miss(self, store):
        key = {"seed": 3}
        path = store.path_for("ns", key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(pickle.dumps((STORE_FORMAT_VERSION + 1, "ns", "value")))
        assert store.load("ns", key) is None
        assert not path.exists()

    def test_fingerprint_bump_invalidates(self, tmp_path):
        root = tmp_path / "store"
        old = ArtifactStore(root=root, fingerprint="version-1")
        old.save("ns", {"seed": 7}, "old-artifact")
        new = ArtifactStore(root=root, fingerprint="version-2")
        assert new.load("ns", {"seed": 7}) is None, "new fingerprint must not see old entries"
        assert old.load("ns", {"seed": 7}) == "old-artifact", "old entries stay addressable by old code"
        new.save("ns", {"seed": 7}, "new-artifact")
        assert new.load("ns", {"seed": 7}) == "new-artifact"
        assert old.load("ns", {"seed": 7}) == "old-artifact"

    def test_concurrent_writers_do_not_clobber(self, store):
        barrier = threading.Barrier(8)

        def writer(worker: int):
            barrier.wait()
            for round_number in range(10):
                store.save("ns", {"slot": round_number % 3}, {"worker": worker, "round": round_number})
            return True

        with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
            assert all(pool.map(writer, range(8)))
        # whatever write won each slot, the artifact must be complete and valid
        for slot in range(3):
            value = store.load("ns", {"slot": slot})
            assert isinstance(value, dict) and set(value) == {"worker", "round"}
        assert store.stats.errors == 0
        # no temp files left behind
        leftovers = [path for path in (store.root).rglob(".tmp-*") if path.is_file()]
        assert leftovers == []

    def test_lru_eviction_drops_oldest(self, tmp_path):
        store = ArtifactStore(root=tmp_path / "store", max_bytes=1, fingerprint="fp")
        store.save("ns", {"k": 1}, "x" * 100)  # immediately over budget
        store.save("ns", {"k": 2}, "y" * 100)
        assert store.stats.evictions >= 1
        # the newest entry survives each sweep
        assert store.load("ns", {"k": 2}) == "y" * 100

    def test_eviction_keeps_recently_read_entries(self, tmp_path):
        store = ArtifactStore(root=tmp_path / "store", max_bytes=10_000, fingerprint="fp")
        store.save("ns", {"k": "old"}, "o" * 3000)
        store.save("ns", {"k": "mid"}, "m" * 3000)
        older = store.path_for("ns", {"k": "old"})
        middle = store.path_for("ns", {"k": "mid"})
        os.utime(older, (1_000_000, 1_000_000))
        os.utime(middle, (2_000_000, 2_000_000))
        # a read freshens "old", so "mid" is now the LRU victim
        assert store.load("ns", {"k": "old"}) is not None
        store.save("ns", {"k": "new"}, "n" * 6000)  # pushes past max_bytes
        assert not middle.exists()
        assert older.exists()

    def test_snapshot_shape(self, store):
        store.save("ns", "k", "v")
        store.load("ns", "k")
        snapshot = store.snapshot()
        assert snapshot["entries"] == 1
        assert snapshot["bytes"] > 0
        assert snapshot["hits"] == 1 and snapshot["writes"] == 1
        assert 0.0 <= snapshot["hit_rate"] <= 1.0

    def test_clear(self, store):
        store.save("ns", "k", "v")
        store.clear()
        assert store.entry_count == 0
        assert store.load("ns", "k") is None

    def test_corruption_deletions_keep_the_byte_estimate_honest(self, store):
        """Corruption-as-miss deletions must decrement the amortized byte
        estimate (they used to leave it above disk truth by one artifact per
        corrupt read, drifting until the next over-budget sweep)."""
        keys = [{"seed": n} for n in range(6)]
        for key in keys:
            store.save("ns", key, "x" * 2000)
        assert store.estimated_bytes == store.total_bytes
        garbage = b"g" * 500
        for key in keys[:3]:  # corrupt half, read them back as misses
            store.path_for("ns", key).write_bytes(garbage)
        estimate_before = store.estimated_bytes
        for key in keys[:3]:
            assert store.load("ns", key) is None
        assert store.stats.errors == 3
        # each corrupt read deleted its (garbage-sized) file AND subtracted
        # that size from the estimate — without the decrement the estimate
        # would still equal estimate_before
        assert store.estimated_bytes == estimate_before - 3 * len(garbage)
        # recount() then restores exact disk truth (the external overwrites
        # themselves are invisible to the running estimate by design)
        assert store.recount() == store.total_bytes
        assert store.estimated_bytes == store.total_bytes

    def test_gc_recounts_and_evicts_to_budget(self, store):
        for n in range(8):
            store.save("ns", {"k": n}, "y" * 4000)
        # delete some entries behind the store's back: the estimate is stale
        victims = [store.path_for("ns", {"k": n}) for n in range(2)]
        for victim in victims:
            victim.unlink()
        summary = store.gc()
        assert summary["bytes_before"] == summary["bytes_after"] == store.total_bytes
        assert summary["evicted"] == 0
        assert store.estimated_bytes == store.total_bytes
        # now force a trim below the current footprint
        summary = store.gc(max_bytes=store.total_bytes // 2)
        assert summary["evicted"] >= 1
        assert store.total_bytes <= summary["max_bytes"] or store.entry_count == 1
        assert store.estimated_bytes == store.total_bytes
        # the steady-state budget is untouched by the override
        assert store.max_bytes != summary["max_bytes"]

    def test_namespace_stats(self, store):
        store.save("alpha", {"k": 1}, "a" * 5000)
        store.save("alpha", {"k": 2}, "a" * 5000)
        store.save("beta", {"k": 1}, "b")
        stats = store.namespace_stats()
        assert list(stats) == ["alpha", "beta"]  # sorted by bytes descending
        assert stats["alpha"]["entries"] == 2
        assert stats["beta"]["entries"] == 1
        assert stats["alpha"]["bytes"] > stats["beta"]["bytes"] > 0

    def test_active_store_rejects_path_strings(self, store):
        from repro.store import DEFAULT, active_store

        assert active_store(None) is None
        assert active_store(store) is store
        assert active_store(DEFAULT) is not None
        with pytest.raises(TypeError):
            # a path string must not silently become the user-level default
            active_store("/tmp/some-store-dir")


# -- canonical serialization -------------------------------------------------------


class TestCanonicalBytes:
    def test_equal_suites_hash_equal(self):
        first = build_suite("slt", file_count=2, records_per_file=15, seed=11, store=None)
        second = build_suite("slt", file_count=2, records_per_file=15, seed=11, store=None)
        assert first is not second
        assert suite_content_hash(first) == suite_content_hash(second)

    def test_different_seeds_hash_differently(self):
        first = build_suite("slt", file_count=2, records_per_file=15, seed=11, store=None)
        second = build_suite("slt", file_count=2, records_per_file=15, seed=12, store=None)
        assert suite_content_hash(first) != suite_content_hash(second)

    def test_private_fields_do_not_change_identity(self):
        from repro.core.runner import FileResult

        untouched = FileResult(path="p", suite="slt", host="sqlite")
        counted = FileResult(path="p", suite="slt", host="sqlite")
        counted.count  # noqa: B018 - populate the lazy counter state
        assert canonical_bytes(untouched) == canonical_bytes(counted)

    def test_floats_are_exact(self):
        assert canonical_bytes(0.1) != canonical_bytes(0.1 + 1e-17) or (0.1 == 0.1 + 1e-17)
        assert canonical_bytes(1.5) == canonical_bytes(1.5)


# -- the corpus client -------------------------------------------------------------


class TestCorpusStore:
    def test_build_suite_loads_instead_of_regenerating(self, store):
        first = build_suite("slt", file_count=2, records_per_file=20, seed=5, store=store)
        assert store.stats.writes >= 1
        second = build_suite("slt", file_count=2, records_per_file=20, seed=5, store=store)
        assert store.stats.hits >= 1
        assert canonical_bytes(first) == canonical_bytes(second)
        assert isinstance(second, TestSuite)

    def test_different_parameters_miss(self, store):
        build_suite("slt", file_count=2, records_per_file=20, seed=5, store=store)
        hits_before = store.stats.hits
        # a different seed (or records_per_file) shares nothing — every
        # namespace, including the per-file donor recordings, misses
        build_suite("slt", file_count=2, records_per_file=20, seed=6, store=store)
        assert store.stats.hits == hits_before

    def test_grown_corpus_reuses_per_file_recordings(self, store):
        """file_count is *not* part of the per-file key: growing a corpus
        regenerates only the new files (incremental corpus recording)."""
        build_suite("slt", file_count=2, records_per_file=20, seed=5, store=store)
        store.stats.reset()
        grown = build_suite("slt", file_count=3, records_per_file=20, seed=5, store=store)
        file_donor = store.stats.by_namespace["file-donor"]
        assert file_donor == {"hits": 2, "misses": 1}
        with store_disabled():
            reference = build_suite("slt", file_count=3, records_per_file=20, seed=5, store=store)
        assert canonical_bytes(grown) == canonical_bytes(reference)

    def test_store_disabled_bypasses(self, store):
        build_suite("slt", file_count=2, records_per_file=20, seed=5, store=store)
        lookups_before = store.stats.lookups
        with store_disabled():
            build_suite("slt", file_count=2, records_per_file=20, seed=5, store=store)
        assert store.stats.lookups == lookups_before

    def test_corrupt_suite_artifact_regenerates(self, store):
        reference = build_suite("slt", file_count=2, records_per_file=20, seed=5, store=store)
        for path in store.root.rglob("*.pkl"):
            path.write_bytes(b"corrupt")
        rebuilt = build_suite("slt", file_count=2, records_per_file=20, seed=5, store=store)
        assert canonical_bytes(rebuilt) == canonical_bytes(reference)
        assert store.stats.errors >= 1


# -- the transplant client ---------------------------------------------------------


class TestDonorRunStore:
    @pytest.fixture(scope="class")
    def suite(self):
        return build_suite("slt", file_count=2, records_per_file=25, seed=9, store=None)

    def test_donor_run_is_memoized(self, store, suite):
        first = run_transplant(suite, "sqlite", store=store)
        # one suite-level cell plus one incremental-assembly entry per file
        assert store.stats.writes == 1 + len(suite.files)
        second = run_transplant(suite, "sqlite", store=store)
        assert store.stats.hits == 1
        assert canonical_bytes(first) == canonical_bytes(second)

    def test_cross_host_cells_are_memoized(self, store, suite):
        first = run_transplant(suite, "duckdb", store=store)
        assert store.stats.writes == 1 + len(suite.files)
        second = run_transplant(suite, "duckdb", store=store)
        assert store.stats.hits == 1
        assert canonical_bytes(first) == canonical_bytes(second)
        # cross-host cells land in their own namespace, apart from donor runs
        assert (store.root / "matrix-cells").is_dir()
        assert not (store.root / "donor-runs").exists()

    def test_translated_and_plain_cells_key_separately(self, store, suite):
        plain = run_transplant(suite, "duckdb", store=store)
        translated = run_transplant(suite, "duckdb", translate_dialect=True, store=store)
        cells = list((store.root / "matrix-cells").rglob("*.pkl"))
        assert len(cells) == 2, "translate_dialect must address a different cell"
        warm_plain = run_transplant(suite, "duckdb", store=store)
        warm_translated = run_transplant(suite, "duckdb", translate_dialect=True, store=store)
        assert canonical_bytes(warm_plain) == canonical_bytes(plain)
        assert canonical_bytes(warm_translated) == canonical_bytes(translated)

    def test_explicit_adapter_bypasses_store(self, store, suite):
        from repro.adapters.registry import create_adapter

        adapter = create_adapter("sqlite")
        adapter.setup()
        try:
            run_transplant(suite, "sqlite", adapter=adapter, store=store)
        finally:
            adapter.teardown()
        assert store.stats.lookups == 0

    def test_warm_matrix_byte_identical_to_storeless(self, store, suite):
        suites = {suite.name: suite}
        with store_disabled():
            reference = run_matrix(suites, store=store)
        cold = run_matrix(suites, store=store)
        warm = run_matrix(suites, store=store)
        assert store.stats.hits >= 1, "second campaign must hit the stored donor run"
        assert set(reference.entries) == set(cold.entries) == set(warm.entries)
        for key in reference.entries:
            expected = canonical_bytes(reference.entries[key].result)
            assert canonical_bytes(cold.entries[key].result) == expected
            assert canonical_bytes(warm.entries[key].result) == expected

    def test_warm_translated_matrix_reuses_stored_donor_runs(self, store, suite):
        suites = {suite.name: suite}
        plain = run_matrix(suites, hosts=("sqlite",), store=store)
        hits_before = store.stats.hits
        translated = run_matrix(suites, hosts=("sqlite",), translate_dialect=True, reuse_donor_runs_from=plain, store=store)
        # donor cells of the translated campaign come from the in-memory
        # matrix, not the store; the store hit count is unchanged
        assert store.stats.hits == hits_before
        assert translated.get(suite.name, "sqlite").result.total_cases == plain.get(suite.name, "sqlite").result.total_cases


# -- the store CLI -----------------------------------------------------------------


class TestStoreCLI:
    @pytest.fixture
    def populated(self, tmp_path):
        root = tmp_path / "cli-store"
        store = ArtifactStore(root=root, fingerprint="cli-fp")
        store.save("donor-runs", {"k": 1}, "d" * 2000)
        store.save("matrix-cells", {"k": 1}, "m" * 3000)
        return root, store

    def _run(self, *argv) -> tuple[int, str]:
        import contextlib
        import io

        from repro.experiments.__main__ import main

        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            status = main(list(argv))
        return status, buffer.getvalue()

    def test_stats(self, populated):
        root, _store = populated
        status, output = self._run("store", "stats", "--store-dir", str(root))
        assert status == 0
        assert "entries:     2" in output
        assert "matrix-cells" in output and "donor-runs" in output

    def test_stats_json(self, populated):
        import json

        root, _store = populated
        status, output = self._run("store", "stats", "--store-dir", str(root), "--json")
        assert status == 0
        payload = json.loads(output)
        assert payload["entries"] == 2
        assert set(payload["namespaces"]) == {"donor-runs", "matrix-cells"}

    def test_gc_trims_to_requested_budget(self, populated):
        root, store = populated
        status, output = self._run("store", "gc", "--store-dir", str(root), "--max-bytes", "2500")
        assert status == 0
        assert "evicted" in output
        assert store.total_bytes <= 3500  # oldest entry went; newest survives
        assert store.entry_count == 1

    def test_clear(self, populated):
        root, store = populated
        status, output = self._run("store", "clear", "--store-dir", str(root))
        assert status == 0
        assert "cleared 2" in output
        assert store.entry_count == 0

    def test_default_store_is_the_process_default(self, tmp_path):
        """Without --store-dir the CLI talks to get_default_store() (which the
        test session redirects to a temp dir, proving the indirection)."""
        from repro.store import get_default_store

        default_root = str(get_default_store().root)
        status, output = self._run("store", "stats")
        assert status == 0
        assert default_root in output


# -- failure-path hygiene and graceful degradation --------------------------------


class TestFailurePathHygiene:
    """A failed save must leave no temp files behind in the store tree."""

    def _tmp_leftovers(self, store):
        return [path for path in store.root.rglob(".tmp-*")]

    def test_failed_rename_leaves_no_tmp_files(self, store, monkeypatch):
        def _broken_replace(src, dst):
            raise OSError(5, "injected EIO on rename")

        monkeypatch.setattr(os, "replace", _broken_replace)
        assert store.save("ns", {"k": 1}, "value") is False
        assert self._tmp_leftovers(store) == []
        assert store.stats.errors == 1
        assert store.stats.io_errors == 1

    def test_failed_pickle_leaves_no_tmp_files(self, store):
        class Unpicklable:
            def __reduce__(self):
                raise TypeError("nope")

        assert store.save("ns", {"k": 1}, Unpicklable()) is False
        assert self._tmp_leftovers(store) == []
        # a serialization bug is a corruption-class error, not a disk fault
        assert store.stats.errors == 1
        assert store.stats.io_errors == 0


class TestStoreDegradation:
    """Consecutive I/O errors demote the store to storeless mode, once, loudly."""

    def _failing(self, tmp_path, degrade_after=3):
        store = ArtifactStore(root=tmp_path / "sick", fingerprint="test-fp", degrade_after=degrade_after)

        def _eio_read(path):
            raise OSError(5, "injected EIO")

        def _eio_write(path, payload):
            raise OSError(5, "injected EIO")

        store._read = _eio_read
        store._write = _eio_write
        return store

    def test_streak_of_io_errors_degrades_with_one_warning(self, tmp_path, caplog):
        store = self._failing(tmp_path, degrade_after=3)
        with caplog.at_level("WARNING", logger="repro.store.artifacts"):
            for index in range(5):
                assert store.save("ns", {"k": index}, "value") is False
        assert store.degraded
        warnings = [record for record in caplog.records if "degraded to storeless mode" in record.message]
        assert len(warnings) == 1
        # degraded short-circuit: only the first 3 saves reached the I/O layer
        assert store.stats.io_errors == 3
        assert store.snapshot()["degraded"] is True
        assert store.snapshot()["io_errors"] == 3

    def test_degraded_store_short_circuits_loads(self, tmp_path):
        store = self._failing(tmp_path, degrade_after=2)
        store.load("ns", {"k": 1})
        store.load("ns", {"k": 2})
        assert store.degraded
        misses_before = store.stats.misses
        assert store.load("ns", {"k": 3}) is None
        assert store.stats.misses == misses_before + 1
        assert store.stats.io_errors == 2  # the third load never hit _read

    def test_success_resets_the_streak(self, store, monkeypatch):
        real_write = type(store)._write
        calls = {"n": 0}

        def _flaky_write(self, path, payload):
            calls["n"] += 1
            if calls["n"] != 3:
                raise OSError(5, "injected EIO")
            real_write(self, path, payload)

        monkeypatch.setattr(type(store), "_write", _flaky_write)
        store.save("ns", {"k": 1}, "v")  # streak 1
        store.save("ns", {"k": 2}, "v")  # streak 2
        assert store.save("ns", {"k": 3}, "v") is True  # streak reset
        store.save("ns", {"k": 4}, "v")  # streak 1 again
        store.save("ns", {"k": 5}, "v")  # streak 2 — still below 3
        assert not store.degraded

    def test_missing_artifact_is_not_an_io_error(self, store):
        assert store.load("ns", {"k": "absent"}) is None
        assert store.stats.io_errors == 0
        assert not store.degraded

    def test_clear_rearms_a_degraded_store(self, tmp_path):
        store = self._failing(tmp_path, degrade_after=1)
        store.load("ns", {"k": 1})
        assert store.degraded
        store.clear()
        assert not store.degraded


# -- audit and stale-tmp sweep -----------------------------------------------------


class TestAuditAndSweep:
    """``audit()`` verifies every artifact a reader would trust, eagerly."""

    def _artifact_paths(self, store):
        return [path for _, _, path in store._artifact_files()]

    def test_clean_store_audits_clean(self, store):
        store.save("ns", {"k": 1}, "value")
        store.save("other", {"k": 2}, [1, 2, 3])
        report = store.audit()
        assert report["verified"] == 2
        assert report["corrupt"] == 0
        assert report["corrupt_paths"] == []

    def test_truncated_pickle_is_deleted_and_reported(self, store):
        store.save("ns", {"k": 1}, "value")
        (path,) = self._artifact_paths(store)
        path.write_bytes(path.read_bytes()[:-7])
        report = store.audit()
        assert report["corrupt"] == 1
        assert report["corrupt_paths"] == [str(path.relative_to(store.root))]
        assert not path.exists()
        assert store.stats.errors == 1

    def test_bad_codec_frame_inside_intact_pickle_is_caught(self, store):
        import zlib

        from repro.store.codec import CODEC_VERSION, MAGIC

        # the pickle envelope is flawless; only the framed payload's digest
        # lies — exactly what a torn write followed by a lucky rename, or bit
        # rot under the pickle layer, would look like
        forged = MAGIC + bytes([CODEC_VERSION]) + b"12345678" + zlib.compress(b"payload")
        store.save("file-results", {"k": 1}, forged)
        store.save("donor-runs", {"k": 2}, {"a.test": forged})  # bundle shape
        report = store.audit()
        assert report["corrupt"] == 2
        assert report["verified"] == 0

    def test_intact_codec_frames_pass(self, store):
        from repro.adapters import create_adapter
        from repro.core.runner import TestRunner
        from repro.store.codec import encode_file_result, frame_intact

        suite = build_suite("slt", file_count=1, records_per_file=3, seed=9)
        result = TestRunner(create_adapter("sqlite"), host_name="sqlite").run_suite(suite)
        blob = encode_file_result(result.files[0], suite.files[0])
        assert frame_intact(blob)
        assert not frame_intact(blob[:-1] + bytes([blob[-1] ^ 0xFF]))
        assert not frame_intact(b"garbage")
        assert not frame_intact(None)
        store.save("file-results", {"k": 1}, blob)
        assert store.audit()["verified"] == 1

    def test_namespace_mismatch_is_caught(self, store):
        store.save("ns", {"k": 1}, "value")
        (path,) = self._artifact_paths(store)
        impostor_dir = store.root / "other-ns"
        impostor_dir.mkdir()
        path.rename(impostor_dir / path.name)
        report = store.audit()
        assert report["corrupt"] == 1
        assert report["corrupt_paths"][0].startswith("other-ns/")

    def test_wrong_format_version_is_caught(self, store):
        store.save("ns", {"k": 1}, "value")
        (path,) = self._artifact_paths(store)
        store._write(path, (STORE_FORMAT_VERSION + 1, "ns", "value"))
        report = store.audit()
        assert report["corrupt"] == 1

    def test_audit_sweeps_tmp_unconditionally(self, store):
        store.save("ns", {"k": 1}, "value")
        leftover = store.root / "ns" / ".tmp-killed-writer"
        leftover.write_bytes(b"partial")
        report = store.audit()
        assert report["tmp_swept"] == 1
        assert not leftover.exists()
        assert store.audit(sweep=False)["tmp_swept"] == 0

    def test_sweep_tmp_age_threshold_spares_live_writers(self, store):
        store.save("ns", {"k": 1}, "value")
        fresh = store.root / "ns" / ".tmp-live-writer"
        fresh.write_bytes(b"in flight")
        assert store.sweep_tmp(max_age_seconds=3600) == 0
        assert fresh.exists()
        assert store.sweep_tmp(max_age_seconds=0) == 1
        assert not fresh.exists()

    def test_open_time_sweep_removes_stale_tmp(self, tmp_path):
        import time as _time

        root = tmp_path / "store"
        first = ArtifactStore(root=root, fingerprint="test-fp")
        first.save("ns", {"k": 1}, "value")
        stale = root / "ns" / ".tmp-dead-writer"
        stale.write_bytes(b"partial")
        two_hours_ago = _time.time() - 7200
        os.utime(stale, (two_hours_ago, two_hours_ago))
        reopened = ArtifactStore(root=root, fingerprint="test-fp")
        assert not stale.exists()
        assert reopened.load("ns", {"k": 1}) == "value"

    def test_cli_audit(self, tmp_path):
        import contextlib
        import io

        from repro.experiments.__main__ import main

        root = tmp_path / "cli-store"
        store = ArtifactStore(root=root, fingerprint="cli-fp")
        store.save("ns", {"k": 1}, "value")
        store.save("ns", {"k": 2}, "other")
        path = [p for _, _, p in store._artifact_files()][0]
        path.write_bytes(b"not a pickle")

        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            status = main(["store", "audit", "--store-dir", str(root)])
        assert status == 0
        output = buffer.getvalue()
        assert "verified" in output and "corrupt" in output

    def test_cli_audit_json(self, tmp_path):
        import contextlib
        import io
        import json

        from repro.experiments.__main__ import main

        root = tmp_path / "cli-store"
        ArtifactStore(root=root, fingerprint="cli-fp").save("ns", {"k": 1}, "value")
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            status = main(["store", "audit", "--store-dir", str(root), "--json"])
        assert status == 0
        payload = json.loads(buffer.getvalue())
        assert payload["verified"] == 1
        assert payload["corrupt"] == 0
