"""AdapterPool lifecycle: reuse, reset-on-acquire, and campaign wiring.

The satellite requirement: pooled adapters must be *reused* (not rebuilt) and
must never leak state between suites — a lease always starts from a pristine
database, even after committed DDL/DML, dangling transactions, session
settings, or an emulated crash on the previous lease.
"""

from __future__ import annotations

import threading

import pytest

from repro.adapters import AdapterPool, DBMSAdapter, create_adapter
from repro.adapters.base import ExecutionStatus
from repro.core.transplant import run_matrix, run_transplant
from repro.corpus import build_suite
from repro.errors import AdapterNotFoundError


class TestAcquireRelease:
    def test_miss_builds_and_connects(self):
        with AdapterPool() as pool:
            adapter = pool.acquire("duckdb")
            assert adapter.execute("SELECT 1").ok
            pool.release(adapter)
            assert pool.stats() == {"created": 1, "reused": 0, "idle": 1, "leased": 0}

    def test_hit_returns_same_live_instance(self):
        with AdapterPool() as pool:
            first = pool.acquire("duckdb")
            pool.release(first)
            second = pool.acquire("duckdb")
            assert second is first
            assert pool.reused == 1
            pool.release(second)

    def test_unknown_adapter_name_raises(self):
        with AdapterPool() as pool:
            with pytest.raises(AdapterNotFoundError):
                pool.acquire("oracle")

    def test_aliases_share_the_canonical_pool_slot(self):
        with AdapterPool() as pool:
            canonical = pool.acquire("postgres")
            pool.release(canonical)
            aliased = pool.acquire("postgresql")
            assert aliased is canonical
            assert pool.stats()["created"] == 1 and pool.stats()["reused"] == 1
            pool.release(aliased)

    def test_distinct_kwargs_get_distinct_adapters(self):
        with AdapterPool() as pool:
            plain = pool.acquire("duckdb")
            pool.release(plain)
            seeded = pool.acquire("duckdb", seed=99)
            assert seeded is not plain
            pool.release(seeded)
            assert pool.created == 2

    def test_concurrent_acquires_get_distinct_instances(self):
        with AdapterPool() as pool:
            first = pool.acquire("duckdb")
            second = pool.acquire("duckdb")
            assert first is not second
            assert pool.leased_count == 2
            pool.release(first)
            pool.release(second)


class TestResetSemantics:
    def test_no_table_leak_between_leases(self):
        with AdapterPool() as pool:
            with pool.lease("duckdb") as adapter:
                assert adapter.execute("CREATE TABLE leak(a INTEGER)").ok
                assert adapter.execute("INSERT INTO leak VALUES (1)").ok
            with pool.lease("duckdb") as adapter:
                outcome = adapter.execute("SELECT * FROM leak")
                assert outcome.status is ExecutionStatus.ERROR

    def test_no_transaction_or_settings_leak_between_leases(self):
        with AdapterPool() as pool:
            with pool.lease("postgres") as adapter:
                assert adapter.execute("BEGIN").ok
                assert adapter.execute("CREATE TABLE t(a INTEGER)").ok
                adapter.execute("SET search_path = leaky")
            with pool.lease("postgres") as adapter:
                # the dangling transaction's table and the session setting
                # must both be gone
                outcome = adapter.execute("SELECT * FROM t")
                assert outcome.status is ExecutionStatus.ERROR
                assert adapter.session.settings == {}

    def test_crashed_adapter_is_usable_after_reacquire(self):
        with AdapterPool() as pool:
            with pool.lease("duckdb") as adapter:
                adapter.execute("CREATE TABLE a (b INTEGER)")
                adapter.execute("BEGIN")
                adapter.execute("UPDATE a SET b = 1")
                adapter.execute("COMMIT")
                crash = adapter.execute("UPDATE a SET b = 2")
                assert crash.status is ExecutionStatus.CRASH
            with pool.lease("duckdb") as adapter:
                assert adapter.execute("SELECT 1").ok

    def test_lease_releases_on_exception(self):
        pool = AdapterPool()
        with pytest.raises(RuntimeError):
            with pool.lease("duckdb"):
                raise RuntimeError("boom")
        assert pool.leased_count == 0
        assert pool.idle_count == 1
        pool.close()

    def test_close_is_best_effort_and_never_raises(self):
        pool = AdapterPool()
        bad = pool.acquire("duckdb")
        pool.release(bad)
        good = pool.acquire("duckdb", seed=5)
        pool.release(good)

        def boom():
            raise RuntimeError("teardown boom")

        bad.teardown = boom
        pool.close()  # must not raise (runs from finally blocks)
        assert good.session is None  # the other adapter was still torn down

    def test_release_after_close_tears_down(self):
        pool = AdapterPool()
        adapter = pool.acquire("duckdb")
        pool.close()
        pool.release(adapter)  # must not re-enter the closed pool
        assert pool.idle_count == 0


class TestCampaignReuse:
    def test_serial_matrix_reuses_one_adapter_per_host(self):
        suites = {
            "slt": build_suite("slt", file_count=2, records_per_file=10, seed=21),
            "duckdb": build_suite("duckdb", file_count=2, records_per_file=8, seed=21),
        }
        pool = AdapterPool()
        run_matrix(suites, adapter_pool=pool)
        # 2 suites x 4 hosts = 8 transplants on 4 built adapters
        assert pool.created == 4
        assert pool.reused == 4
        pool.close()

    def test_pooled_matrix_matches_unpooled_results(self):
        # store=None: a stored matrix cell would serve the repeat transplants
        # without ever leasing from the pool, which is the behaviour under test
        suite = build_suite("slt", file_count=2, records_per_file=15, seed=22)
        pool = AdapterPool()
        pooled_first = run_transplant(suite, "duckdb", pool=pool, store=None)
        pooled_second = run_transplant(suite, "duckdb", pool=pool, store=None)  # reused lease
        fresh = run_transplant(suite, "duckdb", store=None)
        for result in (pooled_first, pooled_second):
            assert result.result.passed_cases == fresh.result.passed_cases
            assert result.result.failed_cases == fresh.result.failed_cases
            assert result.result.skipped_cases == fresh.result.skipped_cases
        assert pool.reused == 1
        pool.close()

    def test_sharded_matrix_with_pools_matches_serial(self):
        suites = {"slt": build_suite("slt", file_count=4, records_per_file=15, seed=23)}
        serial = run_matrix(suites, hosts=("sqlite", "duckdb"))
        sharded = run_matrix(suites, hosts=("sqlite", "duckdb"), workers=3, executor="thread")
        for key, entry in serial.entries.items():
            assert sharded.entries[key].result.passed_cases == entry.result.passed_cases
            assert sharded.entries[key].result.failed_cases == entry.result.failed_cases

    def test_worker_pool_shutdown_reclaims_dead_thread_pools(self):
        from repro.core import parallel

        suite = build_suite("slt", file_count=3, records_per_file=10, seed=24)
        run_matrix({"slt": suite}, hosts=("duckdb",), workers=3, executor="thread")
        # run_matrix shut its WorkerPool down: the executor threads are dead
        # and their adapter pools must have been closed and deregistered
        with parallel._WORKER_POOL_REGISTRY_LOCK:
            leftovers = [t for t, _ in parallel._WORKER_POOL_REGISTRY if not t.is_alive()]
        assert leftovers == []


class TestThreadSafety:
    def test_parallel_lease_cycles_do_not_corrupt_the_pool(self):
        pool = AdapterPool()
        errors: list[Exception] = []

        def worker() -> None:
            try:
                for _ in range(5):
                    with pool.lease("duckdb") as adapter:
                        assert adapter.execute("SELECT 1").ok
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert pool.leased_count == 0
        assert pool.created + pool.reused == 20
        pool.close()


class TestLifecycleProtocol:
    def test_setup_teardown_default_to_connect_close(self):
        adapter = create_adapter("duckdb")
        adapter.setup()
        assert adapter.execute("SELECT 1").ok
        adapter.teardown()
        assert adapter.session is None

    def test_context_manager_drives_lifecycle(self):
        with create_adapter("duckdb") as adapter:
            assert isinstance(adapter, DBMSAdapter)
            assert adapter.execute("SELECT 1").ok
        assert adapter.session is None


class TestCircuitBreaker:
    """Quarantine semantics: consecutive failures trip, success resets."""

    def _fresh(self):
        from repro.adapters.pool import CircuitBreaker

        return CircuitBreaker(threshold=3)

    def test_threshold_consecutive_failures_quarantine(self):
        from repro.adapters.pool import pool_key

        breaker = self._fresh()
        key = pool_key("duckdb", {})
        assert breaker.record_failure(key, detail="one") is False
        assert breaker.record_failure(key, detail="two") is False
        assert breaker.record_failure(key, detail="three") is True  # newly quarantined
        assert breaker.is_quarantined(key)
        assert breaker.quarantine_detail(key) == "three"
        # further failures on a quarantined key are no-ops
        assert breaker.record_failure(key, detail="four") is False

    def test_success_resets_the_streak(self):
        from repro.adapters.pool import pool_key

        breaker = self._fresh()
        key = pool_key("duckdb", {})
        breaker.record_failure(key)
        breaker.record_failure(key)
        breaker.record_success(key)
        assert breaker.record_failure(key) is False  # streak restarted at 1
        assert not breaker.is_quarantined(key)

    def test_keys_are_independent(self):
        from repro.adapters.pool import pool_key

        breaker = self._fresh()
        for _ in range(3):
            breaker.record_failure(pool_key("duckdb", {}))
        assert breaker.is_quarantined(pool_key("duckdb", {}))
        assert not breaker.is_quarantined(pool_key("mysql", {}))
        assert breaker.quarantined_keys() == [pool_key("duckdb", {})]

    def test_quarantined_key_refused_by_acquire(self):
        from repro.adapters.pool import CircuitBreaker, pool_key
        from repro.errors import AdapterQuarantinedError

        breaker = CircuitBreaker(threshold=1)
        breaker.record_failure(pool_key("duckdb", {}), detail="broken")
        with AdapterPool(breaker=breaker) as pool:
            with pytest.raises(AdapterQuarantinedError, match="quarantined"):
                pool.acquire("duckdb")
            # aliases collapse onto the quarantined canonical key too
            adapter = pool.acquire("mysql")  # other keys unaffected
            pool.release(adapter)

    def test_reset_clears_quarantine(self):
        from repro.adapters.pool import CircuitBreaker, pool_key

        breaker = CircuitBreaker(threshold=1)
        breaker.record_failure(pool_key("duckdb", {}))
        breaker.reset()
        assert not breaker.is_quarantined(pool_key("duckdb", {}))
        assert breaker.quarantined_keys() == []


class TestFailureTeardown:
    """A unit of work that raises must discard its lease, never re-pool it."""

    def test_failing_cell_discards_its_lease(self):
        from repro.adapters.pool import adapter_breaker
        from repro.core.resilience import ResiliencePolicy, RetryPolicy
        from repro.testing.chaos import FaultSchedule, FaultSpec, inject_adapter

        suite = build_suite("slt", file_count=2, records_per_file=10, seed=31, store=None)
        policy = ResiliencePolicy(
            retry=RetryPolicy(attempts=1, base_delay=0.001, jitter=0.0), quarantine_after=10
        )
        pool = AdapterPool()
        schedule = FaultSchedule([FaultSpec(op="execute", at=1, every=True)])
        try:
            with inject_adapter("duckdb", schedule):
                result = run_transplant(suite, "duckdb", pool=pool, store=None, resilience=policy)
            # the broken adapter was discarded, not parked for the next lease
            assert pool.idle_count == 0
            assert pool.leased_count == 0
            assert pool.created == 1
            assert [failure.kind for failure in result.infra_failures] == ["retry-exhausted"]
        finally:
            pool.close()
            adapter_breaker().reset()

    def test_failing_shard_discards_its_worker_lease(self):
        from repro.adapters.pool import adapter_breaker
        from repro.core import parallel
        from repro.core.resilience import ResiliencePolicy, RetryPolicy
        from repro.testing.chaos import FaultSchedule, FaultSpec, inject_adapter

        suite = build_suite("slt", file_count=2, records_per_file=10, seed=32, store=None)
        spec = parallel.RunnerSpec(adapter_name="duckdb", host_name="duckdb", donor_dialect="slt")
        policy = ResiliencePolicy(
            retry=RetryPolicy(attempts=1, base_delay=0.001, jitter=0.0), quarantine_after=10
        )
        worker_pool = parallel.worker_adapter_pool()
        idle_before, leased_before = worker_pool.idle_count, worker_pool.leased_count
        schedule = FaultSchedule([FaultSpec(op="execute", at=1, every=True)])
        try:
            with inject_adapter("duckdb", schedule):
                results, _, failures = parallel._run_shard(
                    spec, [(0, suite.files[0])], collect_stats=False, policy=policy
                )
            assert [failure.kind for failure in failures] == ["retry-exhausted"]
            assert len(results) == 1
            # the chaos adapter the shard leased was discarded on failure:
            # nothing new parked idle, nothing left leased
            assert worker_pool.idle_count == idle_before
            assert worker_pool.leased_count == leased_before
        finally:
            adapter_breaker().reset()
