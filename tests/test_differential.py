"""Differential test harness: campaign variants that must be byte-identical.

The incremental-campaign machinery rests on a family of equality guarantees —
incremental == full re-execution, warm store == cold == storeless, workers 1
== workers 4, vectorized == scalar row-at-a-time — and every one of them is
"byte-identical under the canonical serialization"
(:func:`repro.store.canonical_bytes`), not merely "same aggregates".  :func:`assert_equivalent` is the single reusable way to
pin such guarantees: hand it labelled campaign variants and it asserts that
every one produces the same canonical bytes.  test_parallel.py and
test_codec.py build their parity checks on it instead of copy-pasting
aggregate comparisons.
"""

from __future__ import annotations

import pytest

from repro.analysis import ANALYSIS_PASSES
from repro.analysis.incremental import SuiteAnalyzer, direct_report
from repro.core.records import TestSuite
from repro.core.transplant import run_transplant
from repro.corpus import build_suite
from repro.perf import vectorize
from repro.store import ArtifactStore, canonical_bytes


def assert_equivalent(campaign_variants):
    """Assert that every labelled campaign variant is byte-identical.

    ``campaign_variants`` maps a label to either a zero-argument callable
    producing a result or an already-computed result.  Results may be
    anything the canonical serialization can walk — ``TransplantResult``,
    ``SuiteResult``, ``TransplantMatrix``, lists of them, ...  Variants run
    in mapping order (so a "cold" variant can populate a store that a later
    "warm" variant reads), the first is the reference, and any divergence
    fails with the offending labels.  Returns label -> result so callers can
    make additional variant-specific assertions.
    """
    if not campaign_variants:
        raise ValueError("assert_equivalent needs at least one campaign variant")
    results = {}
    reference_label = None
    reference_bytes = None
    for label, variant in campaign_variants.items():
        value = variant() if callable(variant) else variant
        results[label] = value
        rendered = canonical_bytes(value)
        if reference_bytes is None:
            reference_label, reference_bytes = label, rendered
        else:
            assert rendered == reference_bytes, (
                f"campaign variant {label!r} diverges from {reference_label!r}"
            )
    return results


#: The two transplant legs the parity satellites have always pinned: the SLT
#: suite on DuckDB (plain) and the PostgreSQL suite on MySQL (translated).
WORKLOADS = (
    ("slt", "duckdb", False),
    ("postgres", "mysql", True),
)


def _wipe(store: ArtifactStore, *namespaces: str) -> None:
    """Delete every artifact of the given namespaces (forces re-derivation)."""
    for namespace in namespaces:
        for path in (store.root / namespace).rglob("*.pkl"):
            path.unlink()


class TestCampaignVariants:
    """The full equivalence lattice on both reference workloads."""

    @pytest.mark.parametrize("suite_name,host,translate", WORKLOADS)
    def test_incremental_warm_sharded_and_full_all_match(self, suite_name, host, translate, tmp_path):
        suite = build_suite(suite_name, file_count=4, records_per_file=20, seed=23, store=None)
        store = ArtifactStore(root=tmp_path / "store", fingerprint="diff-fp")
        full_store = ArtifactStore(root=tmp_path / "full-store", fingerprint="diff-fp")

        def run(**kwargs):
            return lambda: run_transplant(suite, host, translate_dialect=translate, **kwargs)

        def scalar(invoke):
            # same campaign, columnar executor paths off: the vectorized
            # engine (the reference variant above) must be byte-identical to
            # the scalar row-at-a-time fallback, serial and under workers
            def wrapped():
                with vectorize.vectorize_disabled():
                    return invoke()

            return wrapped

        def assembled(**kwargs):
            # drop the suite-level cells so the run must assemble from the
            # per-file artifacts the cold variant persisted
            def invoke():
                _wipe(store, "matrix-cells", "donor-runs")
                return run_transplant(suite, host, translate_dialect=translate, store=store, **kwargs)

            return invoke

        variants = assert_equivalent(
            {
                "storeless-serial": run(store=None),
                "storeless-workers-4": run(store=None, workers=4, executor="thread"),
                "scalar-serial": scalar(run(store=None)),
                "scalar-workers-4": scalar(run(store=None, workers=4, executor="thread")),
                "full-no-incremental": run(store=full_store, incremental=False),
                "incremental-cold": run(store=store),
                "warm-replay": run(store=store),
                "assembled-serial": assembled(),
                "assembled-workers-4": assembled(workers=4, executor="thread"),
            }
        )
        assert variants["warm-replay"].result.total_cases > 0

    @pytest.mark.parametrize("suite_name,host,translate", WORKLOADS)
    def test_single_file_edit_matches_full_re_execution(self, suite_name, host, translate, tmp_path):
        base = build_suite(suite_name, file_count=4, records_per_file=20, seed=23, store=None)
        donor = build_suite(suite_name, file_count=4, records_per_file=20, seed=24, store=None)
        # "edit" file 2: same path, different content (a donor file from
        # another seed), exactly what a hand-edited scenario file looks like
        edited = TestSuite(name=base.name, files=[*base.files[:2], donor.files[2], *base.files[3:]])
        assert edited.files[2].path == base.files[2].path

        store = ArtifactStore(root=tmp_path / "store", fingerprint="diff-fp")
        run_transplant(base, host, translate_dialect=translate, store=store)  # seed per-file artifacts
        store.stats.reset()

        results = assert_equivalent(
            {
                "storeless-serial": lambda: run_transplant(edited, host, translate_dialect=translate, store=None),
                "storeless-workers-4": lambda: run_transplant(
                    edited, host, translate_dialect=translate, store=None, workers=4, executor="thread"
                ),
                "incremental-rebuild": lambda: run_transplant(edited, host, translate_dialect=translate, store=store),
            }
        )
        # the incremental rebuild must have loaded the three untouched files
        # and executed exactly the edited one
        lookups = store.stats.by_namespace["file-results"]
        assert lookups == {"hits": 3, "misses": 1}
        assert results["incremental-rebuild"].result.total_cases > 0


class TestAnalysisVariants:
    """Incremental analysis == the direct whole-suite scanners, byte for byte.

    The analysis counterpart of :class:`TestCampaignVariants`: every RQ1/RQ2
    answer (Table 2 census, Figure 2 distribution, both Table 3 variants,
    Figure 3 predicates/joins, Figure 1 sizes) assembled from ``file-analysis``
    partials must be byte-identical — canonical serialization — to the direct
    scan, cold store, warm store, storeless, and at workers 1 and 4.
    """

    @pytest.mark.parametrize("suite_name", ("slt", "postgres"))
    def test_assembled_matches_direct_across_stores_and_workers(self, suite_name, tmp_path):
        suite = build_suite(suite_name, file_count=4, records_per_file=20, seed=23, store=None)
        store = ArtifactStore(root=tmp_path / "store", fingerprint="diff-fp")

        def assembled(**kwargs):
            return lambda: SuiteAnalyzer(store=store, **kwargs).full_report(suite)

        assert_equivalent(
            {
                "direct-scan": lambda: direct_report(suite),
                "storeless-serial": lambda: SuiteAnalyzer(store=None).full_report(suite),
                "storeless-workers-4": lambda: SuiteAnalyzer(store=None, workers=4, executor="thread").full_report(suite),
                "assembled-cold": assembled(),
                "assembled-warm": assembled(),
                "assembled-warm-workers-4": assembled(workers=4, executor="thread"),
            }
        )
        # the cold pass wrote one partial per (file, pass); both warm replays
        # then served every lookup from the store
        lookups = store.stats.by_namespace["file-analysis"]
        passes = len(ANALYSIS_PASSES)
        assert lookups == {"hits": 2 * 4 * passes, "misses": 4 * passes}

    @pytest.mark.parametrize("suite_name", ("slt", "postgres"))
    def test_single_file_edit_reanalyzes_exactly_one_file(self, suite_name, tmp_path):
        base = build_suite(suite_name, file_count=4, records_per_file=20, seed=23, store=None)
        donor = build_suite(suite_name, file_count=4, records_per_file=20, seed=24, store=None)
        edited = TestSuite(name=base.name, files=[*base.files[:2], donor.files[2], *base.files[3:]])
        assert edited.files[2].path == base.files[2].path

        store = ArtifactStore(root=tmp_path / "store", fingerprint="diff-fp")
        SuiteAnalyzer(store=store).full_report(base)  # seed per-file partials
        store.stats.reset()

        assert_equivalent(
            {
                "storeless-direct": lambda: direct_report(edited),
                "assembled-rebuild": lambda: SuiteAnalyzer(store=store).full_report(edited),
            }
        )
        # every pass loaded the three untouched files and re-scanned the edited one
        passes = len(ANALYSIS_PASSES)
        lookups = store.stats.by_namespace["file-analysis"]
        assert lookups == {"hits": 3 * passes, "misses": 1 * passes}


class TestStreamingCampaignParity:
    """One streaming pass == the serial batch, byte for byte.

    The streaming engine's core guarantee: because experiments accumulate
    cells and compute everything in ``finalize``, a pass that overlaps cells
    (width 4), runs on a sharded context (workers 4), executes scalar
    (vectorize off), or replays from a warm store must produce results
    byte-identical to the serial storeless batch — only the *yield order* may
    differ, so variants are compared in registry order.
    """

    def _ordered(self, results):
        from repro.experiments.registry import EXPERIMENTS

        order = {experiment_id: index for index, experiment_id in enumerate(EXPERIMENTS)}
        return sorted(results, key=lambda result: order[result.experiment_id])

    def test_stream_matches_batch_across_widths_workers_and_stores(self, tmp_path):
        from repro.experiments import ExperimentContext, stream_experiments
        from repro.experiments.stream import run_batch
        from repro.perf import cache as perf_cache

        scale, seed = 0.06, 7

        def context(**kwargs):
            kwargs.setdefault("use_store", False)
            return ExperimentContext(scale=scale, seed=seed, **kwargs)

        def batch(**kwargs):
            return lambda: run_batch(None, context(**kwargs))

        def stream(width, **kwargs):
            return lambda: self._ordered(stream_experiments(None, context(**kwargs), max_inflight=width))

        def scalar_stream():
            with vectorize.vectorize_disabled():
                return self._ordered(stream_experiments(None, context(), max_inflight=1))

        def cacheless_stream():
            # caching off disables the translated-donor aliasing: the pass
            # executes those cells for real and must still match
            perf_cache.set_caching(False)
            try:
                return self._ordered(stream_experiments(None, context(), max_inflight=1))
            finally:
                perf_cache.set_caching(True)

        store_dir = str(tmp_path / "store")
        results = assert_equivalent(
            {
                "batch-serial-storeless": batch(),
                "stream-serial-storeless": stream(1),
                "stream-width-4-storeless": stream(4),
                "stream-width-4-workers-4": stream(4, workers=4, executor="thread"),
                "scalar-stream-serial": scalar_stream,
                "cacheless-stream-serial": cacheless_stream,
                "batch-store-cold": batch(use_store=True, store_dir=store_dir),
                "stream-width-4-store-warm": stream(4, use_store=True, store_dir=store_dir),
            }
        )
        assert len(results["batch-serial-storeless"]) == 14

    def test_selected_subset_stream_matches_batch(self):
        from repro.experiments import ExperimentContext, stream_experiments
        from repro.experiments.stream import run_batch

        selected = ["figure4", "table6", "bugs"]

        def context():
            return ExperimentContext(scale=0.06, seed=7, use_store=False)

        results = assert_equivalent(
            {
                "batch": lambda: run_batch(selected, context()),
                "stream-width-3": lambda: self._ordered(stream_experiments(selected, context(), max_inflight=3)),
            }
        )
        assert [result.experiment_id for result in results["batch"]] == selected
