"""Failure classification (RQ3/RQ4 taxonomies) and delta-debugging reduction."""

import pytest

from repro.adapters.minidb_adapter import MiniDBAdapter
from repro.core.classification import (
    DependencyCategory,
    IncompatibilityCategory,
    DifficultyCategory,
    category_histogram,
    classify_dependency,
    classify_failures,
    classify_incompatibility,
    classify_difficulty,
    sample_failures,
    unexpected_status_share,
)
from repro.core.records import QueryRecord, StatementRecord
from repro.core.runner import RecordOutcome, RecordResult
from repro.core.comparison import ComparisonResult
from repro.core.reducer import make_crash_predicate, make_error_predicate, reduce_statements


def failed(sql, error="", error_type="", reason="", comparison=None, is_query=False):
    record = QueryRecord(sql=sql) if is_query else StatementRecord(sql=sql)
    return RecordResult(record=record, outcome=RecordOutcome.FAIL, error=error, error_type=error_type, reason=reason, comparison=comparison)


class TestIncompatibilityClassification:
    def test_unsupported_statement(self):
        result = failed("PRAGMA x = 1", error="PostgreSQL (MiniDB) does not support PRAGMA statements", error_type="UnsupportedStatementError")
        assert classify_incompatibility(result) is IncompatibilityCategory.STATEMENTS

    def test_unsupported_function(self):
        result = failed("SELECT pg_typeof(1)", error="no such function: pg_typeof", error_type="UnsupportedFunctionError")
        assert classify_incompatibility(result) is IncompatibilityCategory.FUNCTIONS

    def test_unsupported_type(self):
        result = failed("CREATE TABLE t(s VARCHAR)", error="VARCHAR requires a length in this dialect", error_type="UnsupportedTypeError")
        assert classify_incompatibility(result) is IncompatibilityCategory.TYPES

    def test_unsupported_operator(self):
        result = failed("SELECT 1::TEXT", error="the :: cast operator is not supported", error_type="UnsupportedOperatorError")
        assert classify_incompatibility(result) is IncompatibilityCategory.OPERATORS

    def test_configuration(self):
        result = failed("SET default_null_order='nulls_first'", error='unrecognized configuration parameter "default_null_order"', error_type="ConfigurationError")
        assert classify_incompatibility(result) is IncompatibilityCategory.CONFIGURATIONS

    def test_semantic_result_mismatch(self):
        comparison = ComparisonResult(matches=False, reason="value mismatch: expected '31', got '31.0'", mismatch_kind="value")
        result = failed("SELECT 62 / 2", reason=comparison.reason, comparison=comparison, is_query=True)
        assert classify_incompatibility(result) is IncompatibilityCategory.SEMANTIC

    def test_sqlite3_message_patterns(self):
        result = failed("SELECT md5('x')", error="no such function: md5", error_type="OperationalError")
        assert classify_incompatibility(result) is IncompatibilityCategory.FUNCTIONS
        result = failed("SELECT 1::TEXT", error='near "::": syntax error', error_type="OperationalError")
        assert classify_incompatibility(result) is IncompatibilityCategory.OPERATORS


class TestDependencyClassification:
    def test_file_paths(self):
        result = failed("COPY t FROM '/home/postgres/data/t.data'", error="could not open file")
        assert classify_dependency(result) is DependencyCategory.FILE_PATHS

    def test_extension(self):
        result = failed("CREATE FUNCTION f(internal) RETURNS void AS 'regresslib', 'f' LANGUAGE C", error="does not support CREATE FUNCTION", error_type="UnsupportedStatementError")
        assert classify_dependency(result) is DependencyCategory.EXTENSION

    def test_setting_via_show(self):
        comparison = ComparisonResult(matches=False, reason="value mismatch: expected 'Postgres, DMY', got 'NULL'", mismatch_kind="value")
        result = failed("SHOW datestyle", reason=comparison.reason, comparison=comparison, is_query=True)
        assert classify_dependency(result) is DependencyCategory.SETTING

    def test_setup_missing_table(self):
        result = failed("SELECT count(*) FROM onek", error="no such table: onek", error_type="CatalogError")
        assert classify_dependency(result) is DependencyCategory.SETUP

    def test_setup_cascaded_mismatch(self):
        comparison = ComparisonResult(matches=False, reason="expected 3 rows, got 0", mismatch_kind="row_count")
        result = failed("SELECT a FROM t1", reason=comparison.reason, comparison=comparison, is_query=True)
        assert classify_dependency(result) is DependencyCategory.SETUP

    def test_client_format(self):
        comparison = ComparisonResult(matches=False, reason="value mismatch: expected \"['1', '2']\", got '[1, 2]'", mismatch_kind="value")
        result = failed("SELECT [1, 2]", reason=comparison.reason, comparison=comparison, is_query=True)
        assert classify_dependency(result) is DependencyCategory.CLIENT_FORMAT

    def test_client_numeric(self):
        comparison = ComparisonResult(matches=False, reason="value mismatch: expected '4999', got '4999.5'", mismatch_kind="value")
        result = failed("SELECT 9999 / 2.0", reason=comparison.reason, comparison=comparison, is_query=True)
        assert classify_dependency(result) is DependencyCategory.CLIENT_NUMERIC

    def test_runner_directive(self):
        result = failed("hash-threshold 100", error="syntax error", error_type="SQLSyntaxError")
        assert classify_dependency(result) is DependencyCategory.RUNNER


class TestDifficultyAndHelpers:
    def test_difficulty_rollup(self):
        semantic = failed("SELECT 62 / 2", reason="value mismatch", comparison=ComparisonResult(matches=False, reason="value mismatch: expected '31', got '31.0'", mismatch_kind="value"), is_query=True)
        assert classify_difficulty(semantic) is DifficultyCategory.SEMANTIC
        feature = failed("PRAGMA x=1", error="does not support PRAGMA statements", error_type="UnsupportedStatementError")
        assert classify_difficulty(feature) is DifficultyCategory.DIALECT_FEATURE

    def test_classify_failures_filters_passes(self):
        passing = RecordResult(record=StatementRecord(sql="SELECT 1"), outcome=RecordOutcome.PASS)
        failing = failed("PRAGMA x=1", error_type="UnsupportedStatementError", error="unsupported")
        classified = classify_failures([passing, failing])
        assert len(classified) == 1

    def test_category_histogram(self):
        failures = [failed("PRAGMA x=1", error_type="UnsupportedStatementError", error="unsupported") for _ in range(3)]
        histogram = category_histogram(classify_failures(failures))
        assert histogram[IncompatibilityCategory.STATEMENTS] == 3

    def test_sample_failures_is_deterministic(self):
        failures = [failed(f"SELECT {i}", error="x", error_type="DatabaseError") for i in range(300)]
        first = sample_failures(failures, sample_size=50, seed=1)
        second = sample_failures(failures, sample_size=50, seed=1)
        assert [result.sql for result in first] == [result.sql for result in second]
        assert len(first) == 50

    def test_unexpected_status_share(self):
        with_error = failed("SELECT 1", error="boom", error_type="DatabaseError", is_query=True)
        without_error = failed("SELECT 2", is_query=True)
        assert unexpected_status_share([with_error, without_error]) == 0.5


class TestReducer:
    def test_reduce_crash_sequence_to_minimum(self):
        statements = [
            "CREATE TABLE a (b INTEGER)",
            "INSERT INTO a VALUES (0)",
            "SELECT * FROM a",
            "BEGIN",
            "INSERT INTO a VALUES (1)",
            "UPDATE a SET b = b + 10",
            "COMMIT",
            "SELECT count(*) FROM a",
            "UPDATE a SET b = b + 10",
        ]
        predicate = make_crash_predicate(lambda: MiniDBAdapter("duckdb"))
        reduced = reduce_statements(statements, predicate)
        assert predicate(reduced)
        assert len(reduced) < len(statements)
        # the essential transaction skeleton must survive reduction
        assert any(statement.startswith("UPDATE") for statement in reduced)

    def test_reduce_single_statement_crash(self):
        statements = ["SELECT 1", "ALTER SCHEMA a RENAME TO b", "SELECT 2"]
        predicate = make_crash_predicate(lambda: MiniDBAdapter("duckdb"))
        reduced = reduce_statements(statements, predicate)
        assert reduced == ["ALTER SCHEMA a RENAME TO b"]

    def test_non_failing_input_returned_unchanged(self):
        statements = ["SELECT 1", "SELECT 2"]
        predicate = make_crash_predicate(lambda: MiniDBAdapter("duckdb"))
        assert reduce_statements(statements, predicate) == statements

    def test_error_predicate(self):
        predicate = make_error_predicate(lambda: MiniDBAdapter("postgres"), "division by zero")
        reduced = reduce_statements(["SELECT 1", "SELECT 1 / 0", "SELECT 2"], predicate)
        assert reduced == ["SELECT 1 / 0"]
