"""Crash-safety: kill-point SIGKILLs, resume convergence, drain, containment.

Three layers of proof that a campaign survives violent death:

* **Kill-point chaos** — a real journaled campaign runs in a subprocess that
  SIGKILLs *itself* at injected operation points (mid store write, right
  after a journal append, between cells).  After every kill the store must
  audit clean, the journal must replay, and re-running the same campaign
  must converge to a result byte-identical to a never-killed reference —
  with only the work that was genuinely in flight re-executed.
* **Graceful drain** — SIGTERM against a live campaign finishes in-flight
  files, flushes, exits with the degraded code 2 and prints the exact resume
  command; the resumed campaign is byte-identical to the reference.
* **Worker-crash containment** — SIGKILL of a process-pool *worker* costs
  exactly the tasks that never returned: the pool rebuilds once and
  re-dispatches only those, without degrading the campaign.

Every subprocess scenario shares one small campaign shape (suite/files/
records/seed below) so a single clean reference digest anchors all the
byte-identity assertions.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.core.journal import replay_journal
from repro.core.parallel import WorkerPool
from repro.store.artifacts import ArtifactStore
from repro.testing import run_crash_campaign

#: the one campaign shape every subprocess scenario runs
CHILD_ARGS = ("--files", "3", "--records", "3", "--seed", "11")
FILES = 3


@pytest.fixture(scope="module")
def reference_digest(tmp_path_factory):
    """Digest of the campaign run cleanly, never signalled, in its own store."""
    store = tmp_path_factory.mktemp("reference-store")
    outcome = run_crash_campaign(store, child_args=CHILD_ARGS)
    assert outcome.returncode == 0, outcome.stderr
    assert outcome.summary is not None and outcome.summary["complete"]
    return outcome.summary["digest"]


class TestKillPointResume:
    #: operation points covering every durability seam: the store's tmp file,
    #: the store's publish rename, the journal fsync, and both cell edges
    KILL_POINTS = [
        "store-tmp:1",
        "store-write:2",
        "journal-append:1",
        "journal-append:2",
        "cell-start:1",
        "cell-finish:1",
        "file-finish:2",
    ]

    @pytest.mark.parametrize("kill_point", KILL_POINTS)
    def test_sigkill_then_resume_is_byte_identical(self, tmp_path, kill_point, reference_digest):
        store_dir = tmp_path / "store"
        once_dir = tmp_path / "once"
        once_dir.mkdir()

        killed = run_crash_campaign(
            store_dir, child_args=CHILD_ARGS, kill_points=kill_point, kill_once_dir=once_dir
        )
        assert killed.killed, (
            f"kill point {kill_point} never fired (rc={killed.returncode}); "
            f"stderr: {killed.stderr[-500:]}"
        )

        # invariant 1: whatever instant the process died at, the store holds
        # only complete, digest-clean artifacts (plus sweepable tmp leftovers)
        audit = ArtifactStore(root=store_dir).audit()
        assert audit["corrupt"] == 0, audit

        # invariant 2: the journal replays — a torn tail is tolerated, and
        # the state it folds to is usable for resume
        journals = list((store_dir / "journals").glob("*.jsonl"))
        for journal in journals:
            replay_journal(journal)  # must not raise

        # invariant 3: the resumed campaign converges to the reference result
        resumed = run_crash_campaign(store_dir, child_args=CHILD_ARGS)
        assert resumed.returncode == 0, resumed.stderr
        assert resumed.summary["complete"]
        assert resumed.summary["digest"] == reference_digest
        # and the journal now records the campaign complete
        final = replay_journal(max((store_dir / "journals").glob("*.jsonl")))
        assert final.incomplete_cells() == []

    def test_kill_after_files_persisted_reexecutes_only_in_flight(self, tmp_path, reference_digest):
        """A kill after N files are persisted re-executes at most FILES - N."""
        store_dir = tmp_path / "store"
        once_dir = tmp_path / "once"
        once_dir.mkdir()
        persisted = 2
        killed = run_crash_campaign(
            store_dir,
            child_args=CHILD_ARGS,
            kill_points=f"file-finish:{persisted}",
            kill_once_dir=once_dir,
        )
        assert killed.killed

        resumed = run_crash_campaign(store_dir, child_args=CHILD_ARGS)
        assert resumed.returncode == 0, resumed.stderr
        assert resumed.summary["digest"] == reference_digest
        lookups = resumed.summary["store"]["namespace_lookups"].get("file-results", {})
        # the persisted files load; only the in-flight tail re-executes
        assert lookups.get("hits", 0) >= persisted
        assert lookups.get("misses", 0) <= FILES - persisted


class TestGracefulDrain:
    def test_sigterm_drains_exits_2_and_prints_resume_command(self, tmp_path, reference_digest):
        store_dir = tmp_path / "store"
        ready = tmp_path / "ready"
        drained = run_crash_campaign(
            store_dir,
            child_args=CHILD_ARGS + ("--slow", "0.05", "--ready-file", str(ready), "--executor", "thread"),
            send_signal=signal.SIGTERM,
            ready_file=ready,
        )
        assert drained.returncode == 2, drained.stderr
        assert drained.summary is not None, drained.stdout
        assert drained.summary["drained"]
        assert drained.summary["failure_kinds"] == ["shutdown-drain"]
        assert "received SIGTERM: draining" in drained.stderr
        assert "resume with:" in drained.stderr

        resumed = run_crash_campaign(store_dir, child_args=CHILD_ARGS)
        assert resumed.returncode == 0, resumed.stderr
        assert resumed.summary["digest"] == reference_digest

    def test_sigint_drains_too(self, tmp_path):
        store_dir = tmp_path / "store"
        ready = tmp_path / "ready"
        drained = run_crash_campaign(
            store_dir,
            child_args=CHILD_ARGS + ("--slow", "0.05", "--ready-file", str(ready), "--executor", "thread"),
            send_signal=signal.SIGINT,
            ready_file=ready,
        )
        assert drained.returncode == 2, drained.stderr
        assert drained.summary["drained"]


# -- worker-crash containment ----------------------------------------------------------


def _claim_marker(marker: str) -> bool:
    """Atomically claim a cross-process one-shot marker; True when won."""
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def _killable_task(value: int, markers: "tuple[str, ...]"):
    """Doubles ``value``; SIGKILLs its worker once per unclaimed marker."""
    for marker in markers:
        if _claim_marker(marker):
            os.kill(os.getpid(), signal.SIGKILL)
    return value * 2


class TestWorkerCrashContainment:
    def test_killed_worker_costs_only_unfinished_tasks(self, tmp_path):
        """SIGKILL of one worker: pool rebuilds, every task still completes."""
        marker = str(tmp_path / "kill-once")
        pool = WorkerPool(2, "process")
        try:
            tasks = [(index, (marker,) if index == 2 else ()) for index in range(6)]
            results = pool.map_tasks(_killable_task, tasks)
            assert results == [index * 2 for index in range(6)]
            # containment rebuilt the process pool rather than degrading the
            # whole campaign to threads
            assert pool.flavour == "process"
        finally:
            pool.shutdown()

    def test_second_break_degrades_to_threads(self, tmp_path):
        """A pool that keeps breaking degrades sticky instead of looping."""
        # two markers on one task: it kills the original pool, is re-dispatched
        # on the rebuilt pool and kills that too, so the pool must fall back —
        # and the thread-lane retry finally completes it (markers exhausted)
        markers = (str(tmp_path / "kill-0"), str(tmp_path / "kill-1"))
        pool = WorkerPool(2, "process")
        try:
            tasks = [(index, markers if index == 1 else ()) for index in range(4)]
            results = pool.map_tasks(_killable_task, tasks)
            assert results == [index * 2 for index in range(4)]
            assert pool.flavour == "thread"
        finally:
            pool.shutdown()
