"""The compact result codec and the full-matrix cell reuse built on it.

Pinned invariants:

* **Roundtrip fidelity** — for every suite format (SLT, PostgreSQL, DuckDB,
  MySQL) and for donor *and* cross-host cells, ``decode(encode(x))`` is
  byte-identical to ``x`` under the canonical serialization the store keys
  use.  This is the property that lets warm campaigns replace execution.
* **Version/corruption rejection** — a bumped codec version, a truncated
  frame, flipped payload bytes, or a pre-codec pickle all read as a *miss*
  (``CodecError`` → recompute), never as plausible results.
* **Warm-cell parity** — a warm full matrix equals a storeless run byte for
  byte with ``workers=1`` and ``workers=4``, and store-aware workers serve
  per-file results without executing.
* **Compactness** — codec payloads undercut the PR 3 whole-object pickles by
  the documented margin (>=5x) on a representative cell.
"""

from __future__ import annotations

import pickle

import pytest

from test_differential import assert_equivalent

from repro.core.transplant import DONOR_OF_SUITE, run_matrix, run_transplant
from repro.corpus import build_suite
from repro.store import (
    ArtifactStore,
    CodecError,
    canonical_bytes,
    decode_file_result,
    decode_suite_result,
    decode_transplant_result,
    encode_file_result,
    encode_suite_result,
    encode_transplant_result,
    store_disabled,
)
from repro.store import codec as codec_module


@pytest.fixture
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(root=tmp_path / "store", fingerprint="codec-fp")


#: (suite name, host for the cross-host leg) per format; small sizes keep the
#: four-format sweep fast while covering every result shape (value-wise,
#: row-wise, hash, table; errors; skips).
FORMAT_WORKLOADS = (
    ("slt", "duckdb"),
    ("postgres", "mysql"),
    ("duckdb", "sqlite"),
    ("mysql", "postgres"),
)


def _suite_for(name: str):
    return build_suite(name, file_count=2, records_per_file=20, seed=13, store=None)


class TestRoundtrip:
    @pytest.mark.parametrize("suite_name,cross_host", FORMAT_WORKLOADS)
    def test_transplant_roundtrip_all_formats(self, suite_name, cross_host):
        suite = _suite_for(suite_name)
        for host, translate in ((cross_host, False), (cross_host, True), (None, False)):
            target = host or DONOR_OF_SUITE[suite_name]  # None -> donor-on-donor
            result = run_transplant(suite, target, translate_dialect=translate, store=None)
            blob = encode_transplant_result(result, suite)
            # verify=True re-checks every per-section column digest on top of
            # the frame digest: any encode/decode asymmetry fails loudly here
            decoded = decode_transplant_result(blob, suite, verify=True)
            assert canonical_bytes(decoded) == canonical_bytes(result), (suite_name, target, translate)
            # fault reports are re-derived, not stored: still identical
            assert canonical_bytes(decoded.crashes) == canonical_bytes(result.crashes)
            assert canonical_bytes(decoded.hangs) == canonical_bytes(result.hangs)

    def test_suite_result_roundtrip(self):
        suite = _suite_for("slt")
        result = run_transplant(suite, "duckdb", store=None).result
        decoded = decode_suite_result(encode_suite_result(result, suite), suite, verify=True)
        assert canonical_bytes(decoded) == canonical_bytes(result)

    def test_file_result_roundtrip(self):
        suite = _suite_for("postgres")
        result = run_transplant(suite, "postgres", store=None).result
        for file_result, test_file in zip(result.files, suite.files):
            blob = encode_file_result(file_result, test_file)
            decoded = decode_file_result(blob, test_file, verify=True)
            assert canonical_bytes(decoded) == canonical_bytes(file_result)

    def test_section_digest_catches_mangled_sections(self):
        """verify=True must reject a section whose columns were altered after
        framing (the frame digest is recomputed here to sneak the edit past
        it, exactly the scenario the section digests exist to catch)."""
        import hashlib
        import json
        import zlib

        suite = _suite_for("slt")
        result = run_transplant(suite, "duckdb", store=None)
        blob = encode_transplant_result(result, suite)
        header_len = len(codec_module.MAGIC) + 1 + 8
        document = json.loads(zlib.decompress(blob[header_len:]))
        first = document["s"]["files"][0]
        first["oc"] = ("P" if first["oc"][0] != "P" else "F") + first["oc"][1:]
        payload = json.dumps(document, ensure_ascii=False, separators=(",", ":")).encode("utf-8")
        reframed = (
            codec_module.MAGIC
            + bytes([codec_module.CODEC_VERSION])
            + hashlib.sha256(payload).digest()[:8]
            + zlib.compress(payload)
        )
        # the frame digest alone cannot see the edit...
        decode_transplant_result(reframed, suite)
        # ...the section digest can
        with pytest.raises(CodecError, match="digest"):
            decode_transplant_result(reframed, suite, verify=True)
            # records are reattached, not copied: identity with the live suite
            for record_result in decoded.results:
                assert any(record_result.record is record for record in test_file.records)

    def test_roundtrip_against_an_equal_rebuilt_suite(self):
        """Decoding against a content-identical suite built by another process."""
        suite = _suite_for("slt")
        twin = _suite_for("slt")
        assert suite is not twin
        result = run_transplant(suite, "duckdb", store=None)
        decoded = decode_transplant_result(encode_transplant_result(result, suite), twin)
        assert canonical_bytes(decoded) == canonical_bytes(result)

    def test_codec_payload_at_least_5x_smaller_than_pickle(self):
        suite = build_suite("slt", file_count=3, records_per_file=40, seed=13, store=None)
        result = run_transplant(suite, "duckdb", store=None)
        blob = encode_transplant_result(result, suite)
        pickled = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        assert len(pickled) >= 5 * len(blob), (
            f"codec payload ({len(blob)}B) must be >=5x smaller than the pickle ({len(pickled)}B)"
        )


class TestTransplantBundles:
    """The assembled-cell format: header + independent per-file frames."""

    @pytest.fixture(scope="class")
    def workload(self):
        suite = _suite_for("slt")
        result = run_transplant(suite, "duckdb", store=None)
        return suite, result

    def test_bundle_roundtrip(self, workload):
        suite, result = workload
        bundle = codec_module.encode_transplant_bundle(result, suite)
        decoded = codec_module.decode_transplant_bundle(bundle, suite, verify=True)
        assert canonical_bytes(decoded) == canonical_bytes(result)
        assert canonical_bytes(decoded.crashes) == canonical_bytes(result.crashes)

    def test_bundle_from_preencoded_frames_reuses_bytes(self, workload):
        """Supplying file-results frames must splice them in verbatim —
        assembly is byte reuse, not re-encoding."""
        suite, result = workload
        frames = [
            encode_file_result(file_result, test_file)
            for file_result, test_file in zip(result.result.files, suite.files)
        ]
        bundle = codec_module.encode_transplant_bundle(result, suite, file_blobs=frames)
        assert all(stored is frame for stored, frame in zip(bundle["files"], frames))
        decoded = codec_module.decode_transplant_bundle(bundle, suite, verify=True)
        assert canonical_bytes(decoded) == canonical_bytes(result)

    def test_bundle_fills_in_missing_frames(self, workload):
        suite, result = workload
        frames = [None] * len(suite.files)
        frames[0] = encode_file_result(result.result.files[0], suite.files[0])
        bundle = codec_module.encode_transplant_bundle(result, suite, file_blobs=frames)
        decoded = codec_module.decode_transplant_bundle(bundle, suite, verify=True)
        assert canonical_bytes(decoded) == canonical_bytes(result)

    def test_bundle_rejects_wrong_shape_and_version(self, workload):
        suite, result = workload
        bundle = codec_module.encode_transplant_bundle(result, suite)
        with pytest.raises(CodecError):
            codec_module.decode_transplant_bundle({"k": "other"}, suite)
        with pytest.raises(CodecError):
            codec_module.decode_transplant_bundle({**bundle, "v": codec_module.CODEC_VERSION + 1}, suite)
        with pytest.raises(CodecError):
            codec_module.decode_transplant_bundle({**bundle, "files": bundle["files"][:-1]}, suite)
        smaller = build_suite("slt", file_count=1, records_per_file=20, seed=13, store=None)
        with pytest.raises(CodecError):
            codec_module.decode_transplant_bundle(bundle, smaller)

    def test_bundle_with_corrupt_frame_is_rejected(self, workload):
        suite, result = workload
        bundle = codec_module.encode_transplant_bundle(result, suite)
        garbled = dict(bundle)
        garbled["files"] = [bundle["files"][0][: len(bundle["files"][0]) // 2]] + bundle["files"][1:]
        with pytest.raises(CodecError):
            codec_module.decode_transplant_bundle(garbled, suite)


class TestRejection:
    @pytest.fixture(scope="class")
    def encoded(self):
        suite = _suite_for("slt")
        result = run_transplant(suite, "duckdb", store=None)
        return suite, result, encode_transplant_result(result, suite)

    def test_version_bump_is_rejected(self, encoded):
        suite, _result, blob = encoded
        bumped = blob[: len(codec_module.MAGIC)] + bytes([codec_module.CODEC_VERSION + 1]) + blob[len(codec_module.MAGIC) + 1 :]
        with pytest.raises(CodecError, match="version"):
            decode_transplant_result(bumped, suite)

    def test_bad_magic_is_rejected(self, encoded):
        suite, _result, blob = encoded
        with pytest.raises(CodecError, match="magic"):
            decode_transplant_result(b"XXX" + blob[3:], suite)

    def test_truncated_frame_is_rejected(self, encoded):
        suite, _result, blob = encoded
        with pytest.raises(CodecError):
            decode_transplant_result(blob[: len(blob) // 2], suite)

    @pytest.mark.parametrize("stub", [b"", b"RRC", b"RRC\x01", b"RRC\x01short"])
    def test_header_stubs_are_rejected_not_crashes(self, encoded, stub):
        suite, _result, _blob = encoded
        with pytest.raises(CodecError):
            decode_transplant_result(stub, suite)

    def test_flipped_payload_bytes_are_rejected(self, encoded):
        suite, _result, blob = encoded
        corrupt = bytearray(blob)
        corrupt[-10] ^= 0xFF
        with pytest.raises(CodecError):
            decode_transplant_result(bytes(corrupt), suite)

    def test_pre_codec_pickle_is_rejected(self, encoded):
        suite, result, _blob = encoded
        with pytest.raises(CodecError):
            decode_transplant_result(pickle.dumps(result), suite)

    def test_mismatched_suite_shape_is_rejected(self, encoded):
        suite, _result, blob = encoded
        smaller = build_suite("slt", file_count=1, records_per_file=20, seed=13, store=None)
        with pytest.raises(CodecError):
            decode_transplant_result(blob, smaller)

    def test_stale_store_blob_is_a_miss_not_garbage(self, store):
        """An undecodable store payload recomputes (and overwrites) the cell."""
        suite = _suite_for("slt")
        reference = run_transplant(suite, "duckdb", store=store)
        # replace the stored cell with a pre-codec pickle (a PR 3 leftover)
        [cell_path] = list((store.root / "matrix-cells").rglob("*.pkl"))
        payload = pickle.loads(cell_path.read_bytes())
        cell_path.write_bytes(pickle.dumps((payload[0], payload[1], pickle.dumps(reference))))
        recomputed = run_transplant(suite, "duckdb", store=store)
        assert canonical_bytes(recomputed) == canonical_bytes(reference)
        # and the overwrite leaves a decodable cell behind
        warm = run_transplant(suite, "duckdb", store=store)
        assert canonical_bytes(warm) == canonical_bytes(reference)


class TestWarmCellParity:
    def test_warm_matrix_matches_storeless_with_workers_1_and_4(self, store):
        suites = {"slt": build_suite("slt", file_count=4, records_per_file=25, seed=31, store=None)}
        with store_disabled():
            reference = run_matrix(suites, store=store)
        results = assert_equivalent(
            {
                "storeless": reference,
                "cold": lambda: run_matrix(suites, store=store),
                "warm-serial": lambda: run_matrix(suites, store=store),
                "warm-workers-4": lambda: run_matrix(suites, store=store, workers=4, executor="thread"),
            }
        )
        assert store.stats.hits >= len(results["storeless"].entries), (
            "warm campaigns must serve every cell from the store"
        )

    def test_store_aware_workers_persist_and_reuse_file_results(self, store):
        suite = build_suite("slt", file_count=4, records_per_file=20, seed=32, store=None)
        cold = run_transplant(suite, "duckdb", workers=4, executor="thread", store=store)
        file_entries = list((store.root / "file-results").rglob("*.pkl"))
        assert len(file_entries) == len(suite.files), "every shard file must persist its results"
        # drop the whole-cell entry: the warm sharded run must still avoid
        # execution by serving per-file results inside the workers
        for cell_path in (store.root / "matrix-cells").rglob("*.pkl"):
            cell_path.unlink()
        warm = run_transplant(suite, "duckdb", workers=4, executor="thread", store=store)
        assert canonical_bytes(warm) == canonical_bytes(cold)

    def test_workers_see_the_fingerprint_of_the_submitting_store(self, store):
        """Worker-side stores must address the same keys as the parent's."""
        from repro.core.parallel import store_spec_for, _worker_store

        spec = store_spec_for(store)
        assert spec.fingerprint == store.fingerprint
        worker_side = _worker_store(spec)
        assert worker_side.fingerprint == store.fingerprint
        assert str(worker_side.root) == str(store.root)
