"""MiniDB DDL/DML, transactions, settings, EXPLAIN, and constraint handling."""

import pytest

from repro.engine.session import Session
from repro.errors import (
    CatalogError,
    ConfigurationError,
    ConstraintViolationError,
    TransactionError,
    UnsupportedStatementError,
)


@pytest.fixture
def session():
    return Session("sqlite")


class TestDDL:
    def test_create_and_drop_table(self, session):
        session.execute("CREATE TABLE t(a INTEGER)")
        session.execute("DROP TABLE t")
        with pytest.raises(CatalogError):
            session.execute("SELECT * FROM t")

    def test_create_table_if_not_exists(self, session):
        session.execute("CREATE TABLE t(a INTEGER)")
        session.execute("CREATE TABLE IF NOT EXISTS t(a INTEGER)")
        with pytest.raises(CatalogError):
            session.execute("CREATE TABLE t(a INTEGER)")

    def test_drop_missing_table(self, session):
        session.execute("DROP TABLE IF EXISTS nope")
        with pytest.raises(CatalogError):
            session.execute("DROP TABLE nope")

    def test_create_table_as_select(self, session):
        session.execute("CREATE TABLE src(a INTEGER)")
        session.execute("INSERT INTO src VALUES (1), (2)")
        session.execute("CREATE TABLE dst AS SELECT a FROM src WHERE a > 1")
        assert session.execute("SELECT * FROM dst").rows == [[2]]

    def test_alter_table_add_rename_drop_column(self, session):
        session.execute("CREATE TABLE t(a INTEGER)")
        session.execute("INSERT INTO t VALUES (1)")
        session.execute("ALTER TABLE t ADD COLUMN b INTEGER")
        assert session.execute("SELECT a, b FROM t").rows == [[1, None]]
        session.execute("ALTER TABLE t RENAME COLUMN b TO c")
        assert session.execute("SELECT c FROM t").rows == [[None]]
        session.execute("ALTER TABLE t DROP COLUMN c")
        assert session.execute("SELECT * FROM t").columns == ["a"]

    def test_alter_table_rename_table(self, session):
        session.execute("CREATE TABLE old_name(a INTEGER)")
        session.execute("ALTER TABLE old_name RENAME TO new_name")
        session.execute("SELECT * FROM new_name")
        with pytest.raises(CatalogError):
            session.execute("SELECT * FROM old_name")

    def test_create_index_and_unique_index(self, session):
        session.execute("CREATE TABLE t(a INTEGER)")
        session.execute("INSERT INTO t VALUES (1), (2)")
        session.execute("CREATE INDEX idx_a ON t(a)")
        session.execute("DROP INDEX idx_a")
        session.execute("INSERT INTO t VALUES (2)")
        with pytest.raises(ConstraintViolationError):
            session.execute("CREATE UNIQUE INDEX uniq_a ON t(a)")

    def test_create_index_on_missing_column(self, session):
        session.execute("CREATE TABLE t(a INTEGER)")
        with pytest.raises(CatalogError):
            session.execute("CREATE INDEX idx ON t(zzz)")

    def test_views(self, session):
        session.execute("CREATE TABLE t(a INTEGER)")
        session.execute("INSERT INTO t VALUES (5)")
        session.execute("CREATE VIEW v AS SELECT a FROM t")
        assert session.execute("SELECT * FROM v").rows == [[5]]
        session.execute("DROP VIEW v")
        with pytest.raises(CatalogError):
            session.execute("SELECT * FROM v")


class TestIndexMaintenance:
    """``Index.entries`` under incremental maintenance (no rebuild per INSERT).

    INSERT appends one entry via :meth:`Index.note_insert`; DELETE compacts
    row positions, so it rebuilds; schema changes invalidate the cached
    column positions and fall back to a rebuild — which re-raises the same
    ``CatalogError`` the rebuild-per-mutation path raised when an indexed
    column disappeared.
    """

    def _index(self, session, table="t", name="idx"):
        return session.database.get_table(table).indexes[name]

    def test_insert_appends_entries_without_rebuild(self, session):
        session.execute("CREATE TABLE t(a INTEGER, b VARCHAR(10))")
        session.execute("CREATE INDEX idx ON t(a)")
        index = self._index(session)
        rebuilds = []
        original_rebuild = index.rebuild
        index.rebuild = lambda table: (rebuilds.append(1), original_rebuild(table))
        session.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        session.execute("INSERT INTO t VALUES (1, 'z')")
        assert not rebuilds, "INSERT must maintain the index incrementally"
        assert index.entries == {(1,): [0, 2], (2,): [1]}

    def test_incremental_entries_match_fresh_rebuild(self, session):
        from repro.engine.storage import Index

        session.execute("CREATE TABLE t(a INTEGER, b VARCHAR(10))")
        session.execute("CREATE INDEX idx ON t(a, b)")
        session.execute("INSERT INTO t VALUES (1, 'x'), (NULL, 'y'), (1, 'x')")
        session.execute("INSERT INTO t VALUES (2, NULL)")
        table = session.database.get_table("t")
        fresh = Index(name="fresh", table="t", columns=["a", "b"])
        fresh.rebuild(table)
        assert self._index(session).entries == fresh.entries

    def test_delete_compacts_row_positions(self, session):
        session.execute("CREATE TABLE t(a INTEGER)")
        session.execute("CREATE INDEX idx ON t(a)")
        session.execute("INSERT INTO t VALUES (1), (2), (3)")
        session.execute("DELETE FROM t WHERE a = 2")
        # row 3 shifted from position 2 to 1: the rebuild must remap it
        assert self._index(session).entries == {(1,): [0], (3,): [1]}
        session.execute("INSERT INTO t VALUES (2)")
        assert self._index(session).entries == {(1,): [0], (3,): [1], (2,): [2]}

    def test_schema_change_invalidates_cached_positions(self, session):
        session.execute("CREATE TABLE t(a INTEGER, b INTEGER)")
        session.execute("CREATE INDEX idx ON t(b)")
        session.execute("INSERT INTO t VALUES (1, 10)")
        session.execute("ALTER TABLE t ADD COLUMN c INTEGER")
        session.execute("INSERT INTO t VALUES (2, 20, 200)")
        assert self._index(session).entries == {(10,): [0], (20,): [1]}

    def test_rename_of_indexed_column_raises_on_next_insert(self, session):
        session.execute("CREATE TABLE t(a INTEGER, b INTEGER)")
        session.execute("CREATE INDEX idx ON t(b)")
        session.execute("INSERT INTO t VALUES (1, 10)")
        session.execute("ALTER TABLE t RENAME COLUMN b TO z")
        with pytest.raises(CatalogError):
            session.execute("INSERT INTO t VALUES (2, 20)")

    def test_nan_primary_key_replicates_linear_scan(self, session):
        # two distinct NaN literals compare unequal, so the constraint scan
        # never matches them: both inserts must succeed (set-membership via
        # hashing WOULD match, so NaNs stay out of the accelerated key sets)
        session.execute("CREATE TABLE t(r REAL PRIMARY KEY)")
        session.execute("INSERT INTO t VALUES (1e400 - 1e400)")
        session.execute("INSERT INTO t VALUES (1e400 - 1e400)")
        assert session.execute("SELECT count(*) FROM t").rows == [[2]]
        with pytest.raises(ConstraintViolationError):
            session.execute("INSERT INTO t VALUES (2.5), (2.5)")

    def test_unique_column_accelerated_set_still_raises(self, session):
        session.execute("CREATE TABLE t(a INTEGER, u VARCHAR(10) UNIQUE)")
        session.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, NULL), (4, NULL)")
        with pytest.raises(ConstraintViolationError):
            session.execute("INSERT INTO t VALUES (5, 'x')")
        assert session.execute("SELECT count(*) FROM t").rows == [[4]]


class TestDML:
    def test_insert_with_column_list_reorders(self, session):
        session.execute("CREATE TABLE t(a INTEGER, b INTEGER, c INTEGER)")
        session.execute("INSERT INTO t(c, b, a) VALUES (3, 2, 1)")
        assert session.execute("SELECT a, b, c FROM t").rows == [[1, 2, 3]]

    def test_insert_select(self, session):
        session.execute("CREATE TABLE src(a INTEGER)")
        session.execute("CREATE TABLE dst(a INTEGER)")
        session.execute("INSERT INTO src VALUES (1), (2)")
        result = session.execute("INSERT INTO dst SELECT a FROM src")
        assert result.rowcount == 2

    def test_insert_unknown_column(self, session):
        session.execute("CREATE TABLE t(a INTEGER)")
        with pytest.raises(CatalogError):
            session.execute("INSERT INTO t(zzz) VALUES (1)")

    def test_not_null_and_primary_key_constraints(self):
        s = Session("postgres")
        s.execute("CREATE TABLE t(id INTEGER PRIMARY KEY, v INTEGER NOT NULL)")
        s.execute("INSERT INTO t VALUES (1, 10)")
        with pytest.raises(ConstraintViolationError):
            s.execute("INSERT INTO t VALUES (1, 20)")
        with pytest.raises(ConstraintViolationError):
            s.execute("INSERT INTO t VALUES (2, NULL)")

    def test_update_with_where(self, session):
        session.execute("CREATE TABLE t(a INTEGER, b INTEGER)")
        session.execute("INSERT INTO t VALUES (1, 0), (2, 0)")
        result = session.execute("UPDATE t SET b = a * 10 WHERE a = 2")
        assert result.rowcount == 1
        assert session.execute("SELECT b FROM t ORDER BY a").rows == [[0], [20]]

    def test_delete(self, session):
        session.execute("CREATE TABLE t(a INTEGER)")
        session.execute("INSERT INTO t VALUES (1), (2), (3)")
        assert session.execute("DELETE FROM t WHERE a < 3").rowcount == 2
        assert session.execute("SELECT count(*) FROM t").rows == [[1]]

    def test_default_values(self, session):
        session.execute("CREATE TABLE t(a INTEGER, b INTEGER DEFAULT 7)")
        session.execute("INSERT INTO t(a) VALUES (1)")
        assert session.execute("SELECT b FROM t").rows == [[7]]


class TestTransactions:
    def test_rollback_restores_data(self, session):
        session.execute("CREATE TABLE t(a INTEGER)")
        session.execute("INSERT INTO t VALUES (1)")
        session.execute("BEGIN")
        session.execute("DELETE FROM t")
        session.execute("ROLLBACK")
        assert session.execute("SELECT count(*) FROM t").rows == [[1]]

    def test_commit_keeps_data(self, session):
        session.execute("CREATE TABLE t(a INTEGER)")
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (1)")
        session.execute("COMMIT")
        assert session.execute("SELECT count(*) FROM t").rows == [[1]]

    def test_rollback_restores_dropped_table(self, session):
        session.execute("CREATE TABLE t(a INTEGER)")
        session.execute("BEGIN")
        session.execute("DROP TABLE t")
        session.execute("ROLLBACK")
        session.execute("SELECT * FROM t")

    def test_nested_begin_rejected_on_sqlite(self, session):
        session.execute("BEGIN")
        with pytest.raises(TransactionError):
            session.execute("BEGIN")

    def test_commit_without_transaction_rejected_on_sqlite(self, session):
        with pytest.raises(TransactionError):
            session.execute("COMMIT")

    def test_commit_without_transaction_tolerated_on_postgres(self):
        s = Session("postgres")
        assert s.execute("COMMIT").status == "COMMIT"

    def test_start_transaction_unsupported_on_sqlite(self, session):
        # the paper notes SQLite lacks the standard START TRANSACTION syntax
        with pytest.raises(UnsupportedStatementError):
            session.execute("START TRANSACTION")

    def test_start_transaction_on_postgres(self):
        s = Session("postgres")
        s.execute("START TRANSACTION")
        assert s.execute("COMMIT").status == "COMMIT"

    def test_savepoint_rollback(self, session):
        session.execute("CREATE TABLE t(a INTEGER)")
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (1)")
        session.execute("SAVEPOINT sp1")
        session.execute("INSERT INTO t VALUES (2)")
        session.execute("ROLLBACK TO SAVEPOINT sp1")
        session.execute("COMMIT")
        assert session.execute("SELECT count(*) FROM t").rows == [[1]]


class TestSettingsAndExplain:
    def test_pragma_on_sqlite_ignores_unknown(self, session):
        assert session.execute("PRAGMA totally_unknown_setting = 1").status == "PRAGMA"

    def test_pragma_unknown_rejected_on_duckdb(self):
        s = Session("duckdb")
        with pytest.raises(ConfigurationError):
            s.execute("PRAGMA totally_unknown_setting = 1")
        assert s.execute("PRAGMA explain_output = OPTIMIZED_ONLY").status == "PRAGMA"

    def test_set_rejected_on_sqlite(self, session):
        with pytest.raises(UnsupportedStatementError):
            session.execute("SET foreign_keys = 1")

    def test_set_unknown_rejected_on_postgres(self):
        s = Session("postgres")
        with pytest.raises(ConfigurationError):
            s.execute("SET default_null_order = 'nulls_first'")
        assert s.execute("SET datestyle TO 'ISO, MDY'").status == "SET"

    def test_show_on_mysql(self):
        s = Session("mysql")
        s.execute("SET sql_mode = 'ANSI_QUOTES'")
        assert s.execute("SHOW sql_mode").rows == [["ANSI_QUOTES"]]

    def test_show_unsupported_on_sqlite(self, session):
        with pytest.raises(UnsupportedStatementError):
            session.execute("SHOW tables")

    def test_explain_styles_differ_between_dialects(self):
        plans = {}
        for dialect in ("postgres", "duckdb", "mysql", "sqlite"):
            s = Session(dialect)
            s.execute("CREATE TABLE t(a INTEGER)")
            plans[dialect] = s.execute("EXPLAIN SELECT * FROM t").rows
        assert plans["postgres"] != plans["duckdb"]
        assert plans["mysql"] != plans["postgres"]

    def test_duckdb_explain_output_pragma_changes_plan(self):
        s = Session("duckdb")
        s.execute("CREATE TABLE integers(i INTEGER, j INTEGER, k INTEGER)")
        default_plan = s.execute("EXPLAIN SELECT k FROM integers WHERE j = 5").rows
        s.execute("PRAGMA explain_output = OPTIMIZED_ONLY")
        optimized_plan = s.execute("EXPLAIN SELECT k FROM integers WHERE j = 5").rows
        assert default_plan != optimized_plan

    def test_copy_unsupported_or_fails(self):
        postgres = Session("postgres")
        postgres.execute("CREATE TABLE t(a INTEGER)")
        with pytest.raises(Exception):
            postgres.execute("COPY t FROM '/nonexistent/file.csv'")
        sqlite = Session("sqlite")
        sqlite.execute("CREATE TABLE t(a INTEGER)")
        with pytest.raises(UnsupportedStatementError):
            sqlite.execute("COPY t FROM '/nonexistent/file.csv'")

    def test_reset_clears_everything(self, session):
        session.execute("CREATE TABLE t(a INTEGER)")
        session.reset()
        with pytest.raises(CatalogError):
            session.execute("SELECT * FROM t")
