"""Adapter layer tests: sqlite3, MiniDB adapters, registry, fault reports."""

import pytest

from repro.adapters import (
    ExecutionStatus,
    MiniDBAdapter,
    SQLite3Adapter,
    available_adapters,
    create_adapter,
    known_fault_signatures,
)
from repro.adapters.faults import FaultReport, FaultSummary, collect_fault_reports
from repro.errors import AdapterNotFoundError


class TestRegistry:
    def test_available_adapters_contains_all_hosts(self):
        names = available_adapters()
        for name in ("sqlite", "postgres", "duckdb", "mysql", "sqlite-mini"):
            assert name in names

    def test_create_adapter_unknown_raises(self):
        with pytest.raises(AdapterNotFoundError):
            create_adapter("oracle")

    def test_create_adapter_returns_correct_dialect(self):
        adapter = create_adapter("duckdb")
        assert adapter.dialect.name == "duckdb"
        adapter = create_adapter("sqlite")
        assert isinstance(adapter, SQLite3Adapter)


class TestSQLite3Adapter:
    def test_query_and_statement(self, sqlite3_adapter):
        assert sqlite3_adapter.execute("CREATE TABLE t(a INTEGER)").ok
        assert sqlite3_adapter.execute("INSERT INTO t VALUES (1), (2)").ok
        outcome = sqlite3_adapter.execute("SELECT a FROM t ORDER BY a")
        assert outcome.is_query_result
        assert outcome.rows == [[1], [2]]
        assert outcome.rendered == [["1"], ["2"]]

    def test_error_is_reported_not_raised(self, sqlite3_adapter):
        outcome = sqlite3_adapter.execute("SELECT * FROM missing")
        assert outcome.status is ExecutionStatus.ERROR
        assert "no such table" in outcome.error

    def test_reset_clears_state(self, sqlite3_adapter):
        sqlite3_adapter.execute("CREATE TABLE t(a INTEGER)")
        sqlite3_adapter.reset()
        assert sqlite3_adapter.execute("SELECT * FROM t").status is ExecutionStatus.ERROR

    def test_integer_division_matches_paper(self, sqlite3_adapter):
        assert sqlite3_adapter.execute("SELECT 62 / -2").rows == [[-31]]

    def test_context_manager(self):
        with SQLite3Adapter() as adapter:
            assert adapter.execute("SELECT 1").rows == [[1]]


class TestMiniDBAdapter:
    def test_execute_and_render(self, duckdb_adapter):
        duckdb_adapter.execute("CREATE TABLE t(a INTEGER)")
        duckdb_adapter.execute("INSERT INTO t VALUES (1)")
        outcome = duckdb_adapter.execute("SELECT a, a / 2 FROM t")
        assert outcome.rows == [[1, 0.5]]

    def test_error_outcome(self, duckdb_adapter):
        outcome = duckdb_adapter.execute("SELECT nonexistent_function_xyz(1)")
        assert outcome.status is ExecutionStatus.ERROR
        assert outcome.error_type == "UnsupportedFunctionError"

    def test_crash_outcome_and_reset(self):
        adapter = MiniDBAdapter("duckdb")
        adapter.connect()
        outcome = adapter.execute("ALTER SCHEMA a RENAME TO b")
        assert outcome.status is ExecutionStatus.CRASH
        adapter.reset()
        assert adapter.execute("SELECT 1").ok

    def test_hang_outcome(self):
        adapter = MiniDBAdapter("mysql")
        adapter.connect()
        adapter.execute("CREATE TABLE tj(a INTEGER)")
        adapter.execute("INSERT INTO tj VALUES (1)")
        aliases = ", ".join(f"tj AS a{i}" for i in range(1, 43))
        outcome = adapter.execute(f"SELECT count(*) FROM {aliases}")
        assert outcome.status is ExecutionStatus.HANG

    def test_syntax_error_outcome(self, duckdb_adapter):
        outcome = duckdb_adapter.execute("SELEC 1")
        assert outcome.status is ExecutionStatus.ERROR

    def test_execute_many_stops_on_crash(self):
        adapter = MiniDBAdapter("duckdb")
        adapter.connect()
        outcomes = adapter.execute_many(["SELECT 1", "ALTER SCHEMA a RENAME TO b", "SELECT 2"])
        assert len(outcomes) == 2
        assert outcomes[-1].status is ExecutionStatus.CRASH

    def test_features_exercised_accumulate(self, duckdb_adapter):
        duckdb_adapter.execute("SELECT 1 + 1")
        assert "operator.+" in duckdb_adapter.features_exercised


class TestFaultReporting:
    def test_known_fault_signatures_cover_paper_listings(self):
        signatures = known_fault_signatures()
        assert len(signatures["duckdb"]) == 3
        assert len(signatures["mysql"]) == 2
        assert len(signatures["sqlite"]) == 1
        kinds = [signature.kind for signature in signatures["duckdb"]]
        assert kinds.count("crash") == 2 and kinds.count("hang") == 1

    def test_collect_fault_reports(self):
        adapter = MiniDBAdapter("duckdb")
        adapter.connect()
        outcomes = adapter.execute_many(["SELECT 1", "ALTER SCHEMA a RENAME TO b"])
        reports = collect_fault_reports("duckdb", outcomes)
        assert len(reports) == 1
        assert reports[0].kind == "crash"

    def test_fault_summary_deduplicates(self):
        summary = FaultSummary()
        summary.add(FaultReport(dbms="duckdb", kind="crash", statement="s1", message="same"))
        summary.add(FaultReport(dbms="duckdb", kind="crash", statement="s2", message="same"))
        summary.add(FaultReport(dbms="mysql", kind="hang", statement="s3", message="other"))
        assert summary.unique_crashes() == 1
        assert summary.unique_hangs() == 1


class TestRegistryReRegistration:
    def test_re_registering_a_name_retargets_its_aliases(self):
        from repro.adapters.registry import _ENTRIES, _NAMES, get_adapter_entry, register_adapter
        from repro.adapters.minidb_adapter import MiniDBAdapter

        register_adapter("temp-db", lambda **kwargs: MiniDBAdapter("sqlite", **kwargs), aliases=("tempdb",))
        try:
            first = get_adapter_entry("tempdb")
            register_adapter("temp-db", lambda **kwargs: MiniDBAdapter("duckdb", **kwargs), aliases=("tempdb",))
            # the alias must follow the replacement, not the stale entry
            assert get_adapter_entry("tempdb") is not first
            assert create_adapter("tempdb").dialect.name == "duckdb"
            assert create_adapter("temp-db").dialect.name == "duckdb"
        finally:
            _ENTRIES.pop("temp-db", None)
            _NAMES.pop("temp-db", None)
            _NAMES.pop("tempdb", None)
