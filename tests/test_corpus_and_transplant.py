"""Corpus generation, transplanting, coverage, and reporting — integration level."""

import pytest

from repro.core.classification import DependencyCategory, category_histogram, classify_failures
from repro.core.coverage import CoverageReport, combine_reports, feature_universe, measure_coverage
from repro.core.records import ControlRecord, QueryRecord
from repro.core.report import format_heatmap, format_percentage, format_table
from repro.core.runner import RecordOutcome
from repro.core.transplant import DONOR_OF_SUITE, run_matrix, run_transplant
from repro.corpus import PAPER_PROFILES, build_suite, generate_corpus
from repro.corpus.datagen import SchemaState, make_table, render_create_table, render_insert, render_predicate
from repro.sqlparser.analyzer import predicate_bucket, where_token_count


class TestDatagen:
    def test_make_table_and_create(self):
        state = SchemaState()
        table = make_table(state, __import__("random").Random(0))
        sql = render_create_table(table)
        assert sql.startswith("CREATE TABLE t1(")
        assert len(table.columns) >= 2

    def test_insert_tracks_row_count(self):
        import random

        state = SchemaState()
        table = make_table(state, random.Random(0))
        render_insert(table, random.Random(0), row_count=4)
        assert table.row_count == 4

    @pytest.mark.parametrize("bucket", ["1-2", "3-10", "11-100", "100+"])
    def test_predicates_land_in_their_bucket(self, bucket):
        import random

        state = SchemaState()
        table = make_table(state, random.Random(3))
        predicate = render_predicate(table, random.Random(3), bucket)
        tokens = where_token_count(f"SELECT * FROM {table.name} WHERE {predicate}")
        assert predicate_bucket(tokens) == bucket


class TestCorpusGeneration:
    def test_generation_is_deterministic(self):
        first = generate_corpus("slt", file_count=2, records_per_file=20, seed=3)
        second = generate_corpus("slt", file_count=2, records_per_file=20, seed=3)
        assert [item.primary_text for item in first] == [item.primary_text for item in second]

    def test_different_seeds_differ(self):
        first = generate_corpus("slt", file_count=1, records_per_file=20, seed=1)[0].primary_text
        second = generate_corpus("slt", file_count=1, records_per_file=20, seed=2)[0].primary_text
        assert first != second

    def test_postgres_corpus_has_out_files(self):
        generated = generate_corpus("postgres", file_count=1, records_per_file=15, seed=0)
        assert generated[0].expected_text is not None
        assert "ERROR" in generated[0].expected_text or "rows)" in generated[0].expected_text

    def test_profiles_exist_for_all_suites(self):
        assert set(PAPER_PROFILES) == {"slt", "postgres", "duckdb", "mysql"}
        for profile in PAPER_PROFILES.values():
            assert abs(sum(profile.statement_mix.values()) - 1.0) < 0.25

    def test_slt_suite_mostly_standard(self, small_slt_suite):
        from repro.analysis.statements import standard_compliance

        summary = standard_compliance(small_slt_suite)
        assert summary.standard_share > 0.9

    def test_duckdb_suite_contains_require(self, small_duckdb_suite):
        commands = [record.command for test_file in small_duckdb_suite.files for record in test_file.control_records()]
        assert "require" in commands


class TestDonorRuns:
    def test_slt_on_donor_has_no_failures(self, small_slt_suite):
        result = run_transplant(small_slt_suite, "sqlite")
        assert result.result.failed_cases == 0
        assert result.result.crash_cases == 0
        assert result.result.skipped_cases > 0  # skipif/onlyif pre-filtering

    def test_postgres_on_donor_failures_are_dependencies(self, small_postgres_suite):
        result = run_transplant(small_postgres_suite, "postgres")
        failures = result.result.all_failures()
        assert failures, "the PostgreSQL corpus injects dependency failures"
        histogram = category_histogram(classify_failures(failures, scheme="dependency"))
        assert set(histogram) <= set(DependencyCategory)
        environment = (
            histogram.get(DependencyCategory.SETUP, 0)
            + histogram.get(DependencyCategory.FILE_PATHS, 0)
            + histogram.get(DependencyCategory.SETTING, 0)
        )
        assert environment >= histogram.get(DependencyCategory.CLIENT_FORMAT, 0)

    def test_duckdb_prefiltering(self, small_duckdb_suite):
        result = run_transplant(small_duckdb_suite, "duckdb")
        assert result.result.skipped_cases > 0


class TestCrossExecution:
    @pytest.fixture(scope="class")
    def matrix(self, small_slt_suite, small_postgres_suite, small_duckdb_suite):
        suites = {"slt": small_slt_suite, "postgres": small_postgres_suite, "duckdb": small_duckdb_suite}
        return run_matrix(suites)

    def test_slt_is_most_compatible(self, matrix):
        # Compare against the other suites only on hosts that are foreign to
        # them too (a donor trivially scores highest on its own suite).
        for host in ("sqlite", "postgres", "duckdb", "mysql"):
            slt_rate = matrix.success_rate("slt", host)
            if host != "postgres":
                assert slt_rate >= matrix.success_rate("postgres", host)
            if host != "duckdb":
                assert slt_rate >= matrix.success_rate("duckdb", host)

    def test_donor_runs_have_highest_rate_for_their_suite(self, matrix):
        for suite in ("slt", "postgres", "duckdb"):
            donor = DONOR_OF_SUITE[suite]
            donor_rate = matrix.success_rate(suite, donor)
            for host in ("sqlite", "postgres", "duckdb", "mysql"):
                assert donor_rate >= matrix.success_rate(suite, host) - 1e-9

    def test_crashes_are_found_on_duckdb_and_mysql_only(self, matrix):
        summary = matrix.fault_summary()
        crash_hosts = {report.dbms for report in summary.crashes}
        assert crash_hosts <= {"duckdb", "mysql"}
        assert summary.unique_crashes() >= 2

    def test_matrix_accessors(self, matrix):
        assert set(matrix.suites()) == {"slt", "postgres", "duckdb"}
        assert set(matrix.hosts()) == {"sqlite", "postgres", "duckdb", "mysql"}
        entry = matrix.get("slt", "duckdb")
        assert entry.donor == "sqlite"
        assert not entry.is_donor_run


class TestCoverageModel:
    def test_universe_is_dialect_specific(self):
        assert "function.pg_typeof" in feature_universe("postgres")
        assert "function.pg_typeof" not in feature_universe("mysql")
        assert "statement.pragma" in feature_universe("sqlite")
        assert "statement.pragma" not in feature_universe("postgres")

    def test_measure_and_combine(self):
        basic = measure_coverage("sqlite", [["CREATE TABLE t(a INTEGER)", "INSERT INTO t VALUES (1)", "SELECT a FROM t"]])
        assert 0 < basic.branch_coverage < 1
        extra = measure_coverage("sqlite", [["SELECT abs(-1), upper('x')"]])
        union = combine_reports("sqlite", [basic, extra])
        assert union.branch_coverage >= basic.branch_coverage
        assert union.line_coverage >= basic.line_coverage

    def test_line_coverage_at_least_branch(self):
        report = measure_coverage("duckdb", [["SELECT 1 + 1", "SELECT range(3)"]])
        assert report.line_coverage >= report.branch_coverage

    def test_empty_report(self):
        report = CoverageReport(dialect="sqlite")
        assert report.branch_coverage == 0.0


class TestReportFormatting:
    def test_format_table_alignment(self):
        text = format_table(["Name", "Value"], [["a", 1], ["long-name", 2.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "long-name" in lines[3]

    def test_format_percentage(self):
        assert format_percentage(0.5145) == "51.45%"

    def test_format_heatmap(self):
        text = format_heatmap(["slt"], ["sqlite", "mysql"], {("slt", "sqlite"): 1.0, ("slt", "mysql"): 0.9999})
        assert "100.00%" in text and "99.99%" in text
