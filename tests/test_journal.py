"""Write-ahead journal invariants: durability, torn tails, campaign identity.

The journal's crash-safety contract has three legs, each pinned here:

* **Torn tails are incomplete, never corrupt** — a crash mid-append leaves a
  partially-written final line, and replay must read it as "this event never
  happened" at *every* possible truncation offset, because SIGKILL does not
  choose a polite byte to die on.
* **Replay is a pure fold** — replaying the same file twice gives the same
  state, and re-opening a torn journal truncates the tail so appends resume
  on a clean line boundary.
* **Identity is enforced** — a journal belongs to one campaign (matrix spec
  + store fingerprint); opening it for any other campaign refuses instead of
  silently mixing progress.
"""

from __future__ import annotations

import json

import pytest

from repro.core.journal import (
    JOURNAL_DIRNAME,
    CampaignJournal,
    campaign_id,
    campaign_spec,
    journal_path,
    replay_journal,
)
from repro.corpus import build_suite
from repro.errors import JournalError, JournalMismatchError

FINGERPRINT = "test-fingerprint"


@pytest.fixture(scope="module")
def tiny_suites():
    return {"slt": build_suite("slt", file_count=2, records_per_file=3, seed=5, store=None)}


@pytest.fixture
def spec(tiny_suites):
    return campaign_spec(tiny_suites, ("sqlite",))


def _journal_with_history(path, spec):
    with CampaignJournal.open(path, spec, FINGERPRINT) as journal:
        journal.cell_started("slt", "sqlite")
        journal.cell_finished(
            "slt",
            "sqlite",
            complete=True,
            artifact="a" * 64,
            files=[{"path": "slt/f0.test", "artifact": "b" * 64}],
        )
        journal.cell_started("slt", "postgres")
    return path


class TestReplay:
    def test_folds_history_into_state(self, tmp_path, spec):
        path = _journal_with_history(tmp_path / "j.jsonl", spec)
        replay = replay_journal(path)
        assert replay.campaign == campaign_id(spec, FINGERPRINT)
        assert replay.completed == {("slt", "sqlite")}
        assert replay.started == {("slt", "sqlite"), ("slt", "postgres")}
        assert replay.incomplete_cells() == [("slt", "postgres")]
        assert replay.files[("slt", "sqlite")] == ["b" * 64]
        assert not replay.torn_tail

    def test_replay_is_idempotent(self, tmp_path, spec):
        path = _journal_with_history(tmp_path / "j.jsonl", spec)
        first, second = replay_journal(path), replay_journal(path)
        assert first.completed == second.completed
        assert first.started == second.started
        assert first.files == second.files
        assert first.events == second.events
        assert first.valid_bytes == second.valid_bytes

    def test_missing_file_is_empty_state(self, tmp_path):
        replay = replay_journal(tmp_path / "absent.jsonl")
        assert replay.campaign is None
        assert replay.events == 0
        assert not replay.torn_tail

    def test_reentry_supersedes_completion(self, tmp_path, spec):
        path = tmp_path / "j.jsonl"
        with CampaignJournal.open(path, spec, FINGERPRINT) as journal:
            journal.cell_started("slt", "sqlite")
            journal.cell_finished("slt", "sqlite", complete=True)
            journal.cell_started("slt", "sqlite")  # resumed process re-enters
        assert replay_journal(path).incomplete_cells() == [("slt", "sqlite")]

    def test_incomplete_finish_is_not_completion(self, tmp_path, spec):
        path = tmp_path / "j.jsonl"
        with CampaignJournal.open(path, spec, FINGERPRINT) as journal:
            journal.cell_started("slt", "sqlite")
            journal.cell_finished("slt", "sqlite", complete=False)
        replay = replay_journal(path)
        assert replay.completed == set()
        assert replay.incomplete_cells() == [("slt", "sqlite")]

    def test_unknown_event_kinds_are_tolerated(self, tmp_path, spec):
        path = _journal_with_history(tmp_path / "j.jsonl", spec)
        with open(path, "ab") as handle:
            handle.write(json.dumps({"event": "from-the-future", "x": 1}).encode() + b"\n")
        replay = replay_journal(path)
        assert replay.completed == {("slt", "sqlite")}


class TestTornTails:
    def test_truncation_at_every_byte_offset_is_incomplete_not_corrupt(self, tmp_path, spec):
        """SIGKILL does not choose a polite byte: any prefix must replay."""
        source = _journal_with_history(tmp_path / "full.jsonl", spec)
        raw = source.read_bytes()
        reference = replay_journal(source)
        target = tmp_path / "torn.jsonl"
        for cut in range(len(raw) + 1):
            target.write_bytes(raw[:cut])
            replay = replay_journal(target)  # must never raise
            assert replay.valid_bytes <= cut
            assert replay.torn_tail == (replay.valid_bytes < cut)
            assert replay.events <= reference.events
            # state from a prefix is a prefix of the full state
            assert replay.started <= reference.started

    def test_reopen_truncates_torn_tail_and_resumes_cleanly(self, tmp_path, spec):
        source = _journal_with_history(tmp_path / "j.jsonl", spec)
        raw = source.read_bytes()
        source.write_bytes(raw + b'{"event": "cell-fin')  # crash mid-append
        assert replay_journal(source).torn_tail
        with CampaignJournal.open(source, spec, FINGERPRINT) as journal:
            journal.cell_finished("slt", "postgres", complete=True)
        replay = replay_journal(source)
        assert not replay.torn_tail
        assert replay.completed == {("slt", "sqlite"), ("slt", "postgres")}

    def test_interior_garbage_raises(self, tmp_path, spec):
        source = _journal_with_history(tmp_path / "j.jsonl", spec)
        lines = source.read_bytes().splitlines(keepends=True)
        lines[1] = b"}}}garbage{{{\n"  # NOT the final line: real corruption
        source.write_bytes(b"".join(lines))
        with pytest.raises(JournalError):
            replay_journal(source)

    def test_non_event_json_line_raises(self, tmp_path, spec):
        source = _journal_with_history(tmp_path / "j.jsonl", spec)
        with open(source, "ab") as handle:
            handle.write(b"[1, 2, 3]\n{}\n")
        with pytest.raises(JournalError):
            replay_journal(source)


class TestCampaignIdentity:
    def test_fingerprint_mismatch_is_rejected(self, tmp_path, spec):
        path = _journal_with_history(tmp_path / "j.jsonl", spec)
        with pytest.raises(JournalMismatchError):
            CampaignJournal.open(path, spec, "other-code-version")

    def test_spec_mismatch_is_rejected(self, tmp_path, spec, tiny_suites):
        path = _journal_with_history(tmp_path / "j.jsonl", spec)
        other = campaign_spec(tiny_suites, ("sqlite", "postgres"))
        with pytest.raises(JournalMismatchError):
            CampaignJournal.open(path, other, FINGERPRINT)

    def test_same_campaign_reopens(self, tmp_path, spec):
        path = _journal_with_history(tmp_path / "j.jsonl", spec)
        with CampaignJournal.open(path, spec, FINGERPRINT) as journal:
            assert journal.is_cell_complete("slt", "sqlite")
            assert not journal.is_cell_complete("slt", "postgres")

    def test_workers_do_not_change_identity(self, spec):
        # sharding cannot change results, so it must not change identity:
        # campaign_spec has no workers/executor parameters at all
        assert "workers" not in spec
        assert "executor" not in spec
        assert campaign_id(spec, FINGERPRINT) == campaign_id(json.loads(json.dumps(spec)), FINGERPRINT)

    def test_open_in_places_journal_by_campaign_id(self, tmp_path, spec):
        directory = tmp_path / JOURNAL_DIRNAME
        with CampaignJournal.open_in(directory, spec, FINGERPRINT) as journal:
            assert journal.path == journal_path(directory, campaign_id(spec, FINGERPRINT))
            assert journal.path.exists()


class TestDurability:
    def test_append_after_close_raises(self, tmp_path, spec):
        journal = CampaignJournal.open(tmp_path / "j.jsonl", spec, FINGERPRINT)
        journal.close()
        with pytest.raises(JournalError):
            journal.cell_started("slt", "sqlite")

    def test_cell_finished_batches_files_with_finish(self, tmp_path, spec):
        path = tmp_path / "j.jsonl"
        with CampaignJournal.open(path, spec, FINGERPRINT) as journal:
            journal.cell_finished(
                "slt", "sqlite", complete=True,
                files=[{"path": "a.test", "artifact": "x" * 64}, {"path": "b.test", "artifact": "y" * 64}],
            )
        events = [json.loads(line)["event"] for line in path.read_text().splitlines()]
        assert events == ["campaign", "file-finish", "file-finish", "cell-finish"]
