"""Unit tests for the SQL tokenizer."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sqlparser.tokenizer import Token, TokenType, strip_comments, tokenize


def kinds(sql):
    return [token.type for token in tokenize(sql)]


def values(sql):
    return [token.value for token in tokenize(sql)]


class TestBasicTokens:
    def test_keywords_are_recognised(self):
        tokens = tokenize("SELECT a FROM t1")
        assert tokens[0].type is TokenType.KEYWORD
        assert tokens[0].normalized == "SELECT"
        assert tokens[2].is_keyword("FROM")

    def test_identifiers_are_lowercased_in_normalized_form(self):
        token = tokenize("MyTable")[0]
        assert token.type is TokenType.IDENTIFIER
        assert token.normalized == "mytable"
        assert token.value == "MyTable"

    def test_numbers_integer_float_exponent_hex(self):
        tokens = tokenize("1 2.5 1e3 1.5E-2 0x1F")
        assert all(token.type is TokenType.NUMBER for token in tokens)
        assert [token.value for token in tokens] == ["1", "2.5", "1e3", "1.5E-2", "0x1F"]

    def test_string_literal_with_escaped_quote(self):
        token = tokenize("'it''s'")[0]
        assert token.type is TokenType.STRING
        assert token.normalized == "it's"

    def test_double_quoted_identifier(self):
        token = tokenize('"Weird Name"')[0]
        assert token.type is TokenType.QUOTED_IDENTIFIER
        assert token.normalized == "Weird Name"

    def test_backtick_identifier_mysql(self):
        token = tokenize("`col`")[0]
        assert token.type is TokenType.QUOTED_IDENTIFIER
        assert token.normalized == "col"

    def test_dollar_quoted_string_postgres(self):
        tokens = tokenize("$$hello world$$")
        assert tokens[0].type is TokenType.STRING
        assert "hello world" in tokens[0].value

    def test_unterminated_string_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT 'oops")

    def test_unexpected_character_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT \x01")


class TestOperators:
    def test_double_colon_cast_operator(self):
        assert "::" in values("1::INTEGER")

    def test_concat_operator(self):
        assert "||" in values("'a' || 'b'")

    def test_comparison_operators(self):
        for operator in ("<=", ">=", "<>", "!="):
            assert operator in values(f"a {operator} b")

    def test_parameters(self):
        tokens = tokenize("SELECT ?, $1, :name, @var")
        parameter_values = [token.value for token in tokens if token.type is TokenType.PARAMETER]
        assert parameter_values == ["?", "$1", ":name", "@var"]

    def test_double_colon_wins_over_named_parameter(self):
        tokens = tokenize("x::int")
        assert any(token.value == "::" for token in tokens)


class TestComments:
    def test_line_comment_skipped(self):
        assert values("SELECT 1 -- trailing") == ["SELECT", "1"]

    def test_hash_comment_skipped(self):
        assert values("SELECT 1 # mysql comment") == ["SELECT", "1"]

    def test_block_comment_skipped(self):
        assert values("SELECT /* inline */ 1") == ["SELECT", "1"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT /* oops")

    def test_comments_can_be_included(self):
        tokens = tokenize("SELECT 1 -- note", include_comments=True)
        assert any(token.type is TokenType.COMMENT for token in tokens)

    def test_strip_comments_preserves_sql(self):
        assert strip_comments("SELECT 1 -- note").strip() == "SELECT 1"
        assert strip_comments("SELECT /* x */ 2").replace("  ", " ").strip() == "SELECT 2"


class TestPositions:
    def test_positions_are_byte_offsets(self):
        sql = "SELECT abc"
        tokens = tokenize(sql)
        assert sql[tokens[1].position :].startswith("abc")

    def test_whitespace_tokens_optional(self):
        with_spaces = tokenize("SELECT 1", include_whitespace=True)
        assert any(token.type is TokenType.WHITESPACE for token in with_spaces)

    def test_token_repr_is_helpful(self):
        assert "SELECT" in repr(tokenize("SELECT")[0])
