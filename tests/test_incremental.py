"""Incremental campaign assembly: per-file reuse, fallbacks, and corpus sharding.

What must hold (and is pinned here):

* a suite-level store miss assembles the result from per-file ``file-results``
  artifacts and executes *only* the files with no usable artifact,
* a corrupted / truncated / version-bumped per-file blob falls back to
  executing that one file — never aborting the suite, never serving garbage —
  and the bad blob is discarded,
* ``incremental=False`` restores the execute-whole-suites path,
* corpus generation is incremental too: per-file donor recordings persist in
  ``file-donor`` and sharded generation is byte-identical to serial.

Byte-level equivalence across whole campaign variants lives in
test_differential.py; these tests pin the mechanics and the counters.
"""

from __future__ import annotations

import pickle

import pytest

from test_differential import _wipe, assert_equivalent

from repro.core.records import TestSuite
from repro.core.transplant import run_transplant
from repro.corpus import build_suite
from repro.corpus.generate import generate_corpus
from repro.store import ArtifactStore, canonical_bytes, store_disabled


@pytest.fixture
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(root=tmp_path / "store", fingerprint="incremental-fp")


def _edit_file(base: TestSuite, donor: TestSuite, index: int) -> TestSuite:
    """The suite with file ``index`` replaced by another seed's file (an "edit")."""
    files = list(base.files)
    files[index] = donor.files[index]
    return TestSuite(name=base.name, files=files)


class TestAssembly:
    def test_single_file_edit_executes_only_that_file(self, store):
        base = build_suite("slt", file_count=4, records_per_file=15, seed=61, store=None)
        donor = build_suite("slt", file_count=4, records_per_file=15, seed=62, store=None)
        edited = _edit_file(base, donor, 2)
        run_transplant(base, "duckdb", store=store)
        store.stats.reset()
        incremental = run_transplant(edited, "duckdb", store=store)
        assert store.stats.by_namespace["file-results"] == {"hits": 3, "misses": 1}
        with store_disabled():
            reference = run_transplant(edited, "duckdb", store=store)
        assert canonical_bytes(incremental) == canonical_bytes(reference)

    def test_fully_warm_assembly_executes_nothing(self, store):
        suite = build_suite("slt", file_count=3, records_per_file=15, seed=61, store=None)
        cold = run_transplant(suite, "duckdb", store=store)
        # evict the suite-level cell (as LRU pressure would): the per-file
        # artifacts alone must reconstitute the cell without execution
        _wipe(store, "matrix-cells")
        store.stats.reset()
        warm = run_transplant(suite, "duckdb", store=store)
        assert store.stats.by_namespace["file-results"] == {"hits": 3, "misses": 0}
        assert canonical_bytes(warm) == canonical_bytes(cold)
        # and the assembled run re-persisted the suite-level cell
        assert list((store.root / "matrix-cells").rglob("*.pkl"))

    def test_fully_warm_assembly_never_leases_an_adapter(self, store):
        """A rebuild with every file warm must not acquire (and reset) a
        pooled adapter it will never execute on; a partial rebuild must."""
        from repro.adapters.pool import AdapterPool

        base = build_suite("slt", file_count=3, records_per_file=15, seed=68, store=None)
        donor = build_suite("slt", file_count=3, records_per_file=15, seed=69, store=None)
        cold = run_transplant(base, "duckdb", store=store)
        _wipe(store, "matrix-cells")
        pool = AdapterPool()
        try:
            warm = run_transplant(base, "duckdb", store=store, pool=pool)
            stats = pool.stats()
            assert stats["created"] == 0 and stats["reused"] == 0
            assert canonical_bytes(warm) == canonical_bytes(cold)
            # an edit forces one execution, which does lease from the pool
            edited = _edit_file(base, donor, 1)
            run_transplant(edited, "duckdb", store=store, pool=pool)
            assert pool.stats()["created"] == 1
        finally:
            pool.close()

    def test_assembly_spans_hosts_and_worker_counts(self, store):
        """Per-file artifacts written by sharded workers serve the serial
        assembly path and vice versa (same keys, same namespace)."""
        suite = build_suite("slt", file_count=4, records_per_file=15, seed=63, store=None)
        sharded_cold = run_transplant(suite, "duckdb", workers=4, executor="thread", store=store)
        _wipe(store, "matrix-cells", "donor-runs")
        store.stats.reset()
        serial_warm = run_transplant(suite, "duckdb", store=store)
        assert store.stats.by_namespace["file-results"] == {"hits": 4, "misses": 0}
        assert canonical_bytes(serial_warm) == canonical_bytes(sharded_cold)

    def test_truncated_file_blob_falls_back_to_executing_that_file(self, store):
        """Regression: a garbled ``file-results`` payload mid-assembly must
        execute that one file, not abort the suite or poison the result."""
        suite = build_suite("slt", file_count=3, records_per_file=15, seed=64, store=None)
        cold = run_transplant(suite, "duckdb", store=store)
        _wipe(store, "matrix-cells")
        # truncate one per-file codec frame *inside* its (still valid) pickle:
        # the store layer reads it fine, only the codec can notice
        victim = sorted((store.root / "file-results").rglob("*.pkl"))[0]
        version, namespace, blob = pickle.loads(victim.read_bytes())
        victim.write_bytes(pickle.dumps((version, namespace, blob[: len(blob) // 2])))
        store.stats.reset()
        warm = run_transplant(suite, "duckdb", store=store)
        assert canonical_bytes(warm) == canonical_bytes(cold)
        # the unusable blob is reclassified as a miss (and was re-executed)
        assert store.stats.by_namespace["file-results"] == {"hits": 2, "misses": 1}
        assert store.stats.errors >= 1
        # the fallback overwrote the bad blob: the next assembly is all-hit
        _wipe(store, "matrix-cells")
        store.stats.reset()
        rewarmed = run_transplant(suite, "duckdb", store=store)
        assert store.stats.by_namespace["file-results"] == {"hits": 3, "misses": 0}
        assert canonical_bytes(rewarmed) == canonical_bytes(cold)

    def test_version_bumped_file_blob_is_a_miss_not_an_abort(self, store, monkeypatch):
        suite = build_suite("slt", file_count=3, records_per_file=15, seed=64, store=None)
        cold = run_transplant(suite, "duckdb", store=store)
        _wipe(store, "matrix-cells")
        victim = sorted((store.root / "file-results").rglob("*.pkl"))[0]
        version, namespace, blob = pickle.loads(victim.read_bytes())
        bumped = blob[:3] + bytes([blob[3] + 1]) + blob[4:]  # magic "RRC" + version byte
        victim.write_bytes(pickle.dumps((version, namespace, bumped)))
        warm = run_transplant(suite, "duckdb", store=store)
        assert canonical_bytes(warm) == canonical_bytes(cold)

    def test_sharded_assembly_counts_each_missing_file_once(self, store):
        """Sharded execution of assembly misses must not re-probe (and
        re-count) the files assembly already looked up."""
        base = build_suite("slt", file_count=4, records_per_file=15, seed=66, store=None)
        donor = build_suite("slt", file_count=4, records_per_file=15, seed=67, store=None)
        edited = _edit_file(_edit_file(base, donor, 1), donor, 3)
        run_transplant(base, "duckdb", workers=4, executor="thread", store=store)
        store.stats.reset()
        incremental = run_transplant(edited, "duckdb", workers=4, executor="thread", store=store)
        assert store.stats.by_namespace["file-results"] == {"hits": 2, "misses": 2}
        with store_disabled():
            reference = run_transplant(edited, "duckdb", store=store)
        assert canonical_bytes(incremental) == canonical_bytes(reference)

    @pytest.mark.parametrize("workers", [1, 4])
    def test_no_incremental_skips_file_level_artifacts(self, store, workers):
        """The opt-out really opts out — including inside sharded workers,
        which are store-aware only when the incremental feature is on."""
        suite = build_suite("slt", file_count=3, records_per_file=15, seed=65, store=None)
        full = run_transplant(suite, "duckdb", store=store, incremental=False, workers=workers, executor="thread")
        # no per-file artifacts were written or probed...
        assert "file-results" not in store.stats.by_namespace
        assert not (store.root / "file-results").exists()
        # ...but the suite-level cell still memoizes the warm replay
        store.stats.reset()
        warm = run_transplant(suite, "duckdb", store=store, incremental=False, workers=workers, executor="thread")
        assert store.stats.by_namespace["matrix-cells"] == {"hits": 1, "misses": 0}
        assert canonical_bytes(warm) == canonical_bytes(full)


class TestIncrementalAnalysis:
    """``file-analysis`` mirrors the ``file-results`` mechanics: probe per
    file, re-scan only the misses, never trust a frame the codec rejects.
    Whole-lattice value identity lives in test_differential.py; these pin the
    corrupt-blob protocol and the counters."""

    def test_truncated_analysis_blob_rescans_only_that_file(self, store):
        from repro.analysis.incremental import ANALYSIS_PASSES, SuiteAnalyzer, direct_report

        suite = build_suite("postgres", file_count=3, records_per_file=12, seed=81, store=None)
        analyzer = SuiteAnalyzer(store=store)
        cold = analyzer.full_report(suite)
        # truncate one per-file codec frame inside its (still valid) pickle:
        # the store layer reads it fine, only the codec can notice
        victim = sorted((store.root / "file-analysis").rglob("*.pkl"))[0]
        version, namespace, blob = pickle.loads(victim.read_bytes())
        victim.write_bytes(pickle.dumps((version, namespace, blob[: len(blob) // 2])))
        store.stats.reset()
        warm = analyzer.full_report(suite)
        total = len(suite.files) * len(ANALYSIS_PASSES)
        assert store.stats.by_namespace["file-analysis"] == {"hits": total - 1, "misses": 1}
        assert store.stats.errors >= 1
        assert_equivalent({"direct": direct_report(suite), "cold": cold, "after-corruption": warm})
        # the re-scan overwrote the bad blob: the next assembly is all-hit
        store.stats.reset()
        assert canonical_bytes(analyzer.full_report(suite)) == canonical_bytes(cold)
        assert store.stats.by_namespace["file-analysis"] == {"hits": total, "misses": 0}

    def test_version_bumped_analysis_blob_is_a_miss_not_an_abort(self, store):
        from repro.analysis.incremental import SuiteAnalyzer, direct_report

        suite = build_suite("slt", file_count=3, records_per_file=12, seed=82, store=None)
        analyzer = SuiteAnalyzer(store=store)
        cold = analyzer.full_report(suite)
        victim = sorted((store.root / "file-analysis").rglob("*.pkl"))[0]
        version, namespace, blob = pickle.loads(victim.read_bytes())
        bumped = blob[:3] + bytes([blob[3] + 1]) + blob[4:]  # magic "RRC" + version byte
        victim.write_bytes(pickle.dumps((version, namespace, bumped)))
        warm = analyzer.full_report(suite)
        assert_equivalent({"direct": direct_report(suite), "cold": cold, "after-bump": warm})

    def test_frame_from_another_pass_is_invalidated(self, store):
        """Defense in depth: the pass id is part of the key, but a frame that
        *decodes* yet belongs to another pass must still read as a miss."""
        from repro.analysis import count_runner_commands
        from repro.analysis.incremental import SuiteAnalyzer
        from repro.store import analysis_file_key
        from repro.store.codec import encode_analysis_partial

        suite = build_suite("slt", file_count=3, records_per_file=12, seed=83, store=None)
        analyzer = SuiteAnalyzer(store=store)
        analyzer.partials(suite, "features")
        store.save(
            "file-analysis",
            analysis_file_key("features", suite.files[0]),
            encode_analysis_partial("statements", {"counts": {}}),
        )
        store.stats.reset()
        census = analyzer.command_census(suite)
        assert store.stats.by_namespace["file-analysis"] == {"hits": 2, "misses": 1}
        assert store.stats.errors >= 1
        assert canonical_bytes(census) == canonical_bytes(count_runner_commands(suite))


class TestIncrementalCorpus:
    def test_sharded_generation_matches_serial(self):
        serial = generate_corpus("postgres", file_count=4, records_per_file=12, seed=71, store=None)
        sharded = generate_corpus(
            "postgres", file_count=4, records_per_file=12, seed=71, store=None, workers=3, executor="thread"
        )
        assert_equivalent({"serial": serial, "workers-3": sharded})

    @pytest.mark.parametrize("executor", ["process", "auto"])
    def test_process_pool_generation_matches_serial(self, executor):
        serial = generate_corpus("slt", file_count=3, records_per_file=10, seed=72, store=None)
        sharded = generate_corpus(
            "slt", file_count=3, records_per_file=10, seed=72, store=None, workers=2, executor=executor
        )
        assert_equivalent({"serial": serial, "workers-2": sharded})

    def test_per_file_recordings_make_corpus_growth_incremental(self, store):
        generate_corpus("slt", file_count=3, records_per_file=10, seed=73, store=store)
        store.stats.reset()
        grown = generate_corpus("slt", file_count=5, records_per_file=10, seed=73, store=store)
        assert store.stats.by_namespace["file-donor"] == {"hits": 3, "misses": 2}
        reference = generate_corpus("slt", file_count=5, records_per_file=10, seed=73, store=None)
        assert_equivalent({"grown-incrementally": grown, "storeless": reference})

    def test_build_suite_threads_workers_through(self, store):
        sharded = build_suite("slt", file_count=4, records_per_file=10, seed=74, store=store, workers=3, executor="thread")
        reference = build_suite("slt", file_count=4, records_per_file=10, seed=74, store=None)
        assert canonical_bytes(sharded) == canonical_bytes(reference)
        # every file's donor recording was persisted individually
        assert len(list((store.root / "file-donor").rglob("*.pkl"))) == 4

    def test_foreign_payload_at_donor_key_is_invalidated(self, store):
        """A loadable blob that is not a recording dict must be discarded and
        its lookup demoted to a miss, like any corrupt artifact."""
        from repro.store import donor_file_key

        generate_corpus("slt", file_count=2, records_per_file=10, seed=76, store=store)
        _wipe(store, "corpus-files", "corpus-suites")
        # a recording-shaped dict with an extra key must also be rejected:
        # GeneratedFile(**entry) would crash on the unknown field
        store.save(
            "file-donor",
            donor_file_key("slt", 10, 76, 0),
            {"name": "x.test", "primary_text": "", "expected_text": None, "extra": 1},
        )
        store.stats.reset()
        rebuilt = generate_corpus("slt", file_count=2, records_per_file=10, seed=76, store=store)
        assert store.stats.by_namespace["file-donor"] == {"hits": 1, "misses": 1}
        assert store.stats.errors >= 1
        reference = generate_corpus("slt", file_count=2, records_per_file=10, seed=76, store=None)
        assert_equivalent({"rebuilt": rebuilt, "storeless": reference})

    def test_corrupt_per_file_recording_regenerates_only_that_file(self, store):
        reference = generate_corpus("slt", file_count=3, records_per_file=10, seed=75, store=store)
        # drop the whole-corpus entries so the per-file path is exercised
        _wipe(store, "corpus-files", "corpus-suites")
        victim = sorted((store.root / "file-donor").rglob("*.pkl"))[0]
        victim.write_bytes(b"corrupt")
        store.stats.reset()
        rebuilt = generate_corpus("slt", file_count=3, records_per_file=10, seed=75, store=store)
        assert store.stats.by_namespace["file-donor"] == {"hits": 2, "misses": 1}
        assert_equivalent(
            {
                "reference": reference,
                "rebuilt": rebuilt,
            }
        )


class TestCLIAndContext:
    def test_cli_incremental_flags_parse(self):
        from repro.experiments.__main__ import main

        assert main(["--no-incremental", "--list"]) == 0
        assert main(["--incremental", "--list"]) == 0

    def test_context_threads_incremental_flag(self):
        from repro.experiments.context import ExperimentContext

        with ExperimentContext(incremental=False) as context:
            assert context.incremental is False
        with ExperimentContext() as context:
            assert context.incremental is True
