"""Built-in SQL functions, runner-command semantics, and record/report helpers."""

import pytest

from repro.core.commands import CommandEffect, RunnerState, apply_control_record
from repro.core.records import Condition, ControlRecord, QueryRecord, StatementRecord, TestFile, TestSuite
from repro.core.report import format_distribution, format_table
from repro.engine.session import Session
from repro.errors import UnsupportedFunctionError


@pytest.fixture
def pg():
    return Session("postgres")


@pytest.fixture
def duck():
    return Session("duckdb")


class TestScalarFunctions:
    def test_string_functions(self, pg):
        assert pg.execute("SELECT upper('abc'), lower('ABC'), length('abcd')").rows == [["ABC", "abc", 4]]
        assert pg.execute("SELECT trim('  x  '), ltrim('  x'), rtrim('x  ')").rows == [["x", "x", "x"]]
        assert pg.execute("SELECT replace('banana', 'na', 'NA')").rows == [["baNANA"]]
        assert pg.execute("SELECT substr('abcdef', 2, 3)").rows == [["bcd"]]
        assert pg.execute("SELECT concat('a', 'b', 'c'), concat_ws('-', 'a', 'b')").rows == [["abc", "a-b"]]
        assert pg.execute("SELECT left('abcdef', 2), right('abcdef', 2)").rows == [["ab", "ef"]]
        assert pg.execute("SELECT lpad('7', 3, '0'), rpad('7', 3, '0')").rows == [["007", "700"]]
        assert pg.execute("SELECT split_part('a,b,c', ',', 2)").rows == [["b"]]

    def test_numeric_functions(self, pg):
        assert pg.execute("SELECT abs(-5), sign(-2), mod(7, 3)").rows == [[5, -1, 1]]
        assert pg.execute("SELECT floor(2.7), ceil(2.1)").rows == [[2, 3]]
        assert pg.execute("SELECT round(2.567, 2)").rows == [[2.57]]
        assert pg.execute("SELECT power(2, 10)").rows == [[1024.0]]
        assert pg.execute("SELECT sqrt(16)").rows == [[4.0]]
        assert pg.execute("SELECT trunc(5.99)").rows == [[5.0]]
        assert pg.execute("SELECT gcd(12, 18), lcm(4, 6)").rows == [[6, 12]]

    def test_conditional_functions(self, pg):
        assert pg.execute("SELECT coalesce(NULL, NULL, 3)").rows == [[3]]
        assert pg.execute("SELECT nullif(5, 5), nullif(5, 6)").rows == [[None, 5]]
        assert pg.execute("SELECT greatest(1, 9, 4), least(3, 2, 8)").rows == [[9, 2]]

    def test_metadata_functions(self, pg):
        assert pg.execute("SELECT current_database()").rows == [["main"]]
        assert "PostgreSQL" in pg.execute("SELECT version()").rows[0][0]
        assert pg.execute("SELECT md5('abc')").rows[0][0] == "900150983cd24fb0d6963f7d28e17f72"

    def test_random_is_seedable(self):
        first = Session("postgres", seed=42).execute("SELECT random()").rows
        second = Session("postgres", seed=42).execute("SELECT random()").rows
        assert first == second

    def test_duckdb_list_functions(self, duck):
        assert duck.execute("SELECT list_value(1, 2, 3)").rows == [[[1, 2, 3]]]
        assert duck.execute("SELECT list_extract([10, 20, 30], 2)").rows == [[20]]
        assert duck.execute("SELECT list_contains([1, 2], 2)").rows == [[True]]

    def test_unknown_function_raises(self, pg):
        with pytest.raises(UnsupportedFunctionError):
            pg.execute("SELECT not_a_real_function(1)")

    def test_aggregates_median_and_stddev(self, duck):
        duck.execute("CREATE TABLE q(r INTEGER)")
        duck.execute("INSERT INTO q VALUES (1), (2), (3), (4)")
        assert duck.execute("SELECT median(r) FROM q").rows == [[2.5]]
        assert duck.execute("SELECT stddev(r) FROM q").rows[0][0] == pytest.approx(1.29, abs=0.01)
        assert duck.execute("SELECT string_agg(r) FROM q").rows == [["1,2,3,4"]]

    def test_case_expression_forms(self, pg):
        assert pg.execute("SELECT CASE WHEN 1 > 2 THEN 'a' ELSE 'b' END").rows == [["b"]]
        assert pg.execute("SELECT CASE 2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' END").rows == [["two"]]
        assert pg.execute("SELECT CASE 9 WHEN 1 THEN 'one' END").rows == [[None]]


class TestRunnerCommands:
    def make_state(self, **kwargs):
        return RunnerState(host="duckdb", **kwargs)

    def control(self, command, *arguments):
        return ControlRecord(command=command, arguments=list(arguments))

    def test_halt(self):
        state = self.make_state()
        effect = apply_control_record(self.control("halt"), state)
        assert state.halted and effect.skip_rest_of_file

    def test_hash_threshold(self):
        state = self.make_state()
        apply_control_record(self.control("hash-threshold", "64"), state)
        assert state.hash_threshold == 64

    def test_mode_skip_and_unskip(self):
        state = self.make_state()
        apply_control_record(self.control("mode", "skip"), state)
        assert state.skipping
        apply_control_record(self.control("mode", "unskip"), state)
        assert not state.skipping

    def test_require_with_and_without_extension(self):
        state = self.make_state(available_extensions={"json"})
        assert not apply_control_record(self.control("require", "json"), state).skip_rest_of_file
        effect = apply_control_record(self.control("require", "icu"), state)
        assert effect.skip_rest_of_file and state.prefiltered

    def test_set_variable_and_substitution(self):
        state = self.make_state()
        apply_control_record(self.control("set", "name", "=", "42"), state)
        assert state.substitute("SELECT $name, ${name}") == "SELECT 42, 42"

    def test_restart_resets_connection(self):
        assert apply_control_record(self.control("restart"), self.make_state()).reset_connection

    def test_psql_meta_command_not_interpreted(self):
        effect = apply_control_record(ControlRecord(command="psql:d", arguments=["t1"]), self.make_state())
        assert not effect.handled

    def test_environment_command_not_interpreted(self):
        effect = apply_control_record(self.control("exec", "ls"), self.make_state())
        assert not effect.handled

    def test_unknown_command_flagged(self):
        effect = apply_control_record(self.control("frobnicate"), self.make_state())
        assert not effect.handled and "unknown" in effect.note


class TestRecordsAndReport:
    def test_condition_allows(self):
        assert Condition("skipif", "mysql").allows("sqlite")
        assert not Condition("skipif", "mysql").allows("mysql")
        assert Condition("onlyif", "postgresql").allows("postgres")
        assert not Condition("onlyif", "oracle").allows("duckdb")

    def test_record_runs_on_combines_conditions(self):
        record = QueryRecord(sql="SELECT 1", conditions=[Condition("skipif", "mysql"), Condition("onlyif", "sqlite")])
        assert record.runs_on("sqlite3")
        assert not record.runs_on("mysql")
        assert not record.runs_on("postgres")

    def test_expects_rows(self):
        record = QueryRecord(sql="", type_string="II", expected_values=["1", "2", "3", "4"])
        assert record.expects_rows == 2

    def test_test_file_helpers(self):
        test_file = TestFile(path="x", suite="slt", records=[StatementRecord(sql="SELECT 1"), ControlRecord(command="halt")])
        assert len(test_file) == 2
        assert test_file.statements() == ["SELECT 1"]
        assert [record.command for record in test_file.control_records()] == ["halt"]

    def test_test_suite_aggregates(self):
        suite = TestSuite(name="s", files=[TestFile(path="a", suite="s", records=[StatementRecord(sql="SELECT 1")])])
        assert suite.total_records == 1
        assert suite.all_statements() == ["SELECT 1"]
        assert len(list(iter(suite))) == 1

    def test_format_table_handles_ragged_rows(self):
        text = format_table(["a", "b", "c"], [["x"], ["y", 1, 2]])
        assert "x" in text and "y" in text

    def test_format_distribution_sorted(self):
        text = format_distribution({"small": 0.1, "big": 0.9})
        assert text.index("big") < text.index("small")
