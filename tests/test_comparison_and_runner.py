"""Result comparison and unified runner behaviour."""

import textwrap

import pytest

from repro.adapters.base import ExecutionOutcome, ExecutionStatus
from repro.adapters.registry import create_adapter
from repro.core.comparison import compare_query_result, normalize_value, result_hash
from repro.core.records import QueryRecord, ResultFormat, SortMode
from repro.core.runner import RecordOutcome, TestRunner
from repro.core.suite import parse_test_text


def make_outcome(rows, columns=None):
    return ExecutionOutcome(status=ExecutionStatus.OK, columns=columns or [f"c{i}" for i in range(len(rows[0]) if rows else 0)], rows=rows)


class TestNormalization:
    def test_null_and_empty(self):
        assert normalize_value(None) == "NULL"
        assert normalize_value("", "T") == "(empty)"

    def test_integer_formatting(self):
        assert normalize_value(42, "I") == "42"
        assert normalize_value(True, "I") == "1"

    def test_float_under_integer_type_keeps_decimal(self):
        # this is what makes DuckDB's decimal division fail SLT's I columns
        assert normalize_value(31.0, "I") == "31.0"

    def test_real_formatting_three_decimals(self):
        assert normalize_value(2.5, "R") == "2.500"

    def test_hash_is_stable(self):
        assert result_hash(["1", "2"]) == result_hash(["1", "2"])
        assert result_hash(["1", "2"]) != result_hash(["2", "1"])


class TestCompareQueryResult:
    def test_value_wise_match_with_rowsort(self):
        record = QueryRecord(sql="", type_string="II", sort_mode=SortMode.ROWSORT, expected_values=["2", "4", "3", "1"])
        assert compare_query_result(record, make_outcome([[3, 1], [2, 4]])).matches

    def test_value_wise_mismatch(self):
        record = QueryRecord(sql="", type_string="I", expected_values=["31"])
        result = compare_query_result(record, make_outcome([[31.0]]))
        assert not result.matches
        assert result.mismatch_kind == "value"

    def test_float_tolerance_mode(self):
        record = QueryRecord(sql="", type_string="I", expected_values=["4999"])
        outcome = make_outcome([[4999.5]])
        assert not compare_query_result(record, outcome).matches
        assert compare_query_result(record, outcome, float_tolerance=0.01).matches

    def test_row_count_mismatch(self):
        record = QueryRecord(sql="", type_string="I", expected_values=["1", "2"])
        result = compare_query_result(record, make_outcome([[1]]))
        assert not result.matches and result.mismatch_kind == "row_count"

    def test_row_wise_comparison(self):
        record = QueryRecord(sql="", type_string="II", result_format=ResultFormat.ROW_WISE, expected_rows=[["2", "4"], ["3", "1"]])
        assert compare_query_result(record, make_outcome([[2, 4], [3, 1]])).matches
        assert not compare_query_result(record, make_outcome([[2, 4], [3, 2]])).matches

    def test_hash_comparison(self):
        values = ["1", "2", "3"]
        record = QueryRecord(
            sql="", type_string="I", result_format=ResultFormat.HASH, expected_hash=result_hash(values), expected_hash_count=3
        )
        assert compare_query_result(record, make_outcome([[1], [2], [3]])).matches
        assert not compare_query_result(record, make_outcome([[1], [2], [4]])).matches

    def test_valuesort_mode(self):
        record = QueryRecord(sql="", type_string="I", sort_mode=SortMode.VALUESORT, expected_values=["3", "1", "2"])
        assert compare_query_result(record, make_outcome([[2], [3], [1]])).matches


SLT_FILE = textwrap.dedent(
    """\
    statement ok
    CREATE TABLE t1(a INTEGER, b INTEGER)

    statement ok
    INSERT INTO t1 VALUES (1, 10), (2, 20)

    query I rowsort
    SELECT a FROM t1
    ----
    1
    2

    statement error
    SELECT * FROM missing

    onlyif oracle
    query I nosort
    SELECT 999
    ----
    999

    query I nosort
    SELECT b FROM t1 WHERE a = 2
    ----
    20
    """
)


class TestUnifiedRunner:
    @pytest.mark.parametrize("host", ["sqlite", "sqlite-mini", "postgres", "duckdb", "mysql"])
    def test_slt_file_passes_on_every_host(self, host):
        test_file = parse_test_text(SLT_FILE, "slt")
        adapter = create_adapter(host)
        adapter.connect()
        result = TestRunner(adapter, host_name=host).run_file(test_file)
        assert result.failed == 0
        assert result.skipped == 1  # the onlyif-oracle record
        assert result.passed == 5

    def test_statement_error_expectation(self):
        text = "statement error\nSELECT 1\n"
        test_file = parse_test_text(text, "slt")
        adapter = create_adapter("sqlite")
        adapter.connect()
        result = TestRunner(adapter).run_file(test_file)
        assert result.failed == 1
        assert result.results[0].reason == "statement unexpectedly succeeded"

    def test_mode_skip_region(self):
        text = "mode skip\n\nstatement ok\nSELECT 1\n\nmode unskip\n\nstatement ok\nSELECT 2\n"
        test_file = parse_test_text(text, "duckdb")
        adapter = create_adapter("duckdb")
        adapter.connect()
        result = TestRunner(adapter, host_name="duckdb").run_file(test_file)
        assert result.skipped == 1 and result.passed == 1

    def test_require_prefilters_rest_of_file(self):
        text = "statement ok\nSELECT 1\n\nrequire icu\n\nstatement ok\nSELECT 2\n\nstatement ok\nSELECT 3\n"
        test_file = parse_test_text(text, "duckdb")
        adapter = create_adapter("duckdb")
        adapter.connect()
        result = TestRunner(adapter, host_name="duckdb").run_file(test_file)
        assert result.passed == 1 and result.skipped == 2
        runner_with_extension = TestRunner(adapter, host_name="duckdb", available_extensions={"icu"})
        assert runner_with_extension.run_file(test_file).passed == 3

    def test_halt_skips_rest(self):
        text = "statement ok\nSELECT 1\n\nhalt\n\nstatement ok\nSELECT 2\n"
        test_file = parse_test_text(text, "slt")
        adapter = create_adapter("sqlite")
        adapter.connect()
        result = TestRunner(adapter).run_file(test_file)
        assert result.passed == 1 and result.skipped == 1

    def test_crash_marks_rest_of_file_skipped(self):
        text = "statement ok\nALTER SCHEMA a RENAME TO b\n\nstatement ok\nSELECT 1\n"
        test_file = parse_test_text(text, "postgres" if False else "slt")
        adapter = create_adapter("duckdb")
        adapter.connect()
        result = TestRunner(adapter, host_name="duckdb").run_file(test_file)
        assert result.crashes == 1
        assert result.skipped == 1

    def test_division_fails_on_decimal_hosts(self):
        text = "query I nosort\nSELECT 62 / 2\n----\n31\n"
        test_file = parse_test_text(text, "slt")
        for host, expected_fail in (("sqlite", 0), ("postgres", 0), ("duckdb", 1), ("mysql", 1)):
            adapter = create_adapter(host)
            adapter.connect()
            result = TestRunner(adapter, host_name=host).run_file(test_file)
            assert result.failed == expected_fail, host

    def test_translate_dialect_recovers_division(self):
        text = "query I nosort\nSELECT 62 / 2\n----\n31\n"
        test_file = parse_test_text(text, "slt")
        adapter = create_adapter("duckdb")
        adapter.connect()
        runner = TestRunner(adapter, host_name="duckdb", translate_dialect=True, donor_dialect="sqlite")
        assert runner.run_file(test_file).failed == 0

    def test_suite_result_aggregation(self, small_slt_suite):
        adapter = create_adapter("sqlite")
        adapter.connect()
        runner = TestRunner(adapter, host_name="sqlite")
        suite_result = runner.run_suite(small_slt_suite)
        assert suite_result.total_cases == sum(len(file_result.results) for file_result in suite_result.files)
        assert 0.0 <= suite_result.success_rate <= 1.0
        assert suite_result.failed_cases == 0

    def test_max_records_per_file(self, small_slt_suite):
        adapter = create_adapter("sqlite")
        adapter.connect()
        runner = TestRunner(adapter, host_name="sqlite", max_records_per_file=5)
        result = runner.run_file(small_slt_suite.files[0])
        assert len(result.results) <= 5


class TestFileResultCounters:
    def _results(self, outcomes):
        from repro.core.records import StatementRecord
        from repro.core.runner import RecordResult

        return [RecordResult(record=StatementRecord(sql="SELECT 1"), outcome=outcome) for outcome in outcomes]

    def test_counts_survive_list_replacement_with_reused_id(self):
        from repro.core.runner import FileResult, RecordOutcome

        file_result = FileResult(path="p", suite="slt", host="sqlite")
        file_result.results = self._results([RecordOutcome.PASS, RecordOutcome.PASS])
        assert file_result.passed == 2
        # replace the list repeatedly: CPython frequently reuses the freed
        # list's id(), which an id-based staleness check mistakes for the
        # already-counted list
        for _ in range(8):
            file_result.results = self._results([RecordOutcome.FAIL, RecordOutcome.FAIL, RecordOutcome.FAIL])
            assert file_result.passed == 0
            assert file_result.failed == 3

    def test_counts_follow_truncation_and_append(self):
        from repro.core.runner import FileResult, RecordOutcome

        file_result = FileResult(path="p", suite="slt", host="sqlite")
        file_result.results.extend(self._results([RecordOutcome.PASS, RecordOutcome.FAIL]))
        assert (file_result.passed, file_result.failed) == (1, 1)
        del file_result.results[1:]
        assert (file_result.passed, file_result.failed) == (1, 0)
        file_result.results.extend(self._results([RecordOutcome.SKIP]))
        assert file_result.skipped == 1
