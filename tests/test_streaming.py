"""The declarative experiment registry and the single-pass streaming engine."""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.errors import ReproError, UnknownExperimentError
from repro.experiments import (
    CellKey,
    Experiment,
    ExperimentContext,
    ExperimentNeeds,
    ExperimentResult,
    donor_cells,
    experiment_entries,
    matrix_cells,
    register_experiment,
    stream_experiments,
)
from repro.experiments import stream as stream_module
from repro.experiments.base import get_experiment_entry, unregister_experiment
from repro.experiments.registry import EXPERIMENTS, run_all, run_experiment

CANONICAL_IDS = [
    "table1", "figure1", "table2", "figure2", "table3", "figure3", "table4",
    "table5", "figure4", "table6", "table7", "table8", "bugs", "ablations",
]


def _tiny_context(**kwargs):
    kwargs.setdefault("use_store", False)
    return ExperimentContext(scale=0.05, seed=11, **kwargs)


class TestCellDeclarations:
    def test_cell_key_identity_and_donor_flag(self):
        assert CellKey("slt", "sqlite").is_donor_run
        assert not CellKey("slt", "mysql").is_donor_run
        assert CellKey("slt", "mysql") == CellKey("slt", "mysql")
        assert CellKey("slt", "mysql") != CellKey("slt", "mysql", translate=True)

    def test_donor_cells_diagonal(self):
        assert donor_cells("slt", "duckdb") == (CellKey("slt", "sqlite"), CellKey("duckdb", "duckdb"))

    def test_matrix_cells_campaign_order_and_donor_exclusion(self):
        cells = matrix_cells(("slt",), ("sqlite", "mysql"))
        assert cells == (CellKey("slt", "sqlite"), CellKey("slt", "mysql"))
        off_diagonal = matrix_cells(("slt",), ("sqlite", "mysql"), include_donor=False)
        assert off_diagonal == (CellKey("slt", "mysql"),)


class TestExperimentRegistry:
    def test_canonical_entries_and_declared_needs(self):
        entries = experiment_entries()
        assert [entry.id for entry in entries][: len(CANONICAL_IDS)] == CANONICAL_IDS
        by_id = {entry.id: entry for entry in entries}
        # cell-consuming drivers declare their matrix needs up front
        assert CellKey("slt", "sqlite") in by_id["table4"].needs.cells
        assert len(by_id["figure4"].needs.cells) == 12
        # analysis drivers declare corpora only
        assert by_id["table1"].needs.cells == ()
        assert "mysql" in by_id["table1"].needs.suites

    def test_experiments_compat_mapping(self):
        assert list(EXPERIMENTS)[: len(CANONICAL_IDS)] == CANONICAL_IDS
        title, runner = EXPERIMENTS["figure3"]
        assert "Figure 3" in title
        assert callable(runner)

    def test_unknown_id_raises_with_suggestion(self):
        with pytest.raises(UnknownExperimentError, match="did you mean 'table4'"):
            get_experiment_entry("tabel4")
        # compat: the error is both a ReproError and a KeyError
        with pytest.raises(KeyError):
            get_experiment_entry("nope")
        with pytest.raises(ReproError):
            run_experiment("nope")

    def test_duplicate_registration_rejected_unless_replaced(self):
        @register_experiment("tmp-dup", "tmp")
        def _run(context):
            return ExperimentResult(experiment_id="tmp-dup", title="tmp", text="a")

        try:
            with pytest.raises(ValueError, match="already registered"):
                register_experiment("tmp-dup", "tmp")(_run)
            register_experiment("tmp-dup", "tmp2", replace=True)(_run)
            assert get_experiment_entry("tmp-dup").title == "tmp2"
        finally:
            unregister_experiment("tmp-dup")
        with pytest.raises(UnknownExperimentError):
            get_experiment_entry("tmp-dup")

    def test_function_registration_streams_like_a_class(self):
        @register_experiment("tmp-fn", "function-based", description="compat wrapper")
        def _run(context):
            return ExperimentResult(experiment_id="tmp-fn", title="function-based", text="hello")

        try:
            results = list(stream_experiments(["tmp-fn"], _tiny_context()))
            assert [result.text for result in results] == ["hello"]
        finally:
            unregister_experiment("tmp-fn")

    def test_non_callable_registration_rejected(self):
        with pytest.raises(TypeError, match="Experiment subclass"):
            register_experiment("tmp-bad", "bad")(object())


class _FakeCellExperiment(Experiment):
    """Test double: collects its declared cells and reports their payloads."""

    def finalize(self) -> ExperimentResult:
        payload = ",".join(str(result) for _key, result in self.iter_cells())
        return ExperimentResult(experiment_id=self.id, title=self.title, text=payload)


def _register_fake(experiment_id, cells):
    cls = type(f"_Fake_{experiment_id}", (_FakeCellExperiment,), {})
    register_experiment(experiment_id, experiment_id, needs=ExperimentNeeds(cells=cells))(cls)
    return experiment_id


class TestStreamEngine:
    """Planner dedup, execute-once, backpressure, and ordering (fake cells)."""

    @pytest.fixture
    def fake_executor(self, monkeypatch):
        calls = []
        lock = threading.Lock()
        state = {"active": 0, "max_active": 0, "delay": 0.0}

        def _fake_execute(context, key, workers, worker_pool):
            with lock:
                state["active"] += 1
                state["max_active"] = max(state["max_active"], state["active"])
                calls.append(key)
            if state["delay"]:
                time.sleep(state["delay"])
            with lock:
                state["active"] -= 1
            return f"cell({key.suite}->{key.host})"

        monkeypatch.setattr(stream_module, "_execute_transplant", _fake_execute)
        return calls, state

    def test_shared_cells_execute_exactly_once(self, fake_executor):
        calls, _state = fake_executor
        shared = (CellKey("s1", "h1"), CellKey("s1", "h2"))
        ids = [
            _register_fake("tmp-a", shared),
            _register_fake("tmp-b", shared + (CellKey("s1", "h3"),)),
        ]
        try:
            results = {r.experiment_id: r for r in stream_experiments(ids, _tiny_context())}
        finally:
            for experiment_id in ids:
                unregister_experiment(experiment_id)
        # the union has three unique cells; the overlap ran once, not twice
        assert sorted(calls) == [CellKey("s1", "h1"), CellKey("s1", "h2"), CellKey("s1", "h3")]
        assert results["tmp-a"].text == "cell(s1->h1),cell(s1->h2)"
        assert results["tmp-b"].text.endswith("cell(s1->h3)")

    def test_warm_context_executes_nothing_new(self, fake_executor):
        calls, _state = fake_executor
        cells = (CellKey("s1", "h1"), CellKey("s1", "h2"))
        ids = [_register_fake("tmp-warm", cells)]
        try:
            context = _tiny_context()
            first = list(stream_experiments(ids, context))
            assert len(calls) == 2
            second = list(stream_experiments(ids, context))
            # every cell was served from the context's stream cache
            assert len(calls) == 2
            assert [r.text for r in first] == [r.text for r in second]
        finally:
            unregister_experiment(ids[0])

    def test_backpressure_bounds_inflight_cells(self, fake_executor):
        calls, state = fake_executor
        state["delay"] = 0.02
        cells = tuple(CellKey("s1", f"h{index}") for index in range(8))
        ids = [_register_fake("tmp-wide", cells)]
        try:
            list(stream_experiments(ids, _tiny_context(), max_inflight=3))
        finally:
            unregister_experiment(ids[0])
        assert len(calls) == 8
        # at most three cells in flight at once, and the lane actually overlapped
        assert 2 <= state["max_active"] <= 3

    def test_serial_yield_order_analysis_first_then_completion(self, fake_executor):
        @register_experiment("tmp-pure", "pure analysis")
        def _pure(context):
            return ExperimentResult(experiment_id="tmp-pure", title="pure", text="pure")

        ids = [
            _register_fake("tmp-late", (CellKey("s1", "h1"), CellKey("s1", "h2"))),
            _register_fake("tmp-early", (CellKey("s1", "h1"),)),
            "tmp-pure",
        ]
        try:
            yielded = [r.experiment_id for r in stream_experiments(ids, _tiny_context(), max_inflight=1)]
        finally:
            for experiment_id in ids:
                unregister_experiment(experiment_id)
        # pure analysis yields before any cell executes; tmp-early completes on
        # the first cell of the campaign-ordered plan, tmp-late on the second
        assert yielded == ["tmp-pure", "tmp-early", "tmp-late"]

    def test_translated_donor_cell_aliases_to_plain(self, fake_executor):
        calls, _state = fake_executor
        cells = (CellKey("slt", "sqlite"), CellKey("slt", "sqlite", translate=True))
        ids = [_register_fake("tmp-alias", cells)]
        try:
            results = list(stream_experiments(ids, _tiny_context()))
        finally:
            unregister_experiment(ids[0])
        # translation is the identity donor-on-donor: one execution serves both
        # declared keys, and the experiment still sees both cells delivered
        assert calls == [CellKey("slt", "sqlite")]
        assert results[0].text == "cell(slt->sqlite),cell(slt->sqlite)"

    def test_duplicate_selection_collapses(self, fake_executor):
        calls, _state = fake_executor
        ids = [_register_fake("tmp-dupsel", (CellKey("s1", "h1"),))]
        try:
            results = list(stream_experiments(["tmp-dupsel", "tmp-dupsel"], _tiny_context()))
        finally:
            unregister_experiment(ids[0])
        assert len(results) == 1
        assert len(calls) == 1


class TestRealCampaignDedup:
    """On real experiments the planner's dedup is visible in executed cells."""

    def test_run_all_executes_each_unique_cell_once(self, monkeypatch):
        executed = []
        real_execute = stream_module._execute_transplant

        def spy(context, key, workers, worker_pool):
            executed.append(key)
            return real_execute(context, key, workers, worker_pool)

        monkeypatch.setattr(stream_module, "_execute_transplant", spy)
        run_all(_tiny_context())
        assert len(executed) == len(set(executed)), "a matrix cell executed twice in one pass"
        # the union: 12 plain grid cells + 9 translated off-diagonal cells
        # (translated donors alias to plain; table6/7 subsets overlap the grid)
        assert len(executed) == 21

    def test_adopted_matrices_serve_late_matrix_reads(self):
        context = _tiny_context()
        run_all(context)
        # the pass covered the full grid, so matrix reads resolve without a
        # second campaign — and donor_result comes from the adopted matrix
        assert context._matrix is not None
        assert context._translated_matrix is not None
        assert context.donor_result("slt").suite == "slt"


class TestAsyncAdapterPath:
    def test_execute_async_matches_execute(self):
        from repro.adapters.minidb_adapter import MiniDBAdapter

        async def _go():
            with MiniDBAdapter("sqlite") as adapter:
                adapter.execute("CREATE TABLE t(a INTEGER)")
                adapter.execute("INSERT INTO t VALUES (1), (2)")
                return await adapter.execute_async("SELECT a FROM t ORDER BY a")

        outcome = asyncio.run(_go())
        assert outcome.ok
        assert outcome.rows == [[1], [2]]

    def test_run_suite_async_matches_sync_runner(self):
        from repro.adapters.minidb_adapter import MiniDBAdapter
        from repro.core.runner import TestRunner
        from repro.corpus import build_suite
        from repro.store import canonical_bytes

        suite = build_suite("slt", file_count=2, records_per_file=12, seed=5, store=None)
        with MiniDBAdapter("sqlite") as adapter:
            sync_result = TestRunner(adapter, host_name="sqlite").run_suite(suite)

        async def _go():
            with MiniDBAdapter("sqlite") as adapter:
                return await adapter.run_suite_async(suite, host_name="sqlite")

        async_result = asyncio.run(_go())
        assert canonical_bytes(async_result) == canonical_bytes(sync_result)

    def test_run_suite_async_runs_adapters_concurrently(self):
        from repro.adapters.minidb_adapter import MiniDBAdapter
        from repro.core.runner import TestRunner
        from repro.corpus import build_suite
        from repro.store import canonical_bytes

        suite = build_suite("slt", file_count=2, records_per_file=12, seed=5, store=None)

        async def _go():
            adapters = [MiniDBAdapter("sqlite"), MiniDBAdapter("duckdb")]
            for adapter in adapters:
                adapter.setup()
            try:
                return await asyncio.gather(
                    *(adapter.run_suite_async(suite, host_name=adapter.name) for adapter in adapters)
                )
            finally:
                for adapter in adapters:
                    adapter.teardown()

        first, second = asyncio.run(_go())
        with MiniDBAdapter("sqlite") as adapter:
            reference = TestRunner(adapter, host_name="sqlite").run_suite(suite)
        assert canonical_bytes(first) == canonical_bytes(reference)
        assert second.suite == suite.name


class TestStreamCli:
    def test_list_experiments_shows_needs(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--list-experiments"]) == 0
        output = capsys.readouterr().out
        assert "figure4" in output and "needs:" in output and "matrix cell(s)" in output

    def test_unknown_experiment_exits_one_with_suggestion(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["tabel4"]) == 1
        stderr = capsys.readouterr().err
        assert "unknown experiment" in stderr and "table4" in stderr

    def test_stream_flag_prints_results_incrementally(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["figure2", "table8", "--stream", "--scale", "0.05", "--seed", "11", "--no-store"]) == 0
        output = capsys.readouterr().out
        assert "Figure 2" in output and "Table 8" in output


class TestStreamJournaling:
    """A journaled streaming pass records its cells like run_matrix does."""

    def test_pass_journals_cells_and_replay_shows_complete(self, tmp_path):
        from repro.core.journal import replay_journal

        context = _tiny_context(use_store=True, store_dir=tmp_path / "store", journal=True)
        with context:
            results = list(stream_experiments(["table4"], context))
        assert results
        journals = sorted((tmp_path / "store" / "journals").glob("*.jsonl"))
        assert journals, "journaled pass wrote no journal"
        completed = set()
        for journal in journals:
            replay = replay_journal(journal)
            assert replay.incomplete_cells() == []
            completed |= replay.completed
        # every executed cell of the pass finished and was journaled complete
        assert completed
        assert all(suite and host for suite, host in completed)

    def test_fakes_without_journal_kwarg_still_work(self, monkeypatch):
        # third-party stand-ins for _execute_transplant predate the journal
        # kwarg; an unjournaled pass must keep calling them positionally
        def legacy(context, key, workers, worker_pool):
            return f"cell({key.suite}->{key.host})"

        monkeypatch.setattr(stream_module, "_execute_transplant", legacy)
        experiment_id = _register_fake("tmp-journal-legacy", (CellKey("s1", "h1"),))
        try:
            results = list(stream_experiments([experiment_id], _tiny_context()))
        finally:
            unregister_experiment(experiment_id)
        assert len(results) == 1
