"""Property-based tests (hypothesis) for core invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.adapters.base import ExecutionOutcome, ExecutionStatus
from repro.analysis import features, filesize, predicates, statements
from repro.analysis.incremental import ANALYSIS_PASSES
from repro.corpus import build_suite
from repro.core.comparison import ComparisonResult, normalize_value, result_hash
from repro.core.records import QueryRecord, StatementRecord, TestFile, TestSuite
from repro.core.runner import FileResult, RecordOutcome, RecordResult, SuiteResult
from repro.engine.session import Session
from repro.engine.values import compare_values, render_value
from repro.perf import vectorize
from repro.sqlparser.statements import split_statements, statement_type
from repro.sqlparser.tokenizer import tokenize
from repro.store import canonical_bytes
from repro.store.codec import (
    CodecError,
    decode_file_result,
    decode_suite_result,
    encode_file_result,
    encode_suite_result,
)

# -- strategies -----------------------------------------------------------------

sql_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(alphabet=st.characters(blacklist_categories=("Cs",), blacklist_characters="\x00"), max_size=20),
)

identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True)
safe_text = st.text(alphabet="abcdefghij XYZ0123456789_,.", max_size=30)


class TestTokenizerProperties:
    @given(safe_text)
    @settings(max_examples=150)
    def test_tokenizer_never_crashes_on_safe_text(self, text):
        tokenize("SELECT " + text.replace("'", ""))

    @given(identifiers, st.integers(min_value=-1000, max_value=1000))
    def test_tokens_cover_all_significant_characters(self, name, number):
        sql = f"SELECT {name} + {number} FROM {name}_t"
        reconstructed = "".join(token.value for token in tokenize(sql))
        assert reconstructed.replace(" ", "") == sql.replace(" ", "")

    @given(st.lists(identifiers, min_size=1, max_size=5))
    def test_split_statements_count(self, names):
        script = "; ".join(f"SELECT {name} FROM t" for name in names)
        assert len(split_statements(script)) == len(names)

    @given(identifiers)
    def test_statement_type_of_select_is_select(self, name):
        assert statement_type(f"SELECT {name} FROM {name}") == "SELECT"


class TestValueProperties:
    @given(sql_values, sql_values)
    @settings(max_examples=200)
    def test_compare_values_antisymmetry(self, left, right):
        forward = compare_values(left, right)
        backward = compare_values(right, left)
        if forward is None:
            assert backward is None
        else:
            assert backward == -forward

    @given(sql_values)
    def test_compare_values_reflexive(self, value):
        result = compare_values(value, value)
        assert result is None if value is None else result == 0

    @given(sql_values)
    def test_render_value_is_string(self, value):
        assert isinstance(render_value(value), str)

    @given(st.lists(st.text(alphabet="abc123", max_size=5), max_size=10))
    def test_result_hash_deterministic_and_order_sensitive(self, values):
        assert result_hash(values) == result_hash(values)

    @given(st.integers(min_value=-(10**12), max_value=10**12))
    def test_normalize_integer_roundtrip(self, number):
        assert normalize_value(number, "I") == str(number)

    @given(st.floats(allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6))
    def test_normalize_real_has_three_decimals(self, number):
        normalized = normalize_value(number, "R")
        assert len(normalized.split(".")[-1]) == 3


class TestEngineProperties:
    @given(st.lists(st.integers(min_value=-10000, max_value=10000), min_size=1, max_size=25))
    @settings(max_examples=30, deadline=None)
    def test_sum_and_count_match_python(self, numbers):
        session = Session("postgres")
        session.execute("CREATE TABLE t(a INTEGER)")
        values = ", ".join(f"({n})" for n in numbers)
        session.execute(f"INSERT INTO t VALUES {values}")
        result = session.execute("SELECT count(*), sum(a), min(a), max(a) FROM t").rows[0]
        assert result == [len(numbers), sum(numbers), min(numbers), max(numbers)]

    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_order_by_sorts_like_python(self, numbers):
        session = Session("sqlite")
        session.execute("CREATE TABLE t(a INTEGER)")
        session.execute("INSERT INTO t VALUES " + ", ".join(f"({n})" for n in numbers))
        rows = session.execute("SELECT a FROM t ORDER BY a").rows
        assert [row[0] for row in rows] == sorted(numbers)

    @given(st.integers(min_value=-1000, max_value=1000), st.integers(min_value=1, max_value=50))
    @settings(max_examples=50, deadline=None)
    def test_division_semantics_agree_with_real_sqlite(self, numerator, denominator):
        import sqlite3

        with sqlite3.connect(":memory:") as connection:
            expected = connection.execute(f"SELECT {numerator} / {denominator}").fetchone()[0]
        mini = Session("sqlite").execute(f"SELECT {numerator} / {denominator}").rows[0][0]
        assert mini == expected

    @given(st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=15), st.integers(min_value=-100, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_where_filter_matches_python_filter(self, numbers, threshold):
        session = Session("duckdb")
        session.execute("CREATE TABLE t(a INTEGER)")
        session.execute("INSERT INTO t VALUES " + ", ".join(f"({n})" for n in numbers))
        rows = session.execute(f"SELECT count(*) FROM t WHERE a > {threshold}").rows
        assert rows[0][0] == sum(1 for n in numbers if n > threshold)

    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_group_by_counts_match_python(self, numbers):
        from collections import Counter

        session = Session("postgres")
        session.execute("CREATE TABLE t(a INTEGER)")
        session.execute("INSERT INTO t VALUES " + ", ".join(f"({n})" for n in numbers))
        rows = session.execute("SELECT a, count(*) FROM t GROUP BY a ORDER BY a").rows
        expected = sorted(Counter(numbers).items())
        assert [(row[0], row[1]) for row in rows] == expected

    @given(st.lists(st.integers(min_value=-50, max_value=50), min_size=0, max_size=15))
    @settings(max_examples=30, deadline=None)
    def test_transaction_rollback_is_lossless(self, numbers):
        session = Session("postgres")
        session.execute("CREATE TABLE t(a INTEGER)")
        if numbers:
            session.execute("INSERT INTO t VALUES " + ", ".join(f"({n})" for n in numbers))
        before = session.execute("SELECT count(*), coalesce(sum(a), 0) FROM t").rows
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (999)")
        session.execute("DELETE FROM t WHERE a < 0")
        session.execute("ROLLBACK")
        after = session.execute("SELECT count(*), coalesce(sum(a), 0) FROM t").rows
        assert before == after


# -- incremental analysis merge laws ----------------------------------------------
#
# The algebra the file-analysis store namespace rests on: every analysis pass
# is a per-file partial plus an associative, commutative merge, so assembling
# cached partials — in whatever order or grouping the store hands them back —
# must equal the direct whole-suite scan.  Seeded fuzzing over random suites,
# file counts, and partial orderings; equality is canonical-byte equality
# (dict key order never counts, float rendering is exact).


class TestAnalysisMergeLaws:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_partials_merge_order_independently_for_all_passes(self, seed):
        rng = random.Random(seed)
        suite = build_suite(
            rng.choice(("slt", "postgres", "duckdb", "mysql")),
            file_count=rng.randint(1, 6),
            records_per_file=rng.randint(5, 30),
            seed=rng.randint(0, 999),
            store=None,
        )

        def shuffled(pass_id):
            # a random permutation subsumes every order *and* every split: a
            # chunked merge concatenates chunk partial lists, which is just
            # some permutation of the per-file list
            partials = [ANALYSIS_PASSES[pass_id](test_file) for test_file in suite.files]
            rng.shuffle(partials)
            return partials

        # features (Table 2): census == the direct whole-suite census
        census = features.merge_command_censuses(suite.name, shuffled("features"))
        assert canonical_bytes(census) == canonical_bytes(features.count_runner_commands(suite))

        # statements (Figure 2 / Table 3): distribution and both compliance variants
        merged = statements.merge_statement_profiles(shuffled("statements"))
        assert canonical_bytes(statements.distribution_from_profiles(merged)) == canonical_bytes(
            statements.statement_type_distribution(suite)
        )
        for relaxed in (False, True):
            assert canonical_bytes(statements.compliance_from_profiles(suite.name, merged, relaxed)) == canonical_bytes(
                statements.standard_compliance(suite, count_create_index_as_standard=relaxed)
            )

        # predicates (Figure 3): bucket distribution and join usage
        merged = predicates.merge_predicate_profiles(shuffled("predicates"))
        assert canonical_bytes(predicates.distribution_from_profiles(merged)) == canonical_bytes(
            predicates.predicate_distribution(suite)
        )
        assert canonical_bytes(predicates.join_usage_from_profiles(suite.name, merged)) == canonical_bytes(
            predicates.join_usage(suite)
        )

        # file sizes (Figure 1): the raw list is ordered, so compare its
        # permutation-invariant views — summary and histogram — plus the multiset
        sizes = filesize.sizes_from_profiles(shuffled("filesize"))
        assert sorted(sizes) == sorted(filesize.file_size_distribution(suite))
        assert canonical_bytes(filesize.summarize_sizes(suite.name, sizes)) == canonical_bytes(
            filesize.size_summary(suite)
        )
        assert filesize.log_histogram(sizes) == filesize.log_histogram(filesize.file_size_distribution(suite))

    @given(st.lists(st.integers(min_value=0, max_value=10**7), max_size=60))
    @settings(max_examples=100)
    def test_log_histogram_buckets_partition_the_files(self, sizes):
        """Every file lands in exactly one bucket — zero-line files included —
        so the per-bucket counts always sum to the file count."""
        histogram = filesize.log_histogram(sizes)
        assert sum(histogram.values()) == len(sizes)
        assert histogram["0"] == sum(1 for size in sizes if size == 0)


# -- the result codec -------------------------------------------------------------
#
# Seeded-random fuzzing of repro.store.codec: whole FileResult/SuiteResult
# graphs over random dialects and hosts, with unicode text, NULLs, and float
# edge cases (signed zero, huge/tiny magnitudes, inf, nan) in the result rows.
# The example-based roundtrips in test_codec.py pin realistic payloads; these
# pin the wire format against inputs nobody wrote by hand.

_FUZZ_DIALECTS = ("slt", "postgres", "duckdb", "mysql")
_FUZZ_HOSTS = ("sqlite", "postgres", "duckdb", "mysql")

_EDGE_STRINGS = (
    "",
    "NULL",
    "0",
    "-0.0",
    "héllo wörld",
    "函数测试",
    "🦆 ♫ 𝄞",
    "tab\tnewline\nquote'and\"both",
    "\x01\x02 control bytes",
    "a" * 200,
)

_EDGE_FLOATS = (
    0.0,
    -0.0,
    1.5,
    -1e300,
    1e-300,
    5e-324,            # smallest subnormal
    2.0**53 + 2,       # beyond exact-int float territory
    float("inf"),
    float("-inf"),
    float("nan"),
)


def _fuzz_string(rng: random.Random) -> str:
    return rng.choice(_EDGE_STRINGS) + str(rng.randint(0, 9))


def _fuzz_value(rng: random.Random, depth: int = 0):
    roll = rng.random()
    if roll < 0.15:
        return None
    if roll < 0.25:
        return rng.random() < 0.5
    if roll < 0.45:
        return rng.randint(-(2**63), 2**63)
    if roll < 0.60:
        return rng.choice(_EDGE_FLOATS) if rng.random() < 0.5 else rng.uniform(-1e6, 1e6)
    if roll < 0.85 or depth >= 2:
        return _fuzz_string(rng)
    if roll < 0.93:
        return [_fuzz_value(rng, depth + 1) for _ in range(rng.randint(0, 3))]
    return {_fuzz_string(rng): _fuzz_value(rng, depth + 1) for _ in range(rng.randint(0, 3))}


def _fuzz_file(rng: random.Random, index: int = 0):
    """One random (TestFile, FileResult) pair, records attached in order."""
    suite_name = rng.choice(_FUZZ_DIALECTS)
    host = rng.choice(_FUZZ_HOSTS)
    test_file = TestFile(path=f"fuzz_{index}.test", suite=suite_name)
    file_result = FileResult(path=test_file.path, suite=suite_name, host=host)
    for _ in range(rng.randint(1, 10)):
        sql = "SELECT " + _fuzz_string(rng)
        if rng.random() < 0.5:
            record = QueryRecord(sql=sql, type_string=rng.choice(("I", "T", "RT", "ITR")))
        else:
            record = StatementRecord(sql=sql, expect_ok=rng.random() < 0.8)
        test_file.records.append(record)
        if rng.random() < 0.2:
            continue  # a record with no result (e.g. skipped shard tail): exercises index reattachment
        comparison = None
        if rng.random() < 0.5:
            comparison = ComparisonResult(
                matches=rng.random() < 0.5,
                reason=_fuzz_string(rng),
                expected_preview=[_fuzz_string(rng) for _ in range(rng.randint(0, 3))],
                actual_preview=[_fuzz_string(rng) for _ in range(rng.randint(0, 3))],
                mismatch_kind=rng.choice(("", "row_count", "value", "hash", "format")),
            )
        execution = None
        if rng.random() < 0.7:
            columns = [f"c{column}" for column in range(rng.randint(0, 3))]
            rows = [[_fuzz_value(rng) for _ in columns] for _ in range(rng.randint(0, 4))]
            execution = ExecutionOutcome(
                status=rng.choice(list(ExecutionStatus)),
                columns=columns,
                rows=rows,
                rendered=[[str(value) for value in row] for row in rows],
                error=_fuzz_string(rng),
                error_type=rng.choice(("", "OperationalError", "EngineCrash")),
                statement=sql,
            )
        file_result.results.append(
            RecordResult(
                record=record,
                outcome=rng.choice(list(RecordOutcome)),
                reason=_fuzz_string(rng),
                error=_fuzz_string(rng),
                error_type=rng.choice(("", "Timeout", "SQLSyntaxError")),
                comparison=comparison,
                execution=execution,
            )
        )
    return test_file, file_result


# -- vectorized vs scalar executor -----------------------------------------------
#
# Seeded fuzzing of the columnar executor (repro.engine.columnar): random
# SELECTs — filters, DISTINCT, multi-key ORDER BY, aggregation, LIMIT — over
# tables seeded with NULL, ±inf, nan, signed zero, 64-bit integers, and
# unicode text.  Each seed's statement list executes once per engine mode and
# the captures must agree byte-for-byte under the canonical serialization
# (floats render as exact hex, so nan vs nan and -0.0 vs 0.0 compare
# strictly), with identical error types/messages and an identical
# feature-coverage set.  This is the per-statement complement to the
# campaign-level vectorized==scalar variants in test_differential.py.

_VEC_WORDS = ("alpha", "bràvo", "charlie", "号delta", "echo🦆", "fox trot", "", "NULL")
_VEC_OPS = ("=", "<>", "<", "<=", ">", ">=")


def _vec_fuzz_statements(rng: random.Random) -> list[str]:
    """One seeded workload: schema setup plus random SELECTs over it."""

    def int_value() -> str:
        roll = rng.random()
        if roll < 0.15:
            return "NULL"
        if roll < 0.25:
            return str(rng.randint(-(2**63), 2**63))
        return str(rng.randint(-5, 15))

    def text_value() -> str:
        if rng.random() < 0.15:
            return "NULL"
        return "'" + rng.choice(_VEC_WORDS) + str(rng.randint(0, 9)) + "'"

    def real_value() -> str:
        roll = rng.random()
        if roll < 0.12:
            return "NULL"
        if roll < 0.28:
            # 1e400 overflows to inf; inf - inf materialises a genuine nan
            return rng.choice(("1e400", "-1e400", "1e400 - 1e400", "-0.0", "5e-324"))
        return f"{rng.uniform(-50, 50):.3f}"

    def predicate(depth: int = 0) -> str:
        roll = rng.random() if depth < 2 else rng.random() * 0.85
        if roll < 0.22:
            return f"a {rng.choice(_VEC_OPS)} {rng.randint(-5, 15)}"
        if roll < 0.38:
            return f"t {rng.choice(_VEC_OPS)} '{rng.choice(_VEC_WORDS)}{rng.randint(0, 9)}'"
        if roll < 0.50:
            return f"r {rng.choice(_VEC_OPS)} {rng.choice(('0.0', '1e400', '2.5', '-0.0'))}"
        if roll < 0.62:
            negated = "" if rng.random() < 0.7 else "NOT "
            pattern = rng.choice(("al%", "%o", "%a%", "c_a%", "%🦆%", "fox%"))
            return f"t {negated}LIKE '{pattern}'"
        if roll < 0.74:
            negated = "" if rng.random() < 0.5 else "NOT "
            return f"{rng.choice('abtr')} IS {negated}NULL"
        if roll < 0.85:
            connector = rng.choice((" AND ", " OR "))
            return f"({predicate(depth + 1)}){connector}({predicate(depth + 1)})"
        return rng.choice(("a", "b"))  # bare-column truthiness predicate

    def select() -> str:
        if rng.random() < 0.25:
            if rng.random() < 0.5:
                sql = "SELECT b, count(*), sum(a), min(r), max(t) FROM fz GROUP BY b"
            else:
                sql = "SELECT count(*), sum(a), min(r), max(r) FROM fz"
            if rng.random() < 0.5:
                sql += f" WHERE {predicate()}"
            if "GROUP BY" in sql:
                sql += " ORDER BY 1"
            return sql
        items = rng.sample(("a", "b", "t", "r", "a + b", "b * 2"), k=rng.randint(1, 3))
        distinct = "DISTINCT " if rng.random() < 0.3 else ""
        sql = f"SELECT {distinct}{', '.join(items)} FROM fz"
        if rng.random() < 0.7:
            sql += f" WHERE {predicate()}"
        if rng.random() < 0.6:
            keys = ", ".join(
                f"{rng.randint(1, len(items))} {rng.choice(('ASC', 'DESC'))}"
                for _ in range(rng.randint(1, 2))
            )
            sql += f" ORDER BY {keys}"
        if rng.random() < 0.25:
            sql += f" LIMIT {rng.randint(0, 6)}"
        return sql

    statements = ["CREATE TABLE fz(a INTEGER, b INTEGER, t VARCHAR(30), r REAL)"]
    for _ in range(rng.randint(1, 3)):
        rows = ", ".join(
            f"({int_value()}, {int_value()}, {text_value()}, {real_value()})"
            for _ in range(rng.randint(1, 8))
        )
        statements.append(f"INSERT INTO fz VALUES {rows}")
    for _ in range(rng.randint(6, 16)):
        statements.append(select())
        if rng.random() < 0.08:
            # deliberately broken statements: both modes must raise the same
            # error type with the same message, at the same position
            statements.append(
                rng.choice(
                    (
                        "SELECT zz FROM fz",
                        "SELECT a FROM nowhere",
                        "SELECT a FROM fz ORDER BY 9",
                        f"SELECT a FROM fz WHERE zz > {rng.randint(0, 9)}",
                    )
                )
            )
        if rng.random() < 0.1:
            statements.append(f"DELETE FROM fz WHERE {predicate()}")
    return statements


def _vec_run_workload(statements: list[str], dialect: str):
    """Execute the workload on a fresh session, capturing results and errors."""
    session = Session(dialect, enable_faults=False)
    captures = []
    for sql in statements:
        try:
            result = session.execute(sql)
            captures.append([sql, result.columns, result.rows])
        except Exception as error:  # noqa: BLE001 - error parity is the point
            captures.append([sql, type(error).__name__, str(error)])
    return captures, sorted(session.features)


class TestVectorizedScalarEquivalence:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_fuzzed_selects_byte_identical_across_engine_modes(self, seed):
        rng = random.Random(seed)
        dialect = rng.choice(_FUZZ_HOSTS)
        statements = _vec_fuzz_statements(rng)
        with vectorize.vectorize_enabled_scope():
            columnar_captures, columnar_features = _vec_run_workload(statements, dialect)
        with vectorize.vectorize_disabled():
            scalar_captures, scalar_features = _vec_run_workload(statements, dialect)
        assert canonical_bytes(columnar_captures) == canonical_bytes(scalar_captures)
        assert columnar_features == scalar_features


class TestCodecProperties:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_file_result_roundtrip_on_random_suites(self, seed):
        rng = random.Random(seed)
        test_file, file_result = _fuzz_file(rng)
        blob = encode_file_result(file_result, test_file)
        decoded = decode_file_result(blob, test_file, verify=True)
        assert canonical_bytes(decoded) == canonical_bytes(file_result)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_suite_result_roundtrip_on_random_suites(self, seed):
        rng = random.Random(seed)
        suite_name = rng.choice(_FUZZ_DIALECTS)
        suite = TestSuite(name=suite_name)
        result = SuiteResult(suite=suite_name, host=rng.choice(_FUZZ_HOSTS))
        for index in range(rng.randint(1, 4)):
            test_file, file_result = _fuzz_file(rng, index)
            suite.files.append(test_file)
            result.files.append(file_result)
        blob = encode_suite_result(result, suite)
        decoded = decode_suite_result(blob, suite, verify=True)
        assert canonical_bytes(decoded) == canonical_bytes(result)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_any_single_byte_corruption_reads_as_codec_error(self, seed):
        """Every frame byte is covered by magic/version checks or the payload
        digest: flipping any one of them must surface as a miss, never as
        plausible results (the invariant incremental assembly's corrupted-blob
        fallback relies on)."""
        import pytest

        rng = random.Random(seed)
        test_file, file_result = _fuzz_file(rng)
        blob = bytearray(encode_file_result(file_result, test_file))
        blob[rng.randrange(len(blob))] ^= 0xFF
        with pytest.raises(CodecError):
            decode_file_result(bytes(blob), test_file, verify=True)
