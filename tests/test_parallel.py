"""Tests for sharded suite execution (repro.core.parallel).

The satellite requirement: ``workers=1`` and ``workers=4`` must produce
byte-identical results — canonical serialization, not just matching
aggregates — on an SLT→duckdb and a postgres→mysql transplant.  The
comparison itself is the shared differential harness
(:func:`test_differential.assert_equivalent`); this file covers the
shard/merge machinery, fallbacks, and worker bookkeeping around it.
"""

from __future__ import annotations

import errno

import pytest

from test_differential import assert_equivalent

from repro.adapters.base import DBMSAdapter, ExecutionOutcome, ExecutionStatus
from repro.core.parallel import (
    RunnerSpec,
    WorkerPool,
    _is_pool_infra_error,
    run_suite_sharded,
    runner_spec_for,
)
from repro.core.runner import TestRunner
from repro.core.transplant import run_matrix, run_transplant
from repro.corpus import build_suite
from repro.perf import cache as perf_cache


@pytest.fixture(autouse=True)
def _fresh_caches():
    perf_cache.clear_caches()
    yield
    perf_cache.clear_caches()


class TestShardedParity:
    # store=None throughout: a persisted matrix cell would serve the second
    # run wholesale and the shard/merge machinery under test would never run

    @pytest.mark.parametrize("executor", ["thread", "process", "auto"])
    def test_slt_on_duckdb_workers_4_matches_serial(self, executor):
        suite = build_suite("slt", file_count=4, records_per_file=30, seed=11)
        with perf_cache.caching_disabled():
            serial = run_transplant(suite, "duckdb", store=None)
        assert_equivalent(
            {
                "serial-uncached": serial,
                "workers-4": lambda: run_transplant(suite, "duckdb", workers=4, executor=executor, store=None),
            }
        )

    def test_postgres_suite_on_mysql_with_translation(self):
        suite = build_suite("postgres", file_count=4, records_per_file=30, seed=5)
        with perf_cache.caching_disabled():
            serial = run_transplant(suite, "mysql", translate_dialect=True, store=None)
        assert_equivalent(
            {
                "serial-uncached": serial,
                "workers-4": lambda: run_transplant(suite, "mysql", translate_dialect=True, workers=4, store=None),
            }
        )

    def test_per_file_ordering_is_preserved(self):
        suite = build_suite("slt", file_count=5, records_per_file=20, seed=3)
        parallel = run_transplant(suite, "duckdb", workers=3, executor="thread", store=None)
        assert [f.path for f in parallel.result.files] == [tf.path for tf in suite.files]

    def test_more_workers_than_files(self):
        suite = build_suite("slt", file_count=2, records_per_file=15, seed=9)
        assert_equivalent(
            {
                "serial": lambda: run_transplant(suite, "duckdb", store=None),
                "workers-8": lambda: run_transplant(suite, "duckdb", workers=8, executor="thread", store=None),
            }
        )


class TestShardedRunReport:
    def test_workers_1_runs_serially(self):
        suite = build_suite("slt", file_count=2, records_per_file=10, seed=1)
        spec = RunnerSpec(adapter_name="duckdb", host_name="duckdb", donor_dialect="slt")
        report = run_suite_sharded(suite, spec, workers=1)
        assert report.executor == "serial"
        assert report.workers == 1
        assert report.result.total_cases == suite.total_records - sum(
            len(tf.control_records()) for tf in suite.files
        )

    def test_thread_pool_reports_cache_stats(self):
        suite = build_suite("slt", file_count=3, records_per_file=15, seed=2)
        spec = RunnerSpec(adapter_name="duckdb", host_name="duckdb", donor_dialect="slt")
        report = run_suite_sharded(suite, spec, workers=3, executor="thread")
        assert report.executor == "thread"
        assert "plan" in report.cache_stats
        assert report.cache_stats["plan"]["misses"] > 0

    def test_process_pool_worker_stats_are_absorbed_by_parent(self):
        suite = build_suite("slt", file_count=3, records_per_file=15, seed=2)
        spec = RunnerSpec(adapter_name="duckdb", host_name="duckdb", donor_dialect="slt")
        report = run_suite_sharded(suite, spec, workers=3, executor="process")
        parent = perf_cache.cache_stats()
        if report.executor == "process":
            # worker-side cache activity must be visible in the parent's stats
            assert parent["plan"]["hits"] + parent["plan"]["misses"] > 0
        else:  # pool bootstrap degraded (sandboxed env): thread stats are global anyway
            assert parent["plan"]["misses"] > 0


class _UnforkableAdapter(DBMSAdapter):
    """An adapter the registry cannot rebuild (fork_config -> None)."""

    name = "unforkable"

    def __init__(self):
        from repro.dialects import ALL_DIALECTS

        self.dialect = ALL_DIALECTS["sqlite"]

    def fork_config(self):
        return None

    def connect(self) -> None:
        pass

    def reset(self) -> None:
        pass

    def close(self) -> None:
        pass

    def execute(self, sql: str) -> ExecutionOutcome:
        return ExecutionOutcome(status=ExecutionStatus.OK, statement=sql)


class TestFallbacks:
    def test_unforkable_adapter_falls_back_to_serial(self):
        suite = build_suite("slt", file_count=2, records_per_file=10, seed=4)
        runner = TestRunner(_UnforkableAdapter(), host_name="sqlite")
        assert runner_spec_for(runner) is None
        result = runner.run_suite(suite, workers=4)
        assert len(result.files) == len(suite.files)

    def test_unregistered_adapter_name_falls_back_to_serial(self):
        class Named(_UnforkableAdapter):
            def fork_config(self):
                return ("no-such-adapter", {})

        runner = TestRunner(Named(), host_name="sqlite")
        assert runner_spec_for(runner) is None


class TestMatrixDonorReuse:
    def test_translated_matrix_reuses_donor_entries_when_cached(self):
        suite = build_suite("slt", file_count=2, records_per_file=15, seed=6)
        suites = {"slt": suite}
        plain = run_matrix(suites, hosts=("sqlite", "duckdb"))
        translated = run_matrix(
            suites, hosts=("sqlite", "duckdb"), translate_dialect=True, reuse_donor_runs_from=plain
        )
        # donor == sqlite for the slt suite: the entry is reused by reference
        assert translated.get("slt", "sqlite") is plain.get("slt", "sqlite")
        assert translated.get("slt", "duckdb") is not plain.get("slt", "duckdb")

    def test_donor_reuse_is_disabled_with_caching_off(self):
        suite = build_suite("slt", file_count=2, records_per_file=15, seed=6)
        suites = {"slt": suite}
        with perf_cache.caching_disabled():
            plain = run_matrix(suites, hosts=("sqlite",))
            translated = run_matrix(suites, hosts=("sqlite",), translate_dialect=True, reuse_donor_runs_from=plain)
            assert translated.get("slt", "sqlite") is not plain.get("slt", "sqlite")
            # and the recomputed donor run is still identical
            assert_equivalent(
                {
                    "plain-donor-run": plain.get("slt", "sqlite").result,
                    "recomputed-donor-run": translated.get("slt", "sqlite").result,
                }
            )


def _raise_eio(value):
    raise OSError(errno.EIO, "user code hit a failing disk")


class TestPoolInfraClassification:
    """Only pool-infrastructure OSErrors may trigger the thread fallback."""

    def test_user_code_oserror_is_reported_not_retried_as_infra(self):
        # a genuine I/O failure raised *by the task* must propagate with its
        # errno intact — and must not degrade the pool, which would silently
        # re-run the failing work on threads
        pool = WorkerPool(2, "process")
        try:
            with pytest.raises(OSError) as excinfo:
                pool.map_tasks(_raise_eio, [(1,), (2,)])
            assert excinfo.value.errno == errno.EIO
            assert pool.flavour == "process"
        finally:
            pool.shutdown()

    def test_errno_whitelist_is_narrow(self):
        # bootstrap breakage in sandboxes: recoverable by degrading
        assert _is_pool_infra_error(OSError(errno.ENOSYS, "sem_open unavailable"))
        assert _is_pool_infra_error(OSError(errno.EPERM, "fork forbidden"))
        # real-world I/O failures: genuine errors, never infra
        assert not _is_pool_infra_error(OSError(errno.EIO, "disk failing"))
        assert not _is_pool_infra_error(OSError(errno.ENOSPC, "disk full"))
        assert not _is_pool_infra_error(OSError("no errno at all"))
