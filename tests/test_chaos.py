"""Chaos tests: the resilience layer under deterministic injected faults.

Every schedule here is seeded from ``REPRO_CHAOS_SEED`` (default 0) so a CI
failure reproduces exactly by exporting the printed seed.  The acceptance
gates of the resilience layer live here:

* recoverable (transient) faults are *invisible*: the campaign retries and the
  result is byte-identical to a fault-free run, serial and sharded alike;
* unrecoverable faults degrade gracefully: the campaign completes with the
  broken adapter quarantined, the affected cells partial, and structured
  ``infra_failures`` describing what happened;
* a wedged adapter is cut off by the watchdog and surfaces as HANG;
* artifact-store I/O errors demote the campaign to storeless mode without
  changing a single result byte;
* ``run_matrix(resume=...)`` re-enters only the degraded cells.

Chaos campaigns use the thread executor: worker *processes* re-import a
pristine registry and would not see the injected chaos factories.
"""

from __future__ import annotations

import logging
import os
import time
from types import SimpleNamespace

import pytest

from test_differential import assert_equivalent

from repro.adapters.pool import AdapterPool, adapter_breaker, pool_key
from repro.core.parallel import close_dead_worker_adapter_pools
from repro.core.resilience import (
    InfraFailure,
    ResiliencePolicy,
    RetryPolicy,
    configured_watchdog_seconds,
    default_policy,
    default_timeout_seconds,
    run_with_deadline,
    set_default_timeout,
)
from repro.core.transplant import run_matrix, run_transplant
from repro.corpus import build_suite
from repro.errors import AdapterQuarantinedError, WatchdogTimeout
from repro.testing.chaos import ChaosError, ChaosStore, FaultSchedule, FaultSpec, inject_adapter

#: export REPRO_CHAOS_SEED=<n> to replay a CI failure exactly
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

#: near-zero backoff so retry schedules don't slow the test suite down
FAST_RETRY = RetryPolicy(attempts=3, base_delay=0.001, max_delay=0.002, jitter=0.0, seed=CHAOS_SEED)
FAST_POLICY = ResiliencePolicy(retry=FAST_RETRY, quarantine_after=3)


@pytest.fixture(autouse=True)
def _resilience_hygiene():
    """Chaos must never leak into (or inherit from) neighbouring tests."""
    adapter_breaker().reset()
    set_default_timeout(None)
    yield
    adapter_breaker().reset()
    set_default_timeout(None)
    close_dead_worker_adapter_pools()


@pytest.fixture(scope="module")
def slt_suite():
    return build_suite("slt", file_count=4, records_per_file=20, seed=23, store=None)


@pytest.fixture(scope="module")
def postgres_suite():
    return build_suite("postgres", file_count=3, records_per_file=15, seed=23, store=None)


class TestRecoverableFaults:
    """Transient faults retry to byte-identical results (the equivalence gate)."""

    def test_transient_execute_fault_is_invisible_serial_and_sharded(self, slt_suite):
        def chaos_run(**kwargs):
            schedule = FaultSchedule([FaultSpec(op="execute", at=7)], seed=CHAOS_SEED)

            def invoke():
                with inject_adapter("duckdb", schedule):
                    result = run_transplant(slt_suite, "duckdb", store=None, resilience=FAST_POLICY, **kwargs)
                assert schedule.injected, "the scheduled fault never fired"
                assert not result.infra_failures, "a recovered fault must leave no failure record"
                return result

            return invoke

        assert_equivalent(
            {
                "fault-free-serial": lambda: run_transplant(slt_suite, "duckdb", store=None),
                "chaos-serial": chaos_run(),
                "chaos-workers-4": chaos_run(workers=4, executor="thread"),
            }
        )

    def test_transient_setup_fault_is_invisible(self, slt_suite):
        schedule = FaultSchedule([FaultSpec(op="setup", at=1)], seed=CHAOS_SEED)

        def chaos():
            with inject_adapter("duckdb", schedule):
                return run_transplant(slt_suite, "duckdb", store=None, resilience=FAST_POLICY)

        results = assert_equivalent(
            {
                "fault-free": lambda: run_transplant(slt_suite, "duckdb", store=None),
                "chaos-setup": chaos,
            }
        )
        assert schedule.injected
        assert not results["chaos-setup"].infra_failures


class TestUnrecoverableFaults:
    """Permanent breakage quarantines the adapter and degrades the campaign."""

    def test_permanently_broken_adapter_completes_with_partial_results(self, slt_suite, postgres_suite):
        suites = {"slt": slt_suite, "postgres": postgres_suite}
        schedule = FaultSchedule([FaultSpec(op="execute", at=1, every=True)], seed=CHAOS_SEED)
        # attempts < quarantine_after so the first broken cell exhausts its
        # retries and the second trips the breaker
        policy = ResiliencePolicy(
            retry=RetryPolicy(attempts=2, base_delay=0.001, max_delay=0.002, jitter=0.0, seed=CHAOS_SEED),
            quarantine_after=3,
        )
        with inject_adapter("duckdb", schedule):
            matrix = run_matrix(suites, hosts=("duckdb", "mysql"), store=None, resilience=policy)

        # the campaign finished: every cell is present
        assert set(matrix.entries) == {(s, h) for s in suites for h in ("duckdb", "mysql")}
        assert not matrix.is_complete()
        assert matrix.incomplete_cells() == [("postgres", "duckdb"), ("slt", "duckdb")]
        kinds = {failure.kind for failure in matrix.infra_failures()}
        assert kinds == {"retry-exhausted", "adapter-quarantined"}
        assert all(failure.host == "duckdb" for failure in matrix.infra_failures())
        assert adapter_breaker().is_quarantined(pool_key("duckdb", {}))

        # degraded cells are partial, not missing: every record reports SKIP
        degraded = matrix.get("slt", "duckdb")
        assert degraded.result.total_cases > 0
        assert degraded.result.skipped_cases == degraded.result.total_cases
        # healthy hosts are untouched
        clean = matrix.get("slt", "mysql")
        assert clean.is_complete and clean.result.total_cases > 0

    def test_quarantined_acquire_raises(self):
        breaker = adapter_breaker()
        key = pool_key("duckdb", {})
        for _ in range(3):
            breaker.record_failure(key, detail="chaos")
        pool = AdapterPool()
        with pytest.raises(AdapterQuarantinedError):
            pool.acquire("duckdb")

    def test_non_transient_errors_propagate_immediately(self, slt_suite):
        class _Bug(RuntimeError):
            pass

        schedule = FaultSchedule([FaultSpec(op="execute", at=1)], seed=CHAOS_SEED)

        def raise_bug(op):
            fault = schedule.tick(op)
            if fault is not None:
                raise _Bug("programming error, not infrastructure")

        with inject_adapter("duckdb", schedule):
            from repro.adapters.registry import create_adapter

            adapter = create_adapter("duckdb")
            adapter._maybe_fault = raise_bug  # make the injected fault non-transient
            with pytest.raises(_Bug):
                run_transplant(slt_suite, "duckdb", adapter=adapter, store=None, resilience=FAST_POLICY)


class TestWatchdog:
    """A wedged adapter becomes a HANG outcome, not a stuck campaign."""

    def test_serial_wedge_cut_off_as_hang(self, slt_suite):
        schedule = FaultSchedule([FaultSpec(op="execute", at=3, kind="hang", seconds=2.0)], seed=CHAOS_SEED)
        policy = ResiliencePolicy(retry=FAST_RETRY, watchdog_seconds=0.1)
        started = time.monotonic()
        with inject_adapter("duckdb", schedule):
            result = run_transplant(slt_suite, "duckdb", store=None, resilience=policy)
        assert time.monotonic() - started < 2.0, "the watchdog must not wait out the wedge"
        assert [failure.kind for failure in result.infra_failures] == ["watchdog-timeout"]
        assert result.result.hang_cases >= 1
        assert result.hangs, "the watchdog HANG must surface as a fault report"

    def test_sharded_wedge_degrades_one_file(self, slt_suite):
        schedule = FaultSchedule([FaultSpec(op="execute", at=5, kind="hang", seconds=2.0)], seed=CHAOS_SEED)
        policy = ResiliencePolicy(retry=FAST_RETRY, watchdog_seconds=0.2)
        with inject_adapter("duckdb", schedule):
            result = run_transplant(
                slt_suite, "duckdb", store=None, workers=4, executor="thread", resilience=policy
            )
        kinds = [failure.kind for failure in result.infra_failures]
        assert kinds == ["watchdog-timeout"]
        assert result.infra_failures[0].path, "sharded watchdog failures are per-file"
        assert result.result.hang_cases >= 1
        # the other files of the suite still executed normally
        assert result.result.passed_cases > 0


class TestResume:
    """``run_matrix(resume=...)`` re-enters only the degraded cells."""

    def test_resume_executes_only_gaps(self, slt_suite):
        suites = {"slt": slt_suite}
        schedule = FaultSchedule([FaultSpec(op="execute", at=1, every=True)], seed=CHAOS_SEED)
        with inject_adapter("duckdb", schedule):
            degraded = run_matrix(suites, hosts=("duckdb", "mysql"), store=None, resilience=FAST_POLICY)
        assert degraded.incomplete_cells() == [("slt", "duckdb")]

        adapter_breaker().reset()  # operator fixed the infrastructure
        pool = AdapterPool()
        resumed = run_matrix(
            suites, hosts=("duckdb", "mysql"), store=None, adapter_pool=pool, resume=degraded, resilience=FAST_POLICY
        )
        assert resumed.is_complete()
        # the clean cell was carried over by reference, not re-executed
        assert resumed.get("slt", "mysql") is degraded.get("slt", "mysql")
        assert pool.stats()["created"] == 1, "resume must build an adapter only for the gap"
        # and the re-entered cell matches a fresh fault-free run exactly
        assert_equivalent(
            {
                "resumed-cell": resumed.get("slt", "duckdb"),
                "fault-free": lambda: run_transplant(slt_suite, "duckdb", store=None),
            }
        )


class TestStoreDegradation:
    """I/O errors demote the store to storeless mode without changing results."""

    def test_io_errors_degrade_store_but_not_results(self, slt_suite, tmp_path, caplog):
        schedule = FaultSchedule(
            [FaultSpec(op="read", at=1, every=True), FaultSpec(op="write", at=1, every=True)],
            seed=CHAOS_SEED,
        )
        store = ChaosStore(root=tmp_path / "store", fingerprint="chaos-fp", schedule=schedule)
        with caplog.at_level(logging.WARNING, logger="repro.store.artifacts"):
            results = assert_equivalent(
                {
                    "storeless": lambda: run_transplant(slt_suite, "duckdb", store=None),
                    "eio-store": lambda: run_transplant(slt_suite, "duckdb", store=store, resilience=FAST_POLICY),
                }
            )
        assert store.degraded
        snapshot = store.snapshot()
        assert snapshot["degraded"] is True
        assert snapshot["io_errors"] >= store.degrade_after
        warnings = [record for record in caplog.records if "degraded to storeless mode" in record.getMessage()]
        assert len(warnings) == 1, "degradation must be announced exactly once"
        assert not results["eio-store"].infra_failures

    def test_degraded_store_stops_touching_the_filesystem(self, tmp_path):
        schedule = FaultSchedule([FaultSpec(op="write", at=1, every=True)], seed=CHAOS_SEED)
        store = ChaosStore(root=tmp_path / "store", fingerprint="chaos-fp", schedule=schedule, degrade_after=2)
        assert store.save("ns", {"k": 1}, "value") is False
        assert store.save("ns", {"k": 2}, "value") is False
        assert store.degraded
        writes_before = schedule.calls("write")
        assert store.save("ns", {"k": 3}, "value") is False
        assert store.load("ns", {"k": 1}, default="fallback") == "fallback"
        assert schedule.calls("write") == writes_before, "a degraded store must not reach the I/O layer"


class TestChaosHarness:
    """The harness itself: determinism and injection mechanics."""

    def test_schedule_is_deterministic(self):
        def fire(schedule):
            fired = []
            for call in range(6):
                fault = schedule.tick("execute")
                fired.append(None if fault is None else fault.kind)
            return fired

        faults = [FaultSpec(op="execute", at=2), FaultSpec(op="execute", at=5, kind="hang")]
        assert fire(FaultSchedule(faults, seed=CHAOS_SEED)) == fire(FaultSchedule(faults, seed=CHAOS_SEED))

    def test_injection_restores_registry(self):
        from repro.adapters.registry import create_adapter, get_adapter_entry

        original = get_adapter_entry("duckdb").factory
        with inject_adapter("duckdb", FaultSchedule([], seed=CHAOS_SEED)):
            from repro.testing.chaos import ChaosAdapter

            assert isinstance(create_adapter("duckdb"), ChaosAdapter)
            # aliases retarget with the canonical name
            assert get_adapter_entry("duckdb").factory is not original
        assert get_adapter_entry("duckdb").factory is original

    def test_chaos_error_is_transient(self):
        from repro.core.resilience import is_transient_error

        assert is_transient_error(ChaosError(5, "boom"))
        assert not is_transient_error(TypeError("bug"))


class TestTimeoutConfiguration:
    """REPRO_TIMEOUT_SECONDS / set_default_timeout / --timeout, end to end."""

    def test_env_var_feeds_adapter_and_watchdog(self, monkeypatch):
        from repro.adapters.sqlite_adapter import SQLite3Adapter

        monkeypatch.setenv("REPRO_TIMEOUT_SECONDS", "1.25")
        assert default_timeout_seconds() == 1.25
        assert configured_watchdog_seconds() == 1.25
        assert SQLite3Adapter().timeout_seconds == 1.25
        assert default_policy().watchdog_seconds == 1.25

    def test_override_beats_env(self, monkeypatch):
        from repro.adapters.sqlite_adapter import SQLite3Adapter

        monkeypatch.setenv("REPRO_TIMEOUT_SECONDS", "1.25")
        set_default_timeout(0.5)
        assert default_timeout_seconds() == 0.5
        assert SQLite3Adapter().timeout_seconds == 0.5
        assert default_policy().watchdog_seconds == 0.5

    def test_unconfigured_watchdog_stays_disarmed(self, monkeypatch):
        monkeypatch.delenv("REPRO_TIMEOUT_SECONDS", raising=False)
        assert default_timeout_seconds() == 5.0
        assert configured_watchdog_seconds() is None
        assert default_policy().watchdog_seconds is None

    def test_run_with_deadline_contract(self):
        assert run_with_deadline(lambda: 42, 1.0) == 42
        with pytest.raises(WatchdogTimeout):
            run_with_deadline(lambda: time.sleep(0.5), 0.05)

        def _bug():
            raise ValueError("propagates unchanged")

        with pytest.raises(ValueError):
            run_with_deadline(_bug, 1.0)


class TestCliExitCodes:
    """Exit 2 = campaign finished with partial results; distinct from 0 and 1."""

    def _fake_cli(self, monkeypatch, failures):
        import repro.experiments.__main__ as cli

        created = {}

        class _FakeContext:
            def __init__(self, **kwargs):
                created.update(kwargs)

            def __enter__(self):
                return self

            def __exit__(self, *exc_info):
                return None

            def infra_failures(self):
                return failures

        monkeypatch.setattr(cli, "ExperimentContext", _FakeContext)
        monkeypatch.setattr(cli, "run_batch", lambda selected, context: [SimpleNamespace(text="ok")])
        monkeypatch.setattr(cli, "stream_experiments", lambda selected, context: iter([SimpleNamespace(text="ok")]))
        return cli, created

    def test_clean_campaign_exits_zero(self, monkeypatch, capsys):
        cli, _ = self._fake_cli(monkeypatch, [])
        assert cli.main(["table4"]) == 0

    def test_degraded_campaign_exits_two(self, monkeypatch, capsys):
        failure = InfraFailure(kind="adapter-quarantined", suite="slt", host="duckdb", detail="chaos", attempts=3)
        cli, _ = self._fake_cli(monkeypatch, [failure])
        assert cli.main(["table4"]) == 2
        stderr = capsys.readouterr().err
        assert "adapter-quarantined" in stderr and "slt->duckdb" in stderr

    def test_timeout_flag_reaches_context(self, monkeypatch, capsys):
        cli, created = self._fake_cli(monkeypatch, [])
        assert cli.main(["table4", "--timeout", "2.5"]) == 0
        assert created["timeout_seconds"] == 2.5

    def test_timeout_flag_must_be_positive(self, monkeypatch, capsys):
        cli, _ = self._fake_cli(monkeypatch, [])
        with pytest.raises(SystemExit):
            cli.main(["table4", "--timeout", "0"])
