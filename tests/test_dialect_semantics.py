"""The cross-dialect semantic differences the paper's RQ4 hinges on."""

import pytest

from repro.engine.session import Session
from repro.errors import (
    DatabaseError,
    EngineCrash,
    EngineHang,
    UnsupportedFunctionError,
    UnsupportedOperatorError,
    UnsupportedTypeError,
)


class TestDivisionSemantics:
    def test_integer_division_on_sqlite_and_postgres(self):
        for dialect in ("sqlite", "postgres"):
            assert Session(dialect).execute("SELECT 62 / -2").rows == [[-31]]

    def test_decimal_division_on_duckdb_and_mysql(self):
        for dialect in ("duckdb", "mysql"):
            result = Session(dialect).execute("SELECT 62 / -2").rows[0][0]
            assert result == -31.0
            assert isinstance(result, float)

    def test_div_operator_only_where_supported(self):
        assert Session("mysql").execute("SELECT 62 DIV -2").rows == [[-31]]
        assert Session("duckdb").execute("SELECT 7 DIV 2").rows == [[3]]
        with pytest.raises(UnsupportedOperatorError):
            Session("postgres").execute("SELECT 62 DIV 2")

    def test_division_by_zero(self):
        assert Session("sqlite").execute("SELECT 1 / 0").rows == [[None]]
        with pytest.raises(DatabaseError):
            Session("postgres").execute("SELECT 1 / 0")


class TestCoalesceTyping:
    def test_sqlite_returns_integer(self):
        assert Session("sqlite").execute("SELECT COALESCE(1, 1.0)").rows == [[1]]

    def test_other_dialects_promote_to_float(self):
        for dialect in ("postgres", "duckdb", "mysql"):
            value = Session(dialect).execute("SELECT COALESCE(1, 1.0)").rows[0][0]
            assert value == 1.0 and isinstance(value, float)

    def test_all_integers_stay_integer(self):
        for dialect in ("sqlite", "postgres", "duckdb", "mysql"):
            value = Session(dialect).execute("SELECT COALESCE(1, 1)").rows[0][0]
            assert value == 1 and isinstance(value, int)


class TestOperatorAvailability:
    def test_string_plus_integer(self):
        assert Session("sqlite").execute("SELECT '1' + 1").rows == [[2]]
        with pytest.raises(UnsupportedOperatorError):
            Session("postgres").execute("SELECT '1' + 1")

    def test_double_colon_cast(self):
        assert Session("postgres").execute("SELECT 1::TEXT").rows == [["1"]]
        assert Session("duckdb").execute("SELECT '12'::INTEGER").rows == [[12]]
        with pytest.raises(UnsupportedOperatorError):
            Session("sqlite").execute("SELECT 1::TEXT")
        with pytest.raises(UnsupportedOperatorError):
            Session("mysql").execute("SELECT 1::TEXT")

    def test_pipes_concat_vs_logical_or(self):
        assert Session("sqlite").execute("SELECT 'a' || 'b'").rows == [["ab"]]
        assert Session("postgres").execute("SELECT 'a' || 'b'").rows == [["ab"]]
        # MySQL's default interprets || as logical OR
        assert Session("mysql").execute("SELECT 1 || 0").rows == [[True]]

    def test_row_value_comparison_with_null(self):
        # Listing 17: DuckDB deliberately returns TRUE, others NULL
        assert Session("duckdb").execute("SELECT (NULL, 0) > (0, 0)").rows == [[True]]
        assert Session("postgres").execute("SELECT (NULL, 0) > (0, 0)").rows == [[None]]
        assert Session("sqlite").execute("SELECT (NULL, 0) > (0, 0)").rows == [[None]]


class TestFunctionAvailability:
    def test_pg_typeof(self):
        assert Session("postgres").execute("SELECT pg_typeof(1)").rows == [["integer"]]
        assert Session("duckdb").execute("SELECT pg_typeof(1)").rows == [["integer"]]
        with pytest.raises(UnsupportedFunctionError):
            Session("mysql").execute("SELECT pg_typeof(1)")
        with pytest.raises(UnsupportedFunctionError):
            Session("sqlite").execute("SELECT pg_typeof(1)")

    def test_range_is_duckdb_only(self):
        assert Session("duckdb").execute("SELECT range(3)").rows == [[[0, 1, 2]]]
        for dialect in ("postgres", "sqlite", "mysql"):
            with pytest.raises(UnsupportedFunctionError):
                Session(dialect).execute("SELECT range(3)")

    def test_has_column_privilege_listing18(self):
        # DuckDB returns TRUE even for invalid arguments; PostgreSQL errors.
        assert Session("duckdb").execute("SELECT has_column_privilege(1, 1, 1)").rows == [[True]]
        with pytest.raises(UnsupportedFunctionError):
            Session("postgres").execute("SELECT has_column_privilege(1, 1, 1)")

    def test_generate_series_table_function(self):
        assert Session("postgres").execute("SELECT count(*) FROM generate_series(1, 10)").rows == [[10]]
        assert Session("sqlite").execute("SELECT count(*) FROM generate_series(1, 10)").rows == [[10]]


class TestTypeStrictness:
    def test_varchar_requires_length_on_mysql(self):
        with pytest.raises(UnsupportedTypeError):
            Session("mysql").execute("CREATE TABLE t(s VARCHAR)")
        Session("postgres").execute("CREATE TABLE t(s VARCHAR)")

    def test_dialect_specific_types(self):
        Session("duckdb").execute("CREATE TABLE t(h HUGEINT)")
        with pytest.raises(UnsupportedTypeError):
            Session("postgres").execute("CREATE TABLE t(h HUGEINT)")
        Session("postgres").execute("CREATE TABLE j(v JSONB)")
        with pytest.raises(UnsupportedTypeError):
            Session("mysql").execute("CREATE TABLE j(v JSONB)")

    def test_sqlite_dynamic_typing_accepts_anything(self):
        s = Session("sqlite")
        s.execute("CREATE TABLE t(a INTEGER)")
        s.execute("INSERT INTO t VALUES ('not a number')")
        assert s.execute("SELECT a FROM t").rows == [["not a number"]]

    def test_strict_typing_rejects_bad_values(self):
        s = Session("postgres")
        s.execute("CREATE TABLE t(a INTEGER)")
        with pytest.raises(Exception):
            s.execute("INSERT INTO t VALUES ('not a number')")


class TestKnownBugSignatures:
    def test_alter_schema_rename_crashes_duckdb(self):
        with pytest.raises(EngineCrash):
            Session("duckdb").execute("ALTER SCHEMA a RENAME TO b")
        # PostgreSQL executes the same statement fine (once the schema exists)
        s = Session("postgres")
        s.execute("CREATE SCHEMA a")
        assert s.execute("ALTER SCHEMA a RENAME TO b").status == "ALTER SCHEMA"

    def test_update_after_commit_crashes_duckdb(self):
        s = Session("duckdb")
        s.execute("CREATE TABLE a (b INTEGER)")
        s.execute("BEGIN")
        s.execute("INSERT INTO a VALUES (1)")
        s.execute("UPDATE a SET b = b + 10")
        s.execute("COMMIT")
        with pytest.raises(EngineCrash):
            s.execute("UPDATE a SET b = b + 10")

    def test_connection_is_gone_after_crash(self):
        s = Session("duckdb")
        with pytest.raises(EngineCrash):
            s.execute("ALTER SCHEMA a RENAME TO b")
        with pytest.raises(EngineCrash):
            s.execute("SELECT 1")

    def test_recursive_cte_listing15_hangs_duckdb_errors_postgres(self):
        listing15 = (
            "WITH RECURSIVE x(n) AS (SELECT 1 UNION ALL SELECT n+1 FROM x WHERE n IN (SELECT * FROM x)) SELECT * FROM x"
        )
        with pytest.raises(EngineHang):
            Session("duckdb").execute(listing15)
        with pytest.raises(DatabaseError):
            Session("postgres").execute(listing15)

    def test_recursive_cte_listing14_crashes_mysql_only(self):
        listing14 = (
            "WITH RECURSIVE t(x) AS (SELECT 1 UNION ALL (SELECT x+1 FROM t WHERE x < 4 "
            "UNION SELECT x*2 FROM t WHERE x >= 4 AND x < 8)) SELECT * FROM t ORDER BY x"
        )
        with pytest.raises(EngineCrash):
            Session("mysql").execute(listing14)
        rows = Session("duckdb").execute(listing14).rows
        assert [1] in rows and len(rows) >= 4

    def test_series_overflow_hangs_sqlite(self):
        with pytest.raises(EngineHang):
            Session("sqlite").execute("SELECT count(*) FROM generate_series(9223372036854775807, 9223372036854775807)")

    def test_many_table_join_hangs_mysql_unless_search_depth_zero(self):
        s = Session("mysql")
        s.execute("CREATE TABLE tj(a INTEGER)")
        s.execute("INSERT INTO tj VALUES (1)")
        aliases = ", ".join(f"tj AS a{i}" for i in range(1, 43))
        with pytest.raises(EngineHang):
            s.execute(f"SELECT count(*) FROM {aliases}")
        # after lowering optimizer_search_depth the query runs (the paper's fix)
        s2 = Session("mysql")
        s2.execute("CREATE TABLE tj(a INTEGER)")
        s2.execute("INSERT INTO tj VALUES (1)")
        s2.execute("SET optimizer_search_depth = 0")
        assert s2.execute(f"SELECT count(*) FROM {aliases}").rows == [[1]]

    def test_faults_can_be_disabled(self):
        s = Session("duckdb", enable_faults=False)
        s.execute("CREATE SCHEMA a")
        assert s.execute("ALTER SCHEMA a RENAME TO b").status == "ALTER SCHEMA"
