"""Tests for the statement-level cache layer (repro.perf.cache consumers).

Covers the satellite requirements: translation results must never be served
stale across different (source, target) pairs, fault-injected adapters must
not poison any cache, and the prepared-plan cache must keep dialect semantics
intact while being shared across sessions.
"""

from __future__ import annotations

import pytest

from repro.adapters.minidb_adapter import MiniDBAdapter
from repro.core.runner import FileResult, RecordOutcome, RecordResult
from repro.core.records import QueryRecord, StatementRecord
from repro.dialects import ALL_DIALECTS
from repro.dialects.translator import translate
from repro.engine.session import Session
from repro.errors import EngineCrash, SQLSyntaxError
from repro.perf import cache as perf_cache
from repro.sqlparser.tokenizer import tokenize


@pytest.fixture(autouse=True)
def _fresh_caches():
    perf_cache.clear_caches()
    perf_cache.set_caching(True)
    yield
    perf_cache.clear_caches()
    perf_cache.set_caching(True)


class TestLRUCache:
    def test_put_get_and_stats(self):
        cache = perf_cache.LRUCache("t-basic", maxsize=4, register=False)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = perf_cache.LRUCache("t-evict", maxsize=2, register=False)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh "a"; "b" becomes least recent
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_clear_resets_contents_and_stats(self):
        cache = perf_cache.LRUCache("t-clear", maxsize=2, register=False)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0 and cache.stats.lookups == 0

    def test_caching_disabled_context(self):
        assert perf_cache.caching_enabled()
        with perf_cache.caching_disabled():
            assert not perf_cache.caching_enabled()
            with perf_cache.caching_disabled():
                assert not perf_cache.caching_enabled()
            assert not perf_cache.caching_enabled()
        assert perf_cache.caching_enabled()

    def test_merge_stats(self):
        merged = perf_cache.merge_stats(
            {"plan": {"hits": 3, "misses": 1, "evictions": 0}},
            {"plan": {"hits": 1, "misses": 1, "evictions": 2}, "tokenize": {"hits": 0, "misses": 4, "evictions": 0}},
        )
        assert merged["plan"] == {"hits": 4, "misses": 2, "evictions": 2, "hit_rate": round(4 / 6, 4)}
        assert merged["tokenize"]["hit_rate"] == 0.0


class TestTokenizeCache:
    def test_cached_stream_matches_uncached(self):
        sql = "SELECT a, b FROM t WHERE a < 10 ORDER BY b"
        with perf_cache.caching_disabled():
            uncached = tokenize(sql)
        first = tokenize(sql)
        second = tokenize(sql)
        assert first == uncached == second

    def test_returned_list_is_a_private_copy(self):
        sql = "SELECT 1"
        first = tokenize(sql)
        first.clear()
        assert len(tokenize(sql)) > 0


class TestTranslateCacheCorrectness:
    def test_same_sql_different_pairs_never_stale(self):
        """The satellite requirement: (sql, source, target) is the cache key."""
        sql = "SELECT 'a' || 'b'"
        sqlite, mysql, postgres = ALL_DIALECTS["sqlite"], ALL_DIALECTS["mysql"], ALL_DIALECTS["postgres"]
        to_mysql = translate(sql, sqlite, mysql)
        to_postgres = translate(sql, sqlite, postgres)
        assert "CONCAT" in to_mysql.sql
        assert to_postgres.sql == sql
        # ask again in the opposite order: answers must be identical, not swapped
        assert translate(sql, sqlite, postgres).sql == to_postgres.sql
        assert translate(sql, sqlite, mysql).sql == to_mysql.sql

    def test_direction_is_part_of_the_key(self):
        sql = "SELECT CAST(a AS INTEGER) FROM t WHERE b::text = 'x'"
        postgres, sqlite = ALL_DIALECTS["postgres"], ALL_DIALECTS["sqlite"]
        forward = translate(sql, postgres, sqlite)
        backward = translate(sql, sqlite, postgres)
        assert "CAST(b AS text)" in forward.sql      # sqlite lacks ::
        assert backward.sql == sql                   # postgres keeps ::
        assert translate(sql, postgres, sqlite).sql == forward.sql

    def test_repeat_lookups_hit_the_cache(self):
        sql = "SELECT 1 DIV 2"
        caches = perf_cache.registered_caches()
        before = caches["translate"].stats.hits
        translate(sql, ALL_DIALECTS["mysql"], ALL_DIALECTS["postgres"])
        translate(sql, ALL_DIALECTS["mysql"], ALL_DIALECTS["postgres"])
        assert caches["translate"].stats.hits > before


#: Listing 14: crashes MiniDB's MySQL emulation, runs fine on DuckDB.
LISTING_14 = (
    "WITH RECURSIVE t(x) AS (SELECT 1 UNION ALL (SELECT x+1 FROM t WHERE x < 4 "
    "UNION SELECT x*2 FROM t WHERE x >= 4 AND x < 8)) SELECT * FROM t ORDER BY x"
)


class TestFaultInjectionDoesNotPoisonCaches:
    def test_crash_on_one_dialect_leaves_other_dialects_clean(self):
        mysql = MiniDBAdapter("mysql")
        mysql.connect()
        outcome = mysql.execute(LISTING_14)
        assert outcome.error_type == "EngineCrash"
        # same statement text, different dialect: plan + fault caches are warm
        duckdb = MiniDBAdapter("duckdb")
        duckdb.connect()
        assert duckdb.execute(LISTING_14).ok
        # and the translator still answers from clean state
        result = translate(LISTING_14, ALL_DIALECTS["mysql"], ALL_DIALECTS["duckdb"])
        assert "WITH RECURSIVE" in result.sql

    def test_fault_match_cache_respects_enable_faults(self):
        crashing = Session("mysql", enable_faults=True)
        with pytest.raises(EngineCrash):
            crashing.execute(LISTING_14)
        # the fault-match cache is warm for this (dialect, sql); a session with
        # fault emulation off must not crash on the cached match
        clean = Session("mysql", enable_faults=False)
        result = clean.execute(LISTING_14)
        assert result.rows

    def test_stateful_fault_conditions_are_reevaluated_on_cache_hits(self):
        """The update-after-commit signature matches textually but only fires
        in the right transaction state, even once the match is cached."""
        session = Session("duckdb")
        session.execute("CREATE TABLE a (b INTEGER)")
        session.execute("BEGIN")
        session.execute("INSERT INTO a VALUES (1)")
        session.execute("UPDATE a SET b = b + 10")   # warms the fault-match cache
        session.execute("COMMIT")
        with pytest.raises(EngineCrash):
            session.execute("UPDATE a SET b = b + 10")


class TestPlanCache:
    def test_shared_plans_keep_dialect_semantics(self):
        """The plan cache is process-wide; execution stays per-dialect."""
        sql_div = "SELECT 7 / 2"
        sqlite = Session("sqlite")
        duckdb = Session("duckdb")
        assert sqlite.execute(sql_div).scalar() == 3     # integer division
        assert duckdb.execute(sql_div).scalar() == 3.5   # decimal division

    def test_repeat_statements_hit_the_plan_cache(self):
        session = Session("sqlite")
        caches = perf_cache.registered_caches()
        session.execute("SELECT 41 + 1")
        before = caches["plan"].stats.hits
        session.execute("SELECT 41 + 1")
        assert caches["plan"].stats.hits == before + 1

    def test_syntax_errors_are_cached_and_raised_fresh(self):
        session = Session("sqlite")
        with pytest.raises(SQLSyntaxError) as first:
            session.execute("SELECT FROM WHERE")
        with pytest.raises(SQLSyntaxError) as second:
            session.execute("SELECT FROM WHERE")
        assert str(first.value) == str(second.value)
        assert first.value is not second.value

    def test_disabled_caching_bypasses_the_plan_cache(self):
        caches = perf_cache.registered_caches()
        with perf_cache.caching_disabled():
            session = Session("sqlite")
            session.execute("SELECT 123")
            session.execute("SELECT 123")
        assert caches["plan"].stats.lookups == 0


class TestFileResultCounters:
    def _result(self, outcome: RecordOutcome) -> RecordResult:
        record = StatementRecord(sql="SELECT 1") if outcome is not RecordOutcome.PASS else QueryRecord(sql="SELECT 1")
        return RecordResult(record=record, outcome=outcome)

    def test_counts_accumulate_across_appends(self):
        file_result = FileResult(path="f", suite="slt", host="sqlite")
        file_result.results.append(self._result(RecordOutcome.PASS))
        assert file_result.passed == 1 and file_result.failed == 0
        file_result.results.append(self._result(RecordOutcome.FAIL))
        file_result.results.append(self._result(RecordOutcome.SKIP))
        file_result.results.append(self._result(RecordOutcome.CRASH))
        file_result.results.append(self._result(RecordOutcome.HANG))
        assert file_result.passed == 1
        assert file_result.failed == 1
        assert file_result.skipped == 1
        assert file_result.crashes == 1
        assert file_result.hangs == 1
        assert file_result.executed == 4

    def test_replacing_results_recounts(self):
        file_result = FileResult(path="f", suite="slt", host="sqlite")
        file_result.results.extend(self._result(RecordOutcome.PASS) for _ in range(3))
        assert file_result.passed == 3
        file_result.results = [self._result(RecordOutcome.FAIL)]
        assert file_result.passed == 0 and file_result.failed == 1

    def test_same_length_replacement_recounts(self):
        file_result = FileResult(path="f", suite="slt", host="sqlite")
        file_result.results.extend(self._result(RecordOutcome.PASS) for _ in range(2))
        assert file_result.passed == 2
        file_result.results = [self._result(RecordOutcome.FAIL), self._result(RecordOutcome.FAIL)]
        assert file_result.passed == 0 and file_result.failed == 2
