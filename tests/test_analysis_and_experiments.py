"""RQ1/RQ2 analysis modules and the per-table/figure experiment drivers."""

import pytest

from repro.analysis import (
    count_runner_commands,
    file_size_distribution,
    join_usage,
    predicate_distribution,
    runner_feature_matrix,
    size_summary,
    standard_compliance,
    statement_type_distribution,
)
from repro.experiments import EXPERIMENTS, ExperimentContext, run_experiment


class TestAnalysis:
    def test_runner_feature_matrix_matches_table2(self):
        matrix = runner_feature_matrix()
        assert matrix["sqlite"]["runner_commands"] == 4
        assert matrix["mysql"]["runner_commands"] == 112
        assert matrix["postgres"]["cli_commands"] == 114
        assert matrix["duckdb"]["runner_commands"] == 16

    def test_count_runner_commands_on_corpora(self, small_slt_suite, small_duckdb_suite):
        slt_census = count_runner_commands(small_slt_suite)
        assert "Skiptest" in slt_census["feature_families"]
        duckdb_census = count_runner_commands(small_duckdb_suite)
        assert duckdb_census["distinct_commands"] >= 1

    def test_statement_distribution_sums_to_one(self, small_postgres_suite):
        distribution = statement_type_distribution(small_postgres_suite)
        assert abs(sum(distribution.values()) - 1.0) < 1e-6
        assert "SELECT" in distribution

    def test_standard_compliance_ordering(self, small_slt_suite, small_postgres_suite):
        slt = standard_compliance(small_slt_suite)
        postgres = standard_compliance(small_postgres_suite)
        assert slt.standard_share > postgres.standard_share

    def test_predicate_distribution(self, small_slt_suite):
        distribution = predicate_distribution(small_slt_suite)
        assert abs(sum(distribution.values()) - 1.0) < 1e-6
        assert distribution["0"] > 0.4  # most SELECTs have no WHERE clause

    def test_join_usage(self, small_slt_suite):
        usage = join_usage(small_slt_suite)
        assert usage.total_selects > 0
        assert 0.0 <= usage.join_share <= 1.0

    def test_file_sizes(self, small_slt_suite, small_duckdb_suite):
        slt_summary = size_summary(small_slt_suite)
        duckdb_summary = size_summary(small_duckdb_suite)
        assert slt_summary.mean > duckdb_summary.mean
        assert len(file_size_distribution(small_slt_suite)) == len(small_slt_suite.files)


class TestAnalysisBugfixes:
    """Regression pins for the RQ1/RQ2 scanner bugfixes."""

    def test_conditions_are_censused_separately_from_commands(self):
        # skipif/onlyif are guards on SQL records, not runner commands: they
        # must not inflate distinct_commands, but still witness Skiptest
        from repro.core.records import Condition, ControlRecord, StatementRecord, TestFile, TestSuite

        test_file = TestFile(path="crafted.test", suite="slt", source_lines=4)
        test_file.records = [
            ControlRecord(command="hash-threshold", arguments="8"),
            StatementRecord(sql="SELECT 1", conditions=[Condition(kind="skipif", dbms="mysql")]),
            StatementRecord(sql="SELECT 2", conditions=[Condition(kind="onlyif", dbms="sqlite")]),
            StatementRecord(sql="SELECT 3", conditions=[Condition(kind="skipif", dbms="oracle")]),
        ]
        census = count_runner_commands(TestSuite(name="slt", files=[test_file]))
        assert census["distinct_commands"] == 1
        assert census["command_counts"] == {"hash-threshold": 1}
        assert census["condition_counts"] == {"skipif": 2, "onlyif": 1}
        assert "Skiptest" in census["feature_families"]

    def test_log_histogram_gives_zero_line_files_a_bucket(self):
        from repro.analysis.filesize import log_histogram

        sizes = [0, 0, 1, 9, 10, 150, 0]
        histogram = log_histogram(sizes)
        assert histogram["0"] == 3
        assert histogram["1-10"] == 2
        # per-bucket sums always account for every file
        assert sum(histogram.values()) == len(sizes)
        assert sum(log_histogram([]).values()) == 0

    def test_all_empty_suite_geometric_mean_is_zero(self):
        from repro.analysis.filesize import summarize_sizes

        # no positive sizes -> no typical size, not a typical size of one line
        assert summarize_sizes("empty", [0, 0, 0]).geometric_mean == 0.0
        assert summarize_sizes("none", []).geometric_mean == 0.0
        assert summarize_sizes("mixed", [0, 10, 1000]).geometric_mean == pytest.approx(100.0)

    def test_as_row_rounds_float_cells(self):
        from repro.analysis.filesize import SizeSummary

        summary = SizeSummary(
            suite="s", file_count=3, minimum=1, maximum=20, mean=7.9, median=6.7, geometric_mean=5.0
        )
        # 6.7 -> 7 and 7.9 -> 8; truncation would report 6 and 7
        assert summary.as_row() == ["s", 3, 1, 7, 8, 20]


@pytest.fixture(scope="module")
def tiny_context():
    # A very small campaign: enough to exercise every experiment end-to-end.
    return ExperimentContext(scale=0.12, seed=11)


class TestExperiments:
    def test_registry_covers_every_table_and_figure(self):
        expected = {f"table{i}" for i in range(1, 9)} | {f"figure{i}" for i in range(1, 5)} | {"bugs", "ablations"}
        assert expected == set(EXPERIMENTS)

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("table99")

    @pytest.mark.parametrize("experiment_id", ["table1", "table2", "figure1", "figure2", "table3", "figure3"])
    def test_static_experiments_run(self, tiny_context, experiment_id):
        result = run_experiment(experiment_id, tiny_context)
        assert result.text
        assert result.data

    @pytest.mark.parametrize("experiment_id", ["table4", "table5", "figure4", "table6", "table7", "bugs"])
    def test_execution_experiments_run(self, tiny_context, experiment_id):
        result = run_experiment(experiment_id, tiny_context)
        assert result.text
        assert result.data

    def test_figure4_shape(self, tiny_context):
        result = run_experiment("figure4", tiny_context)
        measured = result.data["measured"]
        assert measured["slt->duckdb"] > measured["postgres->duckdb"]
        assert measured["slt->mysql"] > measured["duckdb->mysql"]

    def test_bugs_experiment_finds_crashes_and_hangs(self, tiny_context):
        result = run_experiment("bugs", tiny_context)
        assert result.data["crash_count"] >= 2
        assert result.data["hang_count"] >= 2

    def test_table8_union_covers_at_least_original(self, tiny_context):
        result = run_experiment("table8", tiny_context)
        for engine, entry in result.data.items():
            original_line, original_branch = entry["measured"]["original"]
            union_line, union_branch = entry["measured"]["squality"]
            assert union_line >= original_line
            assert union_branch >= original_branch

    def test_cli_main_list(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--list"]) == 0
        captured = capsys.readouterr()
        assert "table4" in captured.out
