"""Shared fixtures: small corpora, adapters, and sessions.

Corpus-backed fixtures are session-scoped because generation executes every
statement on a donor adapter; the small sizes keep the whole suite fast while
still exercising the full parse -> run -> validate pipeline.
"""

from __future__ import annotations

import pytest

from repro.adapters.minidb_adapter import MiniDBAdapter
from repro.adapters.sqlite_adapter import SQLite3Adapter
from repro.corpus import build_suite
from repro.engine.session import Session
from repro.store import ArtifactStore, set_default_store


@pytest.fixture(scope="session", autouse=True)
def _hermetic_artifact_store(tmp_path_factory):
    """Point the default artifact store at a per-session temp directory.

    Tests still exercise store-backed reuse (misses then hits within the
    session), but never read stale artifacts from — or leak artifacts into —
    the user-level ``~/.cache/repro-store``.
    """
    root = tmp_path_factory.mktemp("repro-store")
    previous = set_default_store(ArtifactStore(root=root))
    yield
    set_default_store(previous)


@pytest.fixture
def sqlite_session() -> Session:
    return Session("sqlite")


@pytest.fixture
def postgres_session() -> Session:
    return Session("postgres")


@pytest.fixture
def duckdb_session() -> Session:
    return Session("duckdb")


@pytest.fixture
def mysql_session() -> Session:
    return Session("mysql")


@pytest.fixture
def sqlite3_adapter() -> SQLite3Adapter:
    adapter = SQLite3Adapter()
    adapter.connect()
    yield adapter
    adapter.close()


@pytest.fixture
def duckdb_adapter() -> MiniDBAdapter:
    adapter = MiniDBAdapter("duckdb")
    adapter.connect()
    yield adapter
    adapter.close()


@pytest.fixture(scope="session")
def small_slt_suite():
    return build_suite("slt", file_count=3, records_per_file=40, seed=7)


@pytest.fixture(scope="session")
def small_postgres_suite():
    return build_suite("postgres", file_count=4, records_per_file=30, seed=7)


@pytest.fixture(scope="session")
def small_duckdb_suite():
    return build_suite("duckdb", file_count=6, records_per_file=12, seed=7)


@pytest.fixture(scope="session")
def small_mysql_suite():
    return build_suite("mysql", file_count=3, records_per_file=25, seed=7)
