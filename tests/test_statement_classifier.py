"""Unit tests for statement splitting, typing, and standard-compliance."""

import pytest

from repro.sqlparser.statements import (
    classify_script,
    classify_statement,
    is_standard_statement,
    split_statements,
    statement_type,
)


class TestStatementType:
    @pytest.mark.parametrize(
        "sql,expected",
        [
            ("SELECT * FROM t0", "SELECT"),
            ("select 1", "SELECT"),
            ("INSERT INTO t VALUES (1)", "INSERT"),
            ("UPDATE t SET a = 1", "UPDATE"),
            ("DELETE FROM t", "DELETE"),
            ("CREATE TABLE t(a INT)", "CREATE TABLE"),
            ("CREATE TEMP TABLE t(a INT)", "CREATE TABLE"),
            ("CREATE UNIQUE INDEX i ON t(a)", "CREATE INDEX"),
            ("CREATE OR REPLACE VIEW v AS SELECT 1", "CREATE VIEW"),
            ("DROP TABLE IF EXISTS t", "DROP TABLE"),
            ("ALTER TABLE t ADD COLUMN b INT", "ALTER TABLE"),
            ("PRAGMA foreign_keys = ON", "PRAGMA"),
            ("SET search_path TO public", "SET"),
            ("EXPLAIN SELECT 1", "EXPLAIN"),
            ("BEGIN", "BEGIN"),
            ("START TRANSACTION", "START TRANSACTION"),
            ("COMMIT", "COMMIT"),
            ("ROLLBACK", "ROLLBACK"),
            ("WITH x AS (SELECT 1) SELECT * FROM x", "WITH"),
            ("VALUES (1), (2)", "VALUES"),
            ("COPY t FROM 'file.csv'", "COPY"),
            ("SHOW tables", "SHOW"),
            ("VACUUM", "VACUUM"),
        ],
    )
    def test_common_statement_types(self, sql, expected):
        assert statement_type(sql) == expected

    def test_cli_command(self):
        assert statement_type("\\d mytable") == "CLI_COMMAND"

    def test_empty_statement(self):
        assert statement_type("   ") == "EMPTY"

    def test_intentionally_broken_statement_keeps_literal_type(self):
        # the paper observes "SELEC" in DuckDB test cases being kept as-is
        assert statement_type("SELEC 1") == "SELEC"

    def test_parenthesised_select_keeps_prefix(self):
        # mirrors the paper's "(((((select * from int8_tbl)))))" observation
        assert statement_type("(((((select * from int8_tbl)))))") == "(((((SELECT"


class TestStandardCompliance:
    def test_select_and_insert_are_standard(self):
        assert is_standard_statement("SELECT")
        assert is_standard_statement("INSERT")
        assert is_standard_statement("CREATE TABLE")

    def test_create_index_is_not_standard(self):
        assert not is_standard_statement("CREATE INDEX")

    def test_pragma_set_explain_are_not_standard(self):
        for stype in ("PRAGMA", "SET", "EXPLAIN", "COPY", "SHOW", "BEGIN"):
            assert not is_standard_statement(stype)

    def test_classify_statement_flags(self):
        info = classify_statement("SELECT to_json(date '2014-05-28')")
        assert info.statement_type == "SELECT"
        assert info.is_standard
        assert info.is_query

    def test_widely_supported_nonstandard(self):
        info = classify_statement("CREATE INDEX i ON t(a)")
        assert not info.is_standard
        assert info.is_widely_supported


class TestSplitStatements:
    def test_split_on_top_level_semicolons(self):
        parts = split_statements("SELECT 1; SELECT 2; SELECT 3")
        assert len(parts) == 3

    def test_semicolon_inside_string_does_not_split(self):
        parts = split_statements("SELECT 'a;b'; SELECT 2")
        assert len(parts) == 2
        assert "a;b" in parts[0]

    def test_semicolon_inside_parentheses_does_not_split(self):
        parts = split_statements("CREATE TABLE t(a INT); INSERT INTO t VALUES (1)")
        assert len(parts) == 2

    def test_empty_fragments_dropped(self):
        assert split_statements(";;;SELECT 1;;") == ["SELECT 1"]

    def test_comments_do_not_confuse_splitting(self):
        parts = split_statements("SELECT 1; -- comment with ; inside\nSELECT 2")
        assert len(parts) == 2

    def test_classify_script(self):
        infos = classify_script("CREATE TABLE t(a INT); INSERT INTO t VALUES (1); SELECT * FROM t")
        assert [info.statement_type for info in infos] == ["CREATE TABLE", "INSERT", "SELECT"]
