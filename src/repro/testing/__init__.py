"""Test-support utilities shipped with the package.

:mod:`repro.testing.chaos` is the chaos-engineering harness that proves the
campaign resilience layer (:mod:`repro.core.resilience`): deterministic,
seeded fault schedules injected at the adapter and store boundaries, so
``tests/test_chaos.py`` can assert that recoverable faults leave campaigns
byte-identical to fault-free runs and unrecoverable ones degrade gracefully.
"""

from repro.testing.chaos import (
    ChaosAdapter,
    ChaosError,
    ChaosStore,
    FaultSchedule,
    FaultSpec,
    inject_adapter,
)

__all__ = [
    "ChaosAdapter",
    "ChaosError",
    "ChaosStore",
    "FaultSchedule",
    "FaultSpec",
    "inject_adapter",
]
