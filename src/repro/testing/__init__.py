"""Test-support utilities shipped with the package.

:mod:`repro.testing.chaos` is the chaos-engineering harness that proves the
campaign resilience layer (:mod:`repro.core.resilience`): deterministic,
seeded fault schedules injected at the adapter and store boundaries, so
``tests/test_chaos.py`` can assert that recoverable faults leave campaigns
byte-identical to fault-free runs and unrecoverable ones degrade gracefully.
It also hosts the kill-point crash harness (:func:`~repro.testing.chaos.run_crash_campaign`
+ :mod:`repro.testing.crash_child`): real campaigns in killable subprocesses,
proving the journal/store crash-safety invariants in ``tests/test_crash.py``.
"""

from repro.testing.chaos import (
    ChaosAdapter,
    ChaosError,
    ChaosStore,
    CrashOutcome,
    FaultSchedule,
    FaultSpec,
    inject_adapter,
    parse_crash_summary,
    run_crash_campaign,
)

__all__ = [
    "ChaosAdapter",
    "ChaosError",
    "ChaosStore",
    "CrashOutcome",
    "FaultSchedule",
    "FaultSpec",
    "inject_adapter",
    "parse_crash_summary",
    "run_crash_campaign",
]
