"""Chaos harness: deterministic fault injection at the infrastructure seams.

The resilience layer's promise is behavioural — *recoverable faults leave no
trace, unrecoverable ones degrade the campaign instead of killing it* — and
the only honest way to test that promise is to make infrastructure actually
fail.  This module injects faults at the two seams the resilience layer
guards:

* **Adapters** — :func:`inject_adapter` re-registers an adapter name with a
  factory that wraps every built instance in a :class:`ChaosAdapter`, which
  consults a shared :class:`FaultSchedule` before each lifecycle/execute call.
  Because the registry indirection is also how sharded workers rebuild
  adapters (``fork_config`` → ``create_adapter``), the same injection reaches
  worker-thread adapters with no extra plumbing.
* **The artifact store** — :class:`ChaosStore` overrides the store's
  ``_read``/``_write`` I/O hooks to raise ``EIO`` per schedule, driving the
  graceful-degradation path (:meth:`repro.store.artifacts.ArtifactStore._record_io_error`).

Schedules are **deterministic**: a fault fires on the K-th call of an
operation (optionally every call from K onward), counted under a lock, with
no wall-clock or RNG involvement beyond the seed recorded for reporting.  A
failing chaos test therefore reproduces exactly from its printed seed.

Process-pool caveat: chaos wrappers live in this process's registry; worker
*processes* re-import a pristine registry, so chaos campaigns must use the
thread executor (``executor="thread"``), where injection and breaker state
are shared.

Beyond in-process faults, :func:`run_crash_campaign` is the **kill-point
crash harness**: it runs a real journaled campaign in a subprocess
(:mod:`repro.testing.crash_child`) and either lets ``REPRO_KILL_POINTS``
SIGKILL it from the inside — at a store write, a journal append, a cell
boundary — or lands a SIGINT/SIGTERM from the outside to exercise the
graceful drain.  ``tests/test_crash.py`` uses it to assert the crash-safety
invariants: the store audits clean after any kill, the journal replays, and
re-running the same campaign converges to a byte-identical result with only
in-flight work re-executed.
"""

from __future__ import annotations

import errno
import json
import os
import signal
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.adapters.base import DBMSAdapter, ExecutionOutcome
from repro.adapters.registry import get_adapter_entry, register_adapter
from repro.killpoints import KILL_ONCE_DIR_ENV, KILL_POINTS_ENV
from repro.store.artifacts import ArtifactStore


class ChaosError(OSError):
    """A deterministic injected infrastructure fault.

    An ``OSError`` subclass with ``transient = True``, so both halves of
    :func:`repro.core.resilience.is_transient_error` classify it as
    retryable — exactly the kind of fault the retry layer exists for.
    """

    transient = True


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: inject ``kind`` on the ``at``-th call of ``op``.

    ``op`` names the instrumented operation (``"execute"``, ``"setup"``,
    ``"reset"`` on adapters; ``"read"``, ``"write"`` on stores).  ``at`` is
    1-based.  ``every=True`` makes the fault permanent from ``at`` onward —
    the "adapter that will never work again" used to drive quarantine.
    ``kind="hang"`` sleeps ``seconds`` instead of raising (a wedge the
    watchdog must notice; it finishes on its own so tests never leak a
    truly stuck thread).
    """

    op: str
    at: int = 1
    kind: str = "raise"  # "raise" | "hang"
    every: bool = False
    seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.at < 1:
            raise ValueError("FaultSpec.at is 1-based")
        if self.kind not in ("raise", "hang"):
            raise ValueError(f"unknown fault kind {self.kind!r}")


class FaultSchedule:
    """Thread-safe per-operation call counters driving a set of faults.

    One schedule is shared by every chaos wrapper of a campaign (serial
    adapter, worker-thread adapters, the store), so ``at`` counts calls
    campaign-wide in arrival order.  ``injected`` records every fault that
    actually fired, for assertions and failure reports.
    """

    def __init__(self, faults: "list[FaultSpec] | tuple[FaultSpec, ...]", seed: int = 0):
        self.faults = tuple(faults)
        self.seed = seed
        self._lock = threading.Lock()
        self._calls: dict[str, int] = {}
        #: (op, call index, kind) of every fault that fired
        self.injected: list[tuple[str, int, str]] = []

    def tick(self, op: str) -> FaultSpec | None:
        """Count one call of ``op``; the fault to inject now, or None."""
        with self._lock:
            count = self._calls.get(op, 0) + 1
            self._calls[op] = count
            for fault in self.faults:
                if fault.op != op:
                    continue
                if count == fault.at or (fault.every and count >= fault.at):
                    self.injected.append((op, count, fault.kind))
                    return fault
        return None

    def calls(self, op: str) -> int:
        with self._lock:
            return self._calls.get(op, 0)

    def reset(self) -> None:
        """Rewind every counter (and the injection log) for a fresh campaign."""
        with self._lock:
            self._calls.clear()
            self.injected.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<FaultSchedule seed={self.seed} faults={len(self.faults)} injected={len(self.injected)}>"


class ChaosAdapter(DBMSAdapter):
    """Wraps a real adapter; injects scheduled faults before delegating.

    Faults fire on ``setup``/``reset``/``execute`` — the operations the
    resilience layer guards; ``teardown``/``close`` stay clean so failure
    paths can always clean up.  ``fork_config`` delegates to the inner
    adapter: the returned registry name resolves through the chaos-injected
    registry entry, so worker-built clones are chaos-wrapped too (sharing
    this adapter's schedule through the factory closure).
    """

    def __init__(self, inner: DBMSAdapter, schedule: FaultSchedule):
        self.inner = inner
        self.schedule = schedule
        self.name = inner.name
        self.dialect = inner.dialect

    def _maybe_fault(self, op: str) -> None:
        fault = self.schedule.tick(op)
        if fault is None:
            return
        if fault.kind == "hang":
            time.sleep(fault.seconds)
            return
        raise ChaosError(errno.EIO, f"chaos[{self.schedule.seed}]: injected {op} fault (call {self.schedule.calls(op)})")

    def connect(self) -> None:
        self.inner.connect()

    def setup(self) -> None:
        self._maybe_fault("setup")
        self.inner.setup()

    def reset(self) -> None:
        self._maybe_fault("reset")
        self.inner.reset()

    def execute(self, sql: str) -> ExecutionOutcome:
        self._maybe_fault("execute")
        return self.inner.execute(sql)

    def close(self) -> None:
        self.inner.close()

    def teardown(self) -> None:
        self.inner.teardown()

    def fork_config(self) -> tuple[str, dict] | None:
        return self.inner.fork_config()


@contextmanager
def inject_adapter(name: str, schedule: FaultSchedule) -> Iterator[FaultSchedule]:
    """Chaos-wrap every adapter built under ``name`` for the block's duration.

    Re-registers ``name`` (keeping its aliases, which the registry retargets
    atomically) with a factory that wraps the original factory's product in a
    :class:`ChaosAdapter` sharing ``schedule``.  The original entry is
    restored on exit, whatever happens inside.  Adapters built *before*
    injection (e.g. sitting idle in a pool) are untouched — use fresh pools
    in chaos tests.
    """
    original = get_adapter_entry(name)

    def _chaos_factory(**kwargs) -> DBMSAdapter:
        return ChaosAdapter(original.factory(**kwargs), schedule)

    register_adapter(original.name, _chaos_factory, aliases=original.aliases, description=f"chaos({original.description})")
    try:
        yield schedule
    finally:
        register_adapter(original.name, original.factory, aliases=original.aliases, description=original.description)


class ChaosStore(ArtifactStore):
    """An :class:`ArtifactStore` whose I/O layer fails on schedule.

    Overrides the ``_read``/``_write`` hooks to raise ``EIO`` when the shared
    :class:`FaultSchedule` says so — exercising exactly the branch that
    triggers graceful degradation, without touching real-filesystem failure
    modes.  Corruption faults are *not* modelled here; the store's own tests
    cover garbled artifacts.
    """

    def __init__(self, *args, schedule: FaultSchedule, **kwargs):
        super().__init__(*args, **kwargs)
        self.schedule = schedule

    def _read(self, path):
        fault = self.schedule.tick("read")
        if fault is not None:
            raise OSError(errno.EIO, f"chaos[{self.schedule.seed}]: injected read fault")
        return super()._read(path)

    def _write(self, path, payload) -> None:
        fault = self.schedule.tick("write")
        if fault is not None:
            raise OSError(errno.EIO, f"chaos[{self.schedule.seed}]: injected write fault")
        super()._write(path, payload)


# -- kill-point crash harness -----------------------------------------------------------


@dataclass
class CrashOutcome:
    """One crash-harness child run: exit status plus its parsed summary.

    ``summary`` is the child's ``CRASH-CHILD-SUMMARY`` JSON payload, or None
    when the child died before printing one (the expected shape of a SIGKILL
    run).  ``returncode`` follows :mod:`subprocess` conventions: negative
    values are the killing signal.
    """

    returncode: int
    summary: "dict | None"
    stdout: str
    stderr: str

    @property
    def killed(self) -> bool:
        """True when the child died to SIGKILL (self-inflicted kill point)."""
        return self.returncode == -signal.SIGKILL


def parse_crash_summary(stdout: str) -> "dict | None":
    """The last ``CRASH-CHILD-SUMMARY`` JSON line of a child's stdout, or None."""
    from repro.testing.crash_child import SUMMARY_MARKER

    for line in reversed(stdout.splitlines()):
        if line.startswith(SUMMARY_MARKER):
            return json.loads(line[len(SUMMARY_MARKER):].strip())
    return None


def run_crash_campaign(
    store_dir: "str | os.PathLike",
    child_args: "tuple[str, ...] | list[str]" = (),
    kill_points: str | None = None,
    kill_once_dir: "str | os.PathLike | None" = None,
    send_signal: int | None = None,
    ready_file: "str | os.PathLike | None" = None,
    signal_timeout: float = 30.0,
    timeout: float = 120.0,
) -> CrashOutcome:
    """Run one :mod:`~repro.testing.crash_child` campaign in a subprocess.

    ``kill_points`` (the ``REPRO_KILL_POINTS`` schedule, e.g.
    ``"store-write:2"``) makes the child SIGKILL itself at an injected
    operation point; ``kill_once_dir`` threads ``REPRO_KILL_ONCE_DIR`` so a
    resumed (or worker-rebuilt) process does not re-fire the same point.
    When ``kill_points`` is None, both variables are *stripped* from the
    child's environment — a verification run must never inherit a schedule.

    ``send_signal`` delivers a signal from the outside instead: the harness
    waits for ``ready_file`` to appear (the child touches it at its first
    in-flight statement; see ``--ready-file``) and then signals, so the
    graceful-drain path is exercised with work genuinely in flight.

    The child always runs against ``store_dir``; run the same campaign twice
    with the same store to test crash-resume convergence.
    """
    command = [
        sys.executable,
        "-m",
        "repro.testing.crash_child",
        "--store-dir",
        str(store_dir),
        *child_args,
    ]
    env = dict(os.environ)
    if kill_points is not None:
        env[KILL_POINTS_ENV] = kill_points
        if kill_once_dir is not None:
            env[KILL_ONCE_DIR_ENV] = str(kill_once_dir)
    else:
        env.pop(KILL_POINTS_ENV, None)
        env.pop(KILL_ONCE_DIR_ENV, None)
    process = subprocess.Popen(
        command, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env
    )
    try:
        if send_signal is not None:
            deadline = time.monotonic() + signal_timeout
            if ready_file is not None:
                while (
                    time.monotonic() < deadline
                    and not Path(ready_file).exists()
                    and process.poll() is None
                ):
                    time.sleep(0.01)
            if process.poll() is None:
                process.send_signal(send_signal)
        stdout, stderr = process.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        process.kill()
        process.communicate()
        raise
    except BaseException:
        process.kill()
        process.communicate()
        raise
    return CrashOutcome(
        returncode=process.returncode,
        summary=parse_crash_summary(stdout),
        stdout=stdout,
        stderr=stderr,
    )
