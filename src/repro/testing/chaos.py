"""Chaos harness: deterministic fault injection at the infrastructure seams.

The resilience layer's promise is behavioural — *recoverable faults leave no
trace, unrecoverable ones degrade the campaign instead of killing it* — and
the only honest way to test that promise is to make infrastructure actually
fail.  This module injects faults at the two seams the resilience layer
guards:

* **Adapters** — :func:`inject_adapter` re-registers an adapter name with a
  factory that wraps every built instance in a :class:`ChaosAdapter`, which
  consults a shared :class:`FaultSchedule` before each lifecycle/execute call.
  Because the registry indirection is also how sharded workers rebuild
  adapters (``fork_config`` → ``create_adapter``), the same injection reaches
  worker-thread adapters with no extra plumbing.
* **The artifact store** — :class:`ChaosStore` overrides the store's
  ``_read``/``_write`` I/O hooks to raise ``EIO`` per schedule, driving the
  graceful-degradation path (:meth:`repro.store.artifacts.ArtifactStore._record_io_error`).

Schedules are **deterministic**: a fault fires on the K-th call of an
operation (optionally every call from K onward), counted under a lock, with
no wall-clock or RNG involvement beyond the seed recorded for reporting.  A
failing chaos test therefore reproduces exactly from its printed seed.

Process-pool caveat: chaos wrappers live in this process's registry; worker
*processes* re-import a pristine registry, so chaos campaigns must use the
thread executor (``executor="thread"``), where injection and breaker state
are shared.
"""

from __future__ import annotations

import errno
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.adapters.base import DBMSAdapter, ExecutionOutcome
from repro.adapters.registry import get_adapter_entry, register_adapter
from repro.store.artifacts import ArtifactStore


class ChaosError(OSError):
    """A deterministic injected infrastructure fault.

    An ``OSError`` subclass with ``transient = True``, so both halves of
    :func:`repro.core.resilience.is_transient_error` classify it as
    retryable — exactly the kind of fault the retry layer exists for.
    """

    transient = True


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: inject ``kind`` on the ``at``-th call of ``op``.

    ``op`` names the instrumented operation (``"execute"``, ``"setup"``,
    ``"reset"`` on adapters; ``"read"``, ``"write"`` on stores).  ``at`` is
    1-based.  ``every=True`` makes the fault permanent from ``at`` onward —
    the "adapter that will never work again" used to drive quarantine.
    ``kind="hang"`` sleeps ``seconds`` instead of raising (a wedge the
    watchdog must notice; it finishes on its own so tests never leak a
    truly stuck thread).
    """

    op: str
    at: int = 1
    kind: str = "raise"  # "raise" | "hang"
    every: bool = False
    seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.at < 1:
            raise ValueError("FaultSpec.at is 1-based")
        if self.kind not in ("raise", "hang"):
            raise ValueError(f"unknown fault kind {self.kind!r}")


class FaultSchedule:
    """Thread-safe per-operation call counters driving a set of faults.

    One schedule is shared by every chaos wrapper of a campaign (serial
    adapter, worker-thread adapters, the store), so ``at`` counts calls
    campaign-wide in arrival order.  ``injected`` records every fault that
    actually fired, for assertions and failure reports.
    """

    def __init__(self, faults: "list[FaultSpec] | tuple[FaultSpec, ...]", seed: int = 0):
        self.faults = tuple(faults)
        self.seed = seed
        self._lock = threading.Lock()
        self._calls: dict[str, int] = {}
        #: (op, call index, kind) of every fault that fired
        self.injected: list[tuple[str, int, str]] = []

    def tick(self, op: str) -> FaultSpec | None:
        """Count one call of ``op``; the fault to inject now, or None."""
        with self._lock:
            count = self._calls.get(op, 0) + 1
            self._calls[op] = count
            for fault in self.faults:
                if fault.op != op:
                    continue
                if count == fault.at or (fault.every and count >= fault.at):
                    self.injected.append((op, count, fault.kind))
                    return fault
        return None

    def calls(self, op: str) -> int:
        with self._lock:
            return self._calls.get(op, 0)

    def reset(self) -> None:
        """Rewind every counter (and the injection log) for a fresh campaign."""
        with self._lock:
            self._calls.clear()
            self.injected.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<FaultSchedule seed={self.seed} faults={len(self.faults)} injected={len(self.injected)}>"


class ChaosAdapter(DBMSAdapter):
    """Wraps a real adapter; injects scheduled faults before delegating.

    Faults fire on ``setup``/``reset``/``execute`` — the operations the
    resilience layer guards; ``teardown``/``close`` stay clean so failure
    paths can always clean up.  ``fork_config`` delegates to the inner
    adapter: the returned registry name resolves through the chaos-injected
    registry entry, so worker-built clones are chaos-wrapped too (sharing
    this adapter's schedule through the factory closure).
    """

    def __init__(self, inner: DBMSAdapter, schedule: FaultSchedule):
        self.inner = inner
        self.schedule = schedule
        self.name = inner.name
        self.dialect = inner.dialect

    def _maybe_fault(self, op: str) -> None:
        fault = self.schedule.tick(op)
        if fault is None:
            return
        if fault.kind == "hang":
            time.sleep(fault.seconds)
            return
        raise ChaosError(errno.EIO, f"chaos[{self.schedule.seed}]: injected {op} fault (call {self.schedule.calls(op)})")

    def connect(self) -> None:
        self.inner.connect()

    def setup(self) -> None:
        self._maybe_fault("setup")
        self.inner.setup()

    def reset(self) -> None:
        self._maybe_fault("reset")
        self.inner.reset()

    def execute(self, sql: str) -> ExecutionOutcome:
        self._maybe_fault("execute")
        return self.inner.execute(sql)

    def close(self) -> None:
        self.inner.close()

    def teardown(self) -> None:
        self.inner.teardown()

    def fork_config(self) -> tuple[str, dict] | None:
        return self.inner.fork_config()


@contextmanager
def inject_adapter(name: str, schedule: FaultSchedule) -> Iterator[FaultSchedule]:
    """Chaos-wrap every adapter built under ``name`` for the block's duration.

    Re-registers ``name`` (keeping its aliases, which the registry retargets
    atomically) with a factory that wraps the original factory's product in a
    :class:`ChaosAdapter` sharing ``schedule``.  The original entry is
    restored on exit, whatever happens inside.  Adapters built *before*
    injection (e.g. sitting idle in a pool) are untouched — use fresh pools
    in chaos tests.
    """
    original = get_adapter_entry(name)

    def _chaos_factory(**kwargs) -> DBMSAdapter:
        return ChaosAdapter(original.factory(**kwargs), schedule)

    register_adapter(original.name, _chaos_factory, aliases=original.aliases, description=f"chaos({original.description})")
    try:
        yield schedule
    finally:
        register_adapter(original.name, original.factory, aliases=original.aliases, description=original.description)


class ChaosStore(ArtifactStore):
    """An :class:`ArtifactStore` whose I/O layer fails on schedule.

    Overrides the ``_read``/``_write`` hooks to raise ``EIO`` when the shared
    :class:`FaultSchedule` says so — exercising exactly the branch that
    triggers graceful degradation, without touching real-filesystem failure
    modes.  Corruption faults are *not* modelled here; the store's own tests
    cover garbled artifacts.
    """

    def __init__(self, *args, schedule: FaultSchedule, **kwargs):
        super().__init__(*args, **kwargs)
        self.schedule = schedule

    def _read(self, path):
        fault = self.schedule.tick("read")
        if fault is not None:
            raise OSError(errno.EIO, f"chaos[{self.schedule.seed}]: injected read fault")
        return super()._read(path)

    def _write(self, path, payload) -> None:
        fault = self.schedule.tick("write")
        if fault is not None:
            raise OSError(errno.EIO, f"chaos[{self.schedule.seed}]: injected write fault")
        super()._write(path, payload)
