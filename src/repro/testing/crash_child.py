"""Crash-harness child: one real journaled campaign in a disposable process.

``python -m repro.testing.crash_child --store-dir DIR ...`` builds a small
corpus, runs a journaled ``run_matrix`` campaign against a persistent store,
and prints a one-line JSON summary (prefixed ``CRASH-CHILD-SUMMARY``) with a
canonical-bytes digest of every cell's results plus the store's counters.

The point of being a *process* is being killable: the parent harness
(:func:`repro.testing.chaos.run_crash_campaign`) sets ``REPRO_KILL_POINTS``
so this process SIGKILLs itself inside a store write, a journal append, or a
cell boundary — and then runs it again with the same arguments to prove the
campaign resumes to a byte-identical result.  The digest is deliberately
computed from the canonical serialization (:mod:`repro.store.keys`), the
same identity notion the differential tests use, so "byte-identical" means
exactly what ``assert_equivalent`` would have asserted in-process.

``--slow`` registers a delaying wrapper around each host adapter (every
statement sleeps), widening the window in which the parent can land a
SIGTERM mid-campaign for the graceful-drain scenario; ``--ready-file`` is
touched at the first slowed statement so the parent signals neither too
early (nothing in flight) nor too late (campaign finished).  Slow wrappers
live in this process's registry only, so drain scenarios use the serial or
thread executor.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from pathlib import Path

#: stdout marker the parent harness greps for (other output may precede it)
SUMMARY_MARKER = "CRASH-CHILD-SUMMARY"


def _install_slow_adapters(hosts: tuple[str, ...], delay: float, ready_file: str | None) -> None:
    from repro.adapters.registry import get_adapter_entry, register_adapter

    for host in hosts:
        entry = get_adapter_entry(host)

        def _factory(_entry=entry, **kwargs):
            adapter = _entry.factory(**kwargs)
            inner_execute = adapter.execute

            def execute(sql):
                if ready_file:
                    Path(ready_file).touch()
                time.sleep(delay)
                return inner_execute(sql)

            adapter.execute = execute
            return adapter

        register_adapter(entry.name, _factory, aliases=entry.aliases, description=entry.description)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.testing.crash_child")
    parser.add_argument("--store-dir", required=True, help="artifact store root (journals live under it)")
    parser.add_argument("--suite", default="slt")
    parser.add_argument("--files", type=int, default=3)
    parser.add_argument("--records", type=int, default=4)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--hosts", default="sqlite", help="comma-separated host list")
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--executor", default="auto")
    parser.add_argument("--slow", type=float, default=0.0, help="seconds each statement sleeps (widens signal windows)")
    parser.add_argument("--ready-file", default=None, help="touched at the first slowed statement")
    arguments = parser.parse_args(argv)

    from repro.core.shutdown import signal_aware_shutdown
    from repro.core.transplant import run_matrix
    from repro.corpus.generate import build_suite
    from repro.store.artifacts import ArtifactStore
    from repro.store.keys import canonical_bytes

    hosts = tuple(host for host in arguments.hosts.split(",") if host)
    if arguments.slow > 0:
        _install_slow_adapters(hosts, arguments.slow, arguments.ready_file)

    store = ArtifactStore(root=arguments.store_dir)
    resume_command = "python -m repro.testing.crash_child " + " ".join(argv if argv is not None else sys.argv[1:])
    with signal_aware_shutdown(resume_command=resume_command) as state:
        suites = {
            arguments.suite: build_suite(
                arguments.suite,
                file_count=arguments.files,
                records_per_file=arguments.records,
                seed=arguments.seed,
                store=store,
                workers=arguments.workers,
                executor=arguments.executor,
            )
        }
        matrix = run_matrix(
            suites,
            hosts=hosts,
            workers=arguments.workers,
            executor=arguments.executor,
            store=store,
            journal=True,
        )

    digest = hashlib.sha256()
    for suite_name, host in sorted(matrix.entries):
        entry = matrix.entries[(suite_name, host)]
        digest.update(f"{suite_name}:{host}".encode("utf-8"))
        digest.update(b"\0")
        digest.update(canonical_bytes(entry.result))
        digest.update(b"\0")
    failures = matrix.infra_failures()
    summary = {
        "digest": digest.hexdigest(),
        "complete": matrix.is_complete(),
        "incomplete_cells": [list(cell) for cell in matrix.incomplete_cells()],
        "failure_kinds": sorted({failure.kind for failure in failures}),
        "drained": state.drained,
        "store": store.snapshot(),
        "journals": sorted(path.name for path in (Path(store.root) / "journals").glob("*.jsonl")),
    }
    print(SUMMARY_MARKER + " " + json.dumps(summary, sort_keys=True), flush=True)
    return 2 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
