"""DuckDB's test format (an extended sqllogictest dialect).

DuckDB specifies its tests in the SLT format with additional runner commands
(``require``, ``load``, ``loop``/``endloop``, ``mode``, ``restart``,
``statement error`` with expected message) and *row-wise* expected results:
each expected-result line is one row with values separated by tabs (Listing 3).

The parser subclasses :class:`~repro.formats.slt.SLTFormat`: blocks are parsed
with the shared SLT machinery, then query expectations are re-interpreted
row-wise (splitting each expected line on tabs), and ``loop``/``endloop``
blocks are expanded by substituting the loop variable into the templated
records (the paper notes DuckDB's runner provides execution-flow control
beyond plain SLT).
"""

from __future__ import annotations

import copy
import re

from repro.core.records import (
    ControlRecord,
    QueryRecord,
    Record,
    ResultFormat,
    StatementRecord,
    TestFile,
)
from repro.formats.registry import register_format
from repro.formats.slt import SLTFormat

_LOOP_PATTERN = re.compile(r"^loop\s+(\w+)\s+(-?\d+)\s+(-?\d+)$", re.IGNORECASE)
_EXTENSION_COMMANDS = re.compile(r"^(require|load|loop|endloop|mode|restart|reconnect)\b", re.IGNORECASE)
_QUERY_HEADER = re.compile(r"^query\s+([A-Z]+)\b")
_NUMERIC_TOKEN = re.compile(r"^([-+]?\d+(\.\d+)?([eE][-+]?\d+)?|NULL)$")


@register_format
class DuckDBFormat(SLTFormat):
    """SLT dialect with DuckDB runner extensions and row-wise results."""

    name = "duckdb"
    aliases = ()
    extensions = (".test", ".test_slow")
    description = "DuckDB sqllogictest dialect, row-wise results + loops"

    def parse_text(
        self,
        text: str,
        companion: str | None = None,
        path: str = "<memory>",
        suite: str | None = None,
    ) -> TestFile:
        test_file = self.new_test_file(text, path, suite)
        raw_records: list[Record] = []
        for start_line, lines in self.iter_blocks(text):
            raw_records.extend(self.parse_block(lines, start_line, path))

        for record in raw_records:
            if isinstance(record, QueryRecord) and record.result_format is ResultFormat.VALUE_WISE:
                rows = [line.split("\t") if "\t" in line else line.split() for line in record.expected_values]
                if record.expected_values and all(len(row) == max(len(record.type_string), 1) for row in rows):
                    record.result_format = ResultFormat.ROW_WISE
                    record.expected_rows = rows
                    record.expected_values = []

        test_file.records = _expand_loops(raw_records)
        return test_file

    def sniff(self, text: str) -> float:
        """SLT base score, boosted by DuckDB-only markers.

        A DuckDB file containing only single-column queries and no extension
        commands is textually indistinguishable from plain SLT; such files
        deliberately detect as ``slt`` (the far more common format).  That
        tie-break is harmless for execution — value-wise and row-wise
        expectations coincide for single-column results — but directories of
        marker-free DuckDB files should be loaded with an explicit
        ``suite_format="duckdb"`` to keep the donor label right.
        """
        base = super().sniff(text)
        if base <= 0.0:
            return 0.0
        extensions = 0
        row_wise_records = 0
        total = 0
        for _start, lines in self.iter_blocks(text):
            total += len(lines)
            width = 0
            results: list[str] | None = None
            for raw_line in lines:
                line = raw_line.strip()
                if line == "----" and results is None:
                    results = []
                    continue
                if results is not None:
                    results.append(raw_line)
                    continue
                header = _QUERY_HEADER.match(line)
                if header:
                    width = len(header.group(1))
                elif _EXTENSION_COMMANDS.match(line):
                    extensions += 1
            if not results:
                continue
            # a record reads as row-wise only when EVERY expected line is one
            # row: tabbed (DuckDB's canonical rendering), or — for a
            # multi-column query — exactly one *numeric* whitespace-separated
            # value per column.  The numeric restriction keeps value-wise SLT
            # text values that merely contain spaces ('hello world') from
            # masquerading as rows.
            if any("\t" in line for line in results):
                row_wise_records += 1
            elif width > 1 and all(
                len(line.split()) == width and all(_NUMERIC_TOKEN.match(token) for token in line.split())
                for line in results
            ):
                row_wise_records += 1
        if extensions == 0 and row_wise_records == 0:
            # plain SLT content: defer to the SLT format (strictly lower score)
            return base * 0.5
        return base + (extensions + row_wise_records) / max(total, 1)


def _expand_loops(records: list[Record]) -> list[Record]:
    """Expand ``loop var start end`` ... ``endloop`` blocks by substitution."""
    expanded: list[Record] = []
    index = 0
    while index < len(records):
        record = records[index]
        if isinstance(record, ControlRecord) and record.command == "loop":
            match = _LOOP_PATTERN.match(record.raw.strip()) if record.raw else None
            if match is None and len(record.arguments) == 3:
                variable, start_text, end_text = record.arguments
            elif match is not None:
                variable, start_text, end_text = match.group(1), match.group(2), match.group(3)
            else:
                expanded.append(record)
                index += 1
                continue
            # find the matching endloop (loops do not nest in practice)
            body: list[Record] = []
            cursor = index + 1
            while cursor < len(records):
                candidate = records[cursor]
                if isinstance(candidate, ControlRecord) and candidate.command == "endloop":
                    break
                body.append(candidate)
                cursor += 1
            expanded.append(record)  # keep the control record for RQ1 statistics
            for value in range(int(start_text), int(end_text)):
                for template in body:
                    expanded.append(_substitute(template, variable, value))
            if cursor < len(records):
                expanded.append(records[cursor])  # the endloop record
            index = cursor + 1
            continue
        expanded.append(record)
        index += 1
    return expanded


def _substitute(record: Record, variable: str, value: int) -> Record:
    """Return a copy of ``record`` with ``${var}`` occurrences substituted."""
    clone = copy.deepcopy(record)
    needle = "${" + variable + "}"
    if isinstance(clone, (StatementRecord, QueryRecord)):
        clone.sql = clone.sql.replace(needle, str(value))
    if isinstance(clone, QueryRecord):
        clone.expected_values = [entry.replace(needle, str(value)) for entry in clone.expected_values]
        clone.expected_rows = [[cell.replace(needle, str(value)) for cell in row] for row in clone.expected_rows]
    return clone


def parse_duckdb_text(text: str, path: str = "<memory>", suite: str = "duckdb") -> TestFile:
    """Parse DuckDB-test-format ``text`` into a :class:`TestFile`."""
    from repro.formats.registry import get_format

    return get_format("duckdb").parse_text(text, path=path, suite=suite)


def parse_duckdb_file(path: str, suite: str = "duckdb") -> TestFile:
    """Parse the DuckDB-format test file at ``path``."""
    from repro.formats.registry import get_format

    return get_format("duckdb").parse_file(path, suite=suite)


__all__ = ["DuckDBFormat", "parse_duckdb_text", "parse_duckdb_file"]
