"""The sqllogictest (SLT) format used by SQLite's test suite.

Format reference: https://www.sqlite.org/sqllogictest/doc/trunk/about.wiki

A test file is a sequence of *records* separated by blank lines.  Each record
is either::

    statement ok            |  statement error
    <SQL statement, possibly spanning several lines>

or::

    query <type-string> [sort-mode] [label]
    <SQL query>
    ----
    <expected result, one value per line>

Records may be preceded by ``skipif <dbms>`` / ``onlyif <dbms>`` condition
lines, and the file may contain ``halt`` and ``hash-threshold <n>`` control
records.  Large expected results are given in hash form::

    30 values hashing to 3c13dee48d9356ae19af2515e05e6b54
"""

from __future__ import annotations

import re

from repro.core.records import (
    Condition,
    QueryRecord,
    Record,
    ResultFormat,
    SortMode,
    StatementRecord,
    TestFile,
)
from repro.errors import TestFormatError
from repro.formats.base import SLT_CONTROL_COMMANDS, SLT_DIRECTIVE_PATTERN, FormatParser
from repro.formats.registry import register_format

_HASH_RESULT = re.compile(r"^(\d+)\s+values\s+hashing\s+to\s+([0-9a-f]{32})$")
#: directives beyond the shared record headers that also mark SLT content
_EXTRA_DIRECTIVES = re.compile(r"^(skipif\s+\S+|onlyif\s+\S+|hash-threshold\s+\d+|halt\b)")


@register_format
class SLTFormat(FormatParser):
    """Plain sqllogictest, value-wise expected results."""

    name = "slt"
    aliases = ("sqlite",)
    extensions = (".test", ".slt")
    description = "sqllogictest (SQLite), value-wise results"

    def parse_text(
        self,
        text: str,
        companion: str | None = None,
        path: str = "<memory>",
        suite: str | None = None,
    ) -> TestFile:
        test_file = self.new_test_file(text, path, suite)
        for start_line, lines in self.iter_blocks(text):
            test_file.records.extend(self.parse_block(lines, start_line, path))
        return test_file

    def sniff(self, text: str) -> float:
        lines = [line.strip() for line in text.splitlines() if line.strip()]
        if not lines:
            return 0.0
        directives = sum(1 for line in lines if SLT_DIRECTIVE_PATTERN.match(line) or _EXTRA_DIRECTIVES.match(line))
        separators = sum(1 for line in lines if line == "----")
        if directives == 0:
            return 0.0
        return (directives + separators) / len(lines)

    # -- record assembly (shared with the DuckDB subclass) -----------------------------

    def parse_block(self, lines: list[str], start_line: int, path: str) -> list[Record]:
        """Parse one blank-line-delimited block into records."""
        conditions: list[Condition] = []
        index = 0
        records: list[Record] = []

        while index < len(lines):
            line = self.strip_comment(lines[index]).strip()
            if not line:
                index += 1
                continue
            words = line.split()
            head = words[0].lower()

            condition = self.parse_condition(words)
            if condition is not None:
                conditions.append(condition)
                index += 1
                continue

            if head == "statement":
                records.append(self._parse_statement(lines, index, words, conditions, start_line, path))
                return records

            if head == "query":
                records.append(self._parse_query(lines, index, words, conditions, start_line))
                return records

            # Known control commands — and unknown directives, which are kept
            # as control records so RQ1's feature census sees them rather than
            # silently dropping them.
            records.append(self.control_record(start_line + index, line, conditions, words))
            conditions = []
            index += 1
        return records

    def _parse_statement(
        self,
        lines: list[str],
        index: int,
        words: list[str],
        conditions: list[Condition],
        start_line: int,
        path: str,
    ) -> StatementRecord:
        if len(words) < 2:
            raise TestFormatError("statement record missing ok/error", path=path, line=start_line + index)
        expect_ok = words[1].lower() == "ok"
        sql_lines = lines[index + 1 :]
        expected_error = None
        if "----" in [entry.strip() for entry in sql_lines]:
            separator = [entry.strip() for entry in sql_lines].index("----")
            expected_error = "\n".join(sql_lines[separator + 1 :]).strip() or None
            sql_lines = sql_lines[:separator]
        return StatementRecord(
            line=start_line + index,
            raw="\n".join(lines),
            conditions=list(conditions),
            sql="\n".join(sql_lines).strip(),
            expect_ok=expect_ok,
            expected_error=expected_error,
        )

    def _parse_query(
        self,
        lines: list[str],
        index: int,
        words: list[str],
        conditions: list[Condition],
        start_line: int,
    ) -> QueryRecord:
        type_string = words[1] if len(words) > 1 else ""
        sort_mode = SortMode.NOSORT
        label = None
        for word in words[2:]:
            lowered = word.lower()
            if lowered in ("nosort", "rowsort", "valuesort"):
                sort_mode = SortMode(lowered)
            else:
                label = word
        body = lines[index + 1 :]
        stripped_body = [entry.strip() for entry in body]
        if "----" in stripped_body:
            separator = stripped_body.index("----")
            sql_lines = body[:separator]
            result_lines = [entry.rstrip() for entry in body[separator + 1 :]]
        else:
            sql_lines = body
            result_lines = []
        record = QueryRecord(
            line=start_line + index,
            raw="\n".join(lines),
            conditions=list(conditions),
            sql="\n".join(sql_lines).strip(),
            type_string=type_string,
            sort_mode=sort_mode,
            label=label,
        )
        if len(result_lines) == 1 and _HASH_RESULT.match(result_lines[0].strip()):
            match = _HASH_RESULT.match(result_lines[0].strip())
            record.result_format = ResultFormat.HASH
            record.expected_hash_count = int(match.group(1))
            record.expected_hash = match.group(2)
        else:
            record.result_format = ResultFormat.VALUE_WISE
            record.expected_values = [entry for entry in result_lines if entry != ""]
        return record


def parse_slt_text(text: str, path: str = "<memory>", suite: str = "slt") -> TestFile:
    """Parse SLT-format ``text`` into a :class:`TestFile`."""
    from repro.formats.registry import get_format

    return get_format("slt").parse_text(text, path=path, suite=suite)


def parse_slt_file(path: str, suite: str = "slt") -> TestFile:
    """Parse the SLT file at ``path``."""
    from repro.formats.registry import get_format

    return get_format("slt").parse_file(path, suite=suite)


__all__ = ["SLTFormat", "SLT_CONTROL_COMMANDS", "parse_slt_text", "parse_slt_file"]
