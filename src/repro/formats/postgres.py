"""PostgreSQL regression tests (``.sql`` scripts + ``.out`` transcripts).

A PostgreSQL regression test is a psql script: SQL statements interleaved with
psql meta-commands (lines starting with a backslash) and comments.  The
expected output is a separate ``.out`` file containing a transcript — every
statement echoed, followed by its result rendered in psql's table format::

    SELECT a, b FROM t1 WHERE c > a;
     a | b
    ---+---
     2 | 4
     3 | 1
    (2 rows)

The native runner compares the *whole file* transcript.  SQuaLity instead
extracts a per-statement expectation (the paper's statement-by-statement
methodology): the ``.out`` transcript is aligned with the statements of the
``.sql`` file, and each statement's result block is converted into row-wise
expected values.  When no ``.out`` file is available the statements are
imported with "expect success" semantics only.
"""

from __future__ import annotations

import re

from repro.core.records import (
    ControlRecord,
    QueryRecord,
    ResultFormat,
    SortMode,
    StatementRecord,
    TestFile,
)
from repro.formats.base import MTR_COMMAND_WORDS, SLT_DIRECTIVE_PATTERN, FormatParser
from repro.formats.registry import register_format
from repro.sqlparser.statements import classify_statement, split_statements

_ROW_COUNT = re.compile(r"^\((\d+) rows?\)$")
_ERROR_LINE = re.compile(r"^(ERROR|FATAL|PANIC):")


@register_format
class PostgresFormat(FormatParser):
    """psql regression scripts with table-format expected transcripts."""

    name = "postgres"
    aliases = ("postgresql",)
    extensions = (".sql",)
    description = "PostgreSQL regression scripts (.sql + .out transcripts)"
    companion_suffix = ".out"
    companion_dirs = ("expected",)

    def parse_text(
        self,
        text: str,
        companion: str | None = None,
        path: str = "<memory>",
        suite: str | None = None,
    ) -> TestFile:
        test_file = self.new_test_file(text, path, suite)
        expectations = _parse_out_file(companion) if companion else {}

        statement_index = 0
        for fragment in _split_script(text):
            line_number = fragment.line
            statement_text = fragment.text.strip()
            if not statement_text:
                continue
            if statement_text.startswith("\\"):
                words = statement_text[1:].split()
                test_file.records.append(
                    ControlRecord(
                        line=line_number,
                        raw=statement_text,
                        command="psql:" + (words[0] if words else ""),
                        arguments=words[1:],
                    )
                )
                continue
            info = classify_statement(statement_text)
            expectation = expectations.get(statement_index)
            statement_index += 1
            if info.is_query and expectation is not None and expectation.rows is not None:
                test_file.records.append(
                    QueryRecord(
                        line=line_number,
                        raw=statement_text,
                        sql=statement_text,
                        type_string="T" * (len(expectation.columns) or 1),
                        sort_mode=SortMode.NOSORT,
                        result_format=ResultFormat.ROW_WISE,
                        expected_rows=expectation.rows,
                        expected_column_names=expectation.columns,
                    )
                )
            else:
                expect_ok = True
                expected_error = None
                if expectation is not None and expectation.error is not None:
                    expect_ok = False
                    expected_error = expectation.error
                test_file.records.append(
                    StatementRecord(
                        line=line_number,
                        raw=statement_text,
                        sql=statement_text,
                        expect_ok=expect_ok,
                        expected_error=expected_error,
                    )
                )
        return test_file

    def sniff(self, text: str) -> float:
        lines = [line.strip() for line in text.splitlines() if line.strip()]
        if not lines:
            return 0.0
        if any(SLT_DIRECTIVE_PATTERN.match(line) for line in lines):
            return 0.0  # SLT-family content, not a psql script
        meta = sum(1 for line in lines if line.startswith("\\"))
        comments = sum(1 for line in lines if line.startswith("--") and (len(line) == 2 or not line[2:].lstrip() or line[2] in " -"))
        # mtr commands are written flush against the dashes (--error, not
        # "-- error"); a psql prose comment that happens to start with such a
        # word must keep counting as a comment
        mtr_commands = sum(
            1
            for line in lines
            if line.startswith("--")
            and not line[2:3].isspace()
            and line[2:].split()
            and line[2:].split()[0].lower() in MTR_COMMAND_WORDS
        )
        if mtr_commands > comments / 2 and mtr_commands > meta:
            return 0.0  # MySQL Test Framework commands dominate
        terminated = sum(1 for line in lines if line.endswith(";"))
        if terminated == 0 and meta == 0:
            return 0.0
        return (terminated + 2 * meta + comments) / (2 * len(lines))


# ---------------------------------------------------------------------------
# .sql script splitting (keeps line numbers and psql meta-commands)
# ---------------------------------------------------------------------------


class _Fragment:
    __slots__ = ("text", "line")

    def __init__(self, text: str, line: int):
        self.text = text
        self.line = line


def _split_script(sql_text: str) -> list[_Fragment]:
    fragments: list[_Fragment] = []
    buffer: list[str] = []
    buffer_start = 1
    for number, line in enumerate(sql_text.splitlines(), start=1):
        stripped = line.strip()
        if stripped.startswith("--") and not buffer:
            continue
        if stripped.startswith("\\") and not buffer:
            fragments.append(_Fragment(stripped, number))
            continue
        if not buffer:
            buffer_start = number
        buffer.append(line)
        if stripped.endswith(";"):
            text = "\n".join(buffer)
            for statement in split_statements(text):
                fragments.append(_Fragment(statement, buffer_start))
            buffer = []
    if buffer:
        text = "\n".join(buffer)
        for statement in split_statements(text):
            fragments.append(_Fragment(statement, buffer_start))
    return fragments


# ---------------------------------------------------------------------------
# .out transcript parsing
# ---------------------------------------------------------------------------


class _Expectation:
    __slots__ = ("columns", "rows", "error")

    def __init__(self, columns: list[str] | None = None, rows: list[list[str]] | None = None, error: str | None = None):
        self.columns = columns or []
        self.rows = rows
        self.error = error


def _parse_out_file(out_text: str) -> dict[int, _Expectation]:
    """Extract per-statement expectations from a psql transcript.

    Statements are echoed verbatim in the transcript; anything between one
    echoed statement's terminating semicolon and the next echoed statement is
    that statement's output block.
    """
    expectations: dict[int, _Expectation] = {}
    lines = out_text.splitlines()
    index = 0
    statement_index = 0
    current_statement_open = False
    block: list[str] = []

    def flush() -> None:
        nonlocal statement_index, block
        if not current_statement_open:
            return
        expectations[statement_index] = _interpret_block(block)
        statement_index += 1
        block = []

    while index < len(lines):
        line = lines[index]
        stripped = line.strip()
        if _looks_like_statement_echo(stripped):
            flush()
            current_statement_open = True
            # multi-line statements: keep consuming echo lines until a semicolon
            while not stripped.endswith(";") and index + 1 < len(lines):
                index += 1
                stripped = lines[index].strip()
                if _looks_like_result_line(stripped):
                    index -= 1
                    break
        elif stripped.startswith("\\"):
            pass  # psql meta-command echo: its output belongs to no statement
        else:
            block.append(line)
        index += 1
    flush()
    return expectations


def _looks_like_statement_echo(line: str) -> bool:
    if not line or line.startswith("--"):
        return False
    from repro.sqlparser.statements import statement_type

    first_word = line.split()[0].upper() if line.split() else ""
    known_starts = {
        "SELECT", "INSERT", "UPDATE", "DELETE", "CREATE", "DROP", "ALTER", "BEGIN", "COMMIT", "ROLLBACK",
        "SET", "RESET", "SHOW", "EXPLAIN", "COPY", "WITH", "VALUES", "TRUNCATE", "GRANT", "REVOKE",
        "ANALYZE", "VACUUM", "PREPARE", "EXECUTE", "DECLARE", "FETCH", "START", "SAVEPOINT", "RELEASE",
    }
    return first_word in known_starts or statement_type(line) in known_starts


def _looks_like_result_line(line: str) -> bool:
    return bool(_ROW_COUNT.match(line) or _ERROR_LINE.match(line) or set(line) <= set("-+ ") and "-" in line)


def _interpret_block(block: list[str]) -> _Expectation:
    """Turn one psql output block into an expectation."""
    meaningful = [line for line in block if line.strip()]
    if not meaningful:
        return _Expectation(rows=None)
    first = meaningful[0].strip()
    if _ERROR_LINE.match(first):
        return _Expectation(error="\n".join(line.strip() for line in meaningful))
    # table format: header / ---+--- separator / rows / (N rows)
    separator_index = None
    for position, line in enumerate(meaningful):
        bare = line.strip()
        if bare and set(bare) <= set("-+") and "-" in bare:
            separator_index = position
            break
    if separator_index is None or separator_index == 0:
        return _Expectation(rows=None)
    columns = [name.strip() for name in meaningful[separator_index - 1].split("|")]
    rows: list[list[str]] = []
    for line in meaningful[separator_index + 1 :]:
        bare = line.strip()
        if _ROW_COUNT.match(bare):
            break
        rows.append([cell.strip() for cell in line.split("|")])
    return _Expectation(columns=columns, rows=rows)


def parse_postgres_text(
    sql_text: str,
    out_text: str | None = None,
    path: str = "<memory>",
    suite: str = "postgres",
) -> TestFile:
    """Parse a PostgreSQL regression ``.sql`` script (plus optional ``.out``)."""
    from repro.formats.registry import get_format

    return get_format("postgres").parse_text(sql_text, companion=out_text, path=path, suite=suite)


def parse_postgres_file(path: str, suite: str = "postgres") -> TestFile:
    """Parse the regression test at ``path`` (pairing ``<name>.out`` if present)."""
    from repro.formats.registry import get_format

    return get_format("postgres").parse_file(path, suite=suite)


__all__ = ["PostgresFormat", "parse_postgres_text", "parse_postgres_file"]
