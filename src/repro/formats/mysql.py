"""The MySQL Test Framework format (``.test`` + ``.result`` files).

A MySQL test file mixes SQL statements (terminated by the current delimiter,
``;`` by default) with runner commands.  Runner commands appear either as
lines starting with ``--`` (``--disable_warnings``, ``--error ER_NO_SUCH_TABLE``,
``--echo text``, ``--source file``) or as bare command words (``let``,
``eval``, ``sleep``, ``connect``, ``disconnect``, ``connection``, ...).

The result file is a transcript: each statement echoed, followed by a
column-header line and tab-separated result rows (Listing 2).  As for
PostgreSQL, SQuaLity aligns the transcript with the statements to derive a
per-statement expectation.
"""

from __future__ import annotations

import re

from repro.core.records import (
    ControlRecord,
    QueryRecord,
    ResultFormat,
    SortMode,
    StatementRecord,
    TestFile,
)
from repro.formats.base import MTR_COMMAND_WORDS, SLT_DIRECTIVE_PATTERN, FormatParser
from repro.formats.registry import register_format
from repro.sqlparser.statements import classify_statement

#: Bare (non ``--``-prefixed) words the MySQL test runner treats as commands.
BARE_COMMANDS = {
    "let",
    "eval",
    "inc",
    "dec",
    "sleep",
    "echo",
    "exit",
    "skip",
    "die",
    "connect",
    "connection",
    "disconnect",
    "source",
    "while",
    "if",
    "delimiter",
    "use",
    "perl",
    "end",
    "reap",
    "send",
    "sync_slave_with_master",
    "save_master_pos",
}

_ERROR_DIRECTIVE = re.compile(r"^--\s*error\s+(.+)$", re.IGNORECASE)
#: sniffing requires the command flush against the dashes (``--error``): a
#: psql prose comment like ``-- error cases follow`` must not look like mtr.
#: Parsing (_ERROR_DIRECTIVE above) stays lenient.
_MTR_COMMAND = re.compile(
    r"^--(" + "|".join(sorted(MTR_COMMAND_WORDS)) + r")\b",
    re.IGNORECASE,
)


@register_format
class MySQLFormat(FormatParser):
    """mysqltest scripts with transcript-style expected results."""

    name = "mysql"
    aliases = ("mariadb",)
    extensions = (".test",)
    description = "MySQL Test Framework scripts (.test + .result transcripts)"
    companion_suffix = ".result"
    companion_dirs = ("r",)

    def parse_text(
        self,
        text: str,
        companion: str | None = None,
        path: str = "<memory>",
        suite: str | None = None,
    ) -> TestFile:
        test_file = self.new_test_file(text, path, suite)
        expectations = _parse_result_file(companion) if companion else {}

        expecting_error: str | None = None
        statement_index = 0
        buffer: list[str] = []
        buffer_start = 1

        def flush_statement(line_number: int) -> None:
            nonlocal buffer, expecting_error, statement_index
            statement_text = "\n".join(buffer).strip().rstrip(";").strip()
            buffer = []
            if not statement_text:
                return
            info = classify_statement(statement_text)
            expectation = expectations.get(statement_index)
            statement_index += 1
            if expecting_error is not None:
                test_file.records.append(
                    StatementRecord(
                        line=line_number,
                        raw=statement_text,
                        sql=statement_text,
                        expect_ok=False,
                        expected_error=expecting_error,
                    )
                )
                expecting_error = None
                return
            if info.is_query and expectation is not None and expectation["rows"] is not None:
                test_file.records.append(
                    QueryRecord(
                        line=line_number,
                        raw=statement_text,
                        sql=statement_text,
                        type_string="T" * max(len(expectation["columns"]), 1),
                        sort_mode=SortMode.NOSORT,
                        result_format=ResultFormat.ROW_WISE,
                        expected_rows=expectation["rows"],
                        expected_column_names=expectation["columns"],
                    )
                )
            else:
                test_file.records.append(
                    StatementRecord(line=line_number, raw=statement_text, sql=statement_text, expect_ok=True)
                )

        for number, line in enumerate(text.splitlines(), start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            if stripped.startswith("--"):
                error_match = _ERROR_DIRECTIVE.match(stripped)
                if error_match:
                    expecting_error = error_match.group(1).strip()
                words = stripped[2:].strip().split()
                command = words[0].lower() if words else ""
                test_file.records.append(ControlRecord(line=number, raw=stripped, command=command, arguments=words[1:]))
                continue
            first_word = stripped.split()[0].lower() if stripped.split() else ""
            if not buffer and first_word in BARE_COMMANDS and first_word != "use":
                words = stripped.rstrip(";").split()
                test_file.records.append(
                    ControlRecord(line=number, raw=stripped, command=words[0].lower(), arguments=words[1:])
                )
                continue
            if not buffer:
                buffer_start = number
            buffer.append(line)
            if stripped.endswith(";"):
                flush_statement(buffer_start)
        if buffer:
            flush_statement(buffer_start)
        return test_file

    def sniff(self, text: str) -> float:
        lines = [line.strip() for line in text.splitlines() if line.strip()]
        if not lines:
            return 0.0
        if any(SLT_DIRECTIVE_PATTERN.match(line) for line in lines):
            return 0.0  # SLT-family directives: not an mtr script
        commands = sum(1 for line in lines if _MTR_COMMAND.match(line))
        bare = sum(
            1
            for line in lines
            if line.split() and line.split()[0].lower() in BARE_COMMANDS and line.split()[0].lower() != "use"
        )
        terminated = sum(1 for line in lines if line.endswith(";"))
        if commands + bare == 0:
            # a pure-SQL script (every statement ';'-terminated, no SLT
            # directives) is a valid mysqltest file: claim it weakly, so it
            # still loses to any format with positive structural markers
            return terminated / (4 * len(lines))
        return (2 * (commands + bare) + terminated) / (2 * len(lines))


def _parse_result_file(result_text: str) -> dict[int, dict]:
    """Align a ``.result`` transcript with statement indexes.

    Returns ``{statement_index: {"columns": [...], "rows": [[...]] | None}}``.
    """
    expectations: dict[int, dict] = {}
    lines = result_text.splitlines()
    index = 0
    statement_index = -1
    block: list[str] = []

    def flush() -> None:
        nonlocal block
        if statement_index < 0:
            block = []
            return
        expectations[statement_index] = _interpret_block(block)
        block = []

    while index < len(lines):
        stripped = lines[index].strip()
        if _looks_like_statement_echo(stripped):
            flush()
            statement_index += 1
            while not stripped.endswith(";") and index + 1 < len(lines) and not _looks_like_statement_echo(lines[index + 1].strip()):
                index += 1
                stripped = lines[index].strip()
        else:
            block.append(lines[index])
        index += 1
    flush()
    return expectations


def _looks_like_statement_echo(line: str) -> bool:
    if not line:
        return False
    first_word = line.split()[0].upper() if line.split() else ""
    return first_word in {
        "SELECT", "INSERT", "UPDATE", "DELETE", "CREATE", "DROP", "ALTER", "BEGIN", "COMMIT", "ROLLBACK",
        "SET", "SHOW", "EXPLAIN", "WITH", "VALUES", "TRUNCATE", "GRANT", "REVOKE", "USE", "ANALYZE",
        "START", "SAVEPOINT", "RELEASE", "LOCK", "UNLOCK", "REPLACE",
    }


def _interpret_block(block: list[str]) -> dict:
    meaningful = [line for line in block if line.strip()]
    if not meaningful:
        return {"columns": [], "rows": None}
    if meaningful[0].startswith("ERROR"):
        return {"columns": [], "rows": None, "error": meaningful[0]}
    columns = meaningful[0].split("\t")
    rows = [line.split("\t") for line in meaningful[1:]]
    return {"columns": columns, "rows": rows}


def parse_mysql_text(
    test_text: str,
    result_text: str | None = None,
    path: str = "<memory>",
    suite: str = "mysql",
) -> TestFile:
    """Parse a MySQL ``.test`` script (plus optional ``.result`` transcript)."""
    from repro.formats.registry import get_format

    return get_format("mysql").parse_text(test_text, companion=result_text, path=path, suite=suite)


def parse_mysql_file(path: str, suite: str = "mysql") -> TestFile:
    """Parse the MySQL test at ``path``, pairing ``r/<name>.result`` if present."""
    from repro.formats.registry import get_format

    return get_format("mysql").parse_file(path, suite=suite)


__all__ = ["MySQLFormat", "BARE_COMMANDS", "parse_mysql_text", "parse_mysql_file"]
