"""``repro.formats`` — the registry-driven native test-format subsystem.

One :class:`~repro.formats.base.FormatParser` subclass per format, registered
with :func:`register_format`; everything else in the library resolves formats
exclusively through this package:

* :func:`get_format` / :func:`available_formats` — name-based lookup,
* :func:`detect_format` — extension + content sniffing when no name is given,
* :func:`parse_test_file` / :func:`parse_test_text` — the parsing entry points
  (``suite_format=None`` auto-detects).

The four shipped formats mirror the paper's subject suites: ``slt`` (SQLite's
sqllogictest), ``duckdb`` (SLT dialect with runner extensions), ``postgres``
(regression scripts + ``.out`` transcripts), ``mysql`` (mysqltest scripts +
``.result`` transcripts).  Adding a fifth format is a single module — see
docs/ARCHITECTURE.md.
"""

from __future__ import annotations

import os

from repro.core.records import TestFile
from repro.errors import TestFormatError
from repro.formats.base import FormatParser, SLT_CONTROL_COMMANDS
from repro.formats.registry import (
    available_formats,
    detect_format,
    get_format,
    register_format,
    registered_parsers,
)

# Importing the format modules registers the four shipped parsers.
from repro.formats.slt import SLTFormat
from repro.formats.duckdb import DuckDBFormat
from repro.formats.postgres import PostgresFormat
from repro.formats.mysql import MySQLFormat


def _detect_for_file(path: str, text: str) -> FormatParser:
    """Detection with the blank-file tolerance file loading needs.

    Blank / comment-only files sniff to nothing but are valid (and empty) in
    every format claiming their extension, so they fall back to the first
    claimant instead of failing; genuinely unrecognisable content still
    raises.
    """
    try:
        return detect_format(path=path, text=text)
    except TestFormatError:
        if any(line.strip() and not line.lstrip().startswith(("#", "--")) for line in text.splitlines()):
            raise
        extension = os.path.splitext(path)[1].lower()
        for candidate in registered_parsers():
            if extension in candidate.extensions:
                return candidate
        raise


def parse_test_file(path: str, suite_format: str | None = None, suite: str | None = None) -> TestFile:
    """Parse the test file at ``path``; auto-detect the format when unnamed."""
    if suite_format:
        return get_format(suite_format).parse_file(path, suite=suite)
    # auto-detect: read once, reusing the text for sniffing and parsing
    text = FormatParser.read_text(path)
    parser = _detect_for_file(path, text)
    return parser.parse_text(text, companion=parser.load_companion(path), path=path, suite=suite)


def parse_test_text(
    text: str,
    suite_format: str | None = None,
    path: str = "<memory>",
    **kwargs,
) -> TestFile:
    """Parse in-memory test text; auto-detect the format when unnamed.

    ``kwargs`` pass through to the parser (``suite=...``, and the transcript
    keywords accepted by the format: ``companion=...``, or the legacy
    ``result_text``/``out_text`` spellings).
    """
    companion = kwargs.pop("companion", None)
    companion = kwargs.pop("result_text", companion)
    companion = kwargs.pop("out_text", companion)
    parser = get_format(suite_format) if suite_format else detect_format(path=path if path != "<memory>" else None, text=text)
    return parser.parse_text(text, companion=companion, path=path, **kwargs)


__all__ = [
    "FormatParser",
    "SLT_CONTROL_COMMANDS",
    "SLTFormat",
    "DuckDBFormat",
    "PostgresFormat",
    "MySQLFormat",
    "register_format",
    "get_format",
    "available_formats",
    "registered_parsers",
    "detect_format",
    "parse_test_file",
    "parse_test_text",
]
