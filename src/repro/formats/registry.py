"""Format registry: look up, enumerate, and auto-detect native test formats.

The registry is the single place the rest of the library resolves formats
through (``core.suite``, the experiments CLI, the examples).  A format is
registered by decorating its :class:`~repro.formats.base.FormatParser`
subclass::

    @register_format
    class MyFormat(FormatParser):
        name = "myformat"
        extensions = (".mytest",)
        ...

:func:`detect_format` implements the sniffing used when no format name is
given: the file extension narrows the candidates, then each candidate scores
the content with its :meth:`~repro.formats.base.FormatParser.sniff` hook and
the best score wins.  Ambiguous extensions (``.test`` is claimed by the SLT,
DuckDB, and MySQL formats) are resolved purely by content.
"""

from __future__ import annotations

import os

from repro.errors import TestFormatError
from repro.formats.base import FormatParser

#: canonical name -> shared parser instance, in registration order (the order
#: doubles as the deterministic tie-break for equal sniff scores)
_REGISTRY: dict[str, FormatParser] = {}
#: every accepted name (canonical + aliases) -> canonical name
_NAMES: dict[str, str] = {}


def register_format(cls: type[FormatParser]) -> type[FormatParser]:
    """Class decorator: instantiate ``cls`` and register it under its names."""
    parser = cls()
    canonical = parser.name.lower()
    _REGISTRY[canonical] = parser
    _NAMES[canonical] = canonical
    for alias in parser.aliases:
        _NAMES[alias.lower()] = canonical
    return cls


def get_format(name: str) -> FormatParser:
    """The registered parser for ``name`` (canonical or alias, case-insensitive)."""
    try:
        return _REGISTRY[_NAMES[name.lower()]]
    except KeyError:
        raise TestFormatError(
            f"unknown test-suite format: {name!r}; known: {available_formats(include_aliases=True)}"
        ) from None


def available_formats(include_aliases: bool = False) -> list[str]:
    """Names of the registered test-suite formats."""
    return sorted(_NAMES if include_aliases else _REGISTRY)


def registered_parsers() -> list[FormatParser]:
    """The registered parser instances, in registration order."""
    return list(_REGISTRY.values())


def detect_format(path: str | None = None, text: str | None = None) -> FormatParser:
    """Identify the format of a test file by extension and/or content.

    ``path`` narrows candidates to formats claiming its extension; ``text``
    (read from ``path`` when omitted but readable) is scored by every
    candidate's ``sniff``.  Raises :class:`TestFormatError` when nothing
    matches — an unclaimed extension with unrecognisable content, an empty
    file, or malformed text no format scores.
    """
    if path is None and text is None:
        raise TestFormatError("detect_format needs a path, text, or both")

    candidates = registered_parsers()
    if path is not None:
        extension = os.path.splitext(path)[1].lower()
        claimed = [parser for parser in candidates if extension in parser.extensions]
        if len(claimed) == 1:
            # an unambiguous extension decides outright: no content sniff that
            # could reject a file its format would happily parse
            return claimed[0]
        if claimed:
            candidates = claimed
        if text is None and os.path.exists(path):
            text = FormatParser.read_text(path)

    if text is None:
        raise TestFormatError(
            f"cannot detect the format of {path!r} from its extension alone; "
            f"candidates: {[parser.name for parser in candidates]}"
        )

    scored = [(parser.sniff(text), parser) for parser in candidates]
    best_score = max((score for score, _ in scored), default=0.0)
    if best_score <= 0.0:
        raise TestFormatError(
            "cannot detect test format: no registered format recognises the content"
            + (f" of {path!r}" if path else "")
        )
    # registration order breaks exact ties deterministically (first wins)
    for score, parser in scored:
        if score == best_score:
            return parser
    raise AssertionError("unreachable")  # pragma: no cover
