"""The :class:`FormatParser` base class: one subclass per native test format.

Every test-suite format SQuaLity understands (SLT, DuckDB, PostgreSQL
regression, MySQL Test Framework — the paper's four subject suites) is a
:class:`FormatParser` subclass registered with
:func:`repro.formats.registry.register_format`.  The base class centralises
everything the four seed parsers used to re-implement independently:

* file reading (UTF-8 with replacement, consistent across formats),
* companion expected-output discovery (``.out`` / ``.result`` files, looked up
  next to the test file and in the sibling directories the real suites use),
* streaming block iteration (:meth:`iter_blocks` — records separated by blank
  lines, comment lines dropped, 1-based line numbers preserved),
* ``skipif`` / ``onlyif`` condition handling and control-record assembly,
* content sniffing hooks used by :func:`repro.formats.detect_format`.

Adding a fifth format is one module: subclass, set ``name`` / ``extensions``,
implement :meth:`parse_text` (and optionally :meth:`sniff`), and decorate with
``@register_format``.
"""

from __future__ import annotations

import os
import re
from abc import ABC, abstractmethod
from typing import Iterator

from repro.core.records import Condition, ControlRecord, TestFile

#: Recognises SLT-family record headers (``statement ok`` / ``query I`` …).
#: Shared negative signal for the MySQL and PostgreSQL sniffers — content with
#: these directives is never an mtr or psql script — and the positive core of
#: the SLT sniffer, so the detectors cannot drift apart.
SLT_DIRECTIVE_PATTERN = re.compile(r"^(statement\s+(ok|error)\b|query\s+\S+)")

#: Control-record command words shared by the SLT format family (SQLite's
#: runner plus the DuckDB extensions).  Exposed here because several formats
#: and the RQ1 feature census consult the same vocabulary.
SLT_CONTROL_COMMANDS = {
    "halt",
    "hash-threshold",
    "mode",
    "set",
    "sleep",
    "restart",
    "reconnect",
    "load",
    "require",
    "loop",
    "endloop",
    "foreach",
    "endfor",
    "unzip",
    "include",
}

#: MySQL Test Framework command words that appear after a ``--`` prefix.
#: Shared by the MySQL sniffer (positive signal) and the PostgreSQL sniffer
#: (negative signal: mtr command lines must not count as psql comments), so
#: the two detectors can never drift apart.
MTR_COMMAND_WORDS = {
    "disable_warnings",
    "enable_warnings",
    "disable_query_log",
    "enable_query_log",
    "disable_result_log",
    "enable_result_log",
    "error",
    "echo",
    "source",
    "sleep",
    "send",
    "reap",
    "let",
    "eval",
    "exit",
    "die",
}


class FormatParser(ABC):
    """Parses one native test-file format into the unified IR.

    Subclasses are stateless: one shared instance per registered format lives
    in the registry, and every ``parse_*`` call is independent.
    """

    #: canonical lowercase format name, e.g. ``"slt"``
    name: str = "abstract"
    #: alternative names accepted by :func:`repro.formats.get_format`
    aliases: tuple[str, ...] = ()
    #: file extensions the format claims (used by suite loading and detection)
    extensions: tuple[str, ...] = ()
    #: one-line human description (shown by ``--list-formats``)
    description: str = ""
    #: suffix of the companion expected-output file (``".out"``, ``".result"``)
    companion_suffix: str | None = None
    #: sibling directories searched for the companion file (``"expected"``, ``"r"``)
    companion_dirs: tuple[str, ...] = ()

    # -- the format-specific part ------------------------------------------------------

    @abstractmethod
    def parse_text(
        self,
        text: str,
        companion: str | None = None,
        path: str = "<memory>",
        suite: str | None = None,
    ) -> TestFile:
        """Parse in-memory ``text`` (plus optional companion transcript)."""

    def sniff(self, text: str) -> float:
        """Score how strongly ``text`` looks like this format (0.0 = not at all).

        Scores are compared across formats by :func:`repro.formats.detect_format`;
        they only need a consistent relative ordering, not calibration.
        """
        return 0.0

    # -- shared file handling ----------------------------------------------------------

    def parse_file(self, path: str, suite: str | None = None) -> TestFile:
        """Parse the test file at ``path``, pairing its companion if present."""
        return self.parse_text(
            self.read_text(path),
            companion=self.load_companion(path),
            path=path,
            suite=suite,
        )

    @staticmethod
    def read_text(path: str) -> str:
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            return handle.read()

    def companion_candidates(self, path: str) -> list[str]:
        """Paths where the expected-output companion of ``path`` may live."""
        if self.companion_suffix is None:
            return []
        base = os.path.splitext(os.path.basename(path))[0]
        directory = os.path.dirname(path)
        candidates = [os.path.splitext(path)[0] + self.companion_suffix]
        for sibling in self.companion_dirs:
            candidates.append(os.path.join(directory, "..", sibling, base + self.companion_suffix))
            candidates.append(os.path.join(directory, sibling, base + self.companion_suffix))
        return candidates

    def load_companion(self, path: str) -> str | None:
        for candidate in self.companion_candidates(path):
            if os.path.exists(candidate):
                return self.read_text(candidate)
        return None

    # -- shared record-stream machinery ------------------------------------------------

    @staticmethod
    def iter_blocks(text: str) -> Iterator[tuple[int, list[str]]]:
        """Stream ``(first_line_number, lines)`` blocks of consecutive non-blank lines.

        Line numbers are 1-based.  Comment-only lines (starting with ``#``)
        are dropped, but a trailing comment after a directive
        (``onlyif mysql # DIV for integer division``) is kept for
        :meth:`strip_comment` to remove later.  This is a generator so huge
        suite files never need to be block-split eagerly.
        """
        current: list[str] = []
        start = 0
        for number, line in enumerate(text.splitlines(), start=1):
            stripped = line.rstrip("\n")
            if stripped.strip() == "":
                if current:
                    yield start, current
                    current = []
                continue
            if stripped.lstrip().startswith("#"):
                continue
            if not current:
                start = number
            current.append(stripped)
        if current:
            yield start, current

    @staticmethod
    def strip_comment(line: str) -> str:
        """Remove a trailing ``# comment`` from a directive line."""
        if "#" in line:
            return line.split("#", 1)[0].rstrip()
        return line

    @staticmethod
    def parse_condition(words: list[str]) -> Condition | None:
        """Interpret a directive as a ``skipif``/``onlyif`` guard, if it is one."""
        if len(words) >= 2 and words[0].lower() in ("skipif", "onlyif"):
            return Condition(kind=words[0].lower(), dbms=words[1].lower())
        return None

    @staticmethod
    def control_record(line: int, raw: str, conditions: list[Condition], words: list[str]) -> ControlRecord:
        """Assemble a :class:`ControlRecord` from a directive line's words."""
        return ControlRecord(
            line=line,
            raw=raw,
            conditions=list(conditions),
            command=words[0].lower() if words else "",
            arguments=words[1:],
        )

    def new_test_file(self, text: str, path: str, suite: str | None) -> TestFile:
        """A :class:`TestFile` shell with the format's default suite name."""
        return TestFile(path=path, suite=suite or self.name, source_lines=len(text.splitlines()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<FormatParser {self.name} extensions={self.extensions}>"
