"""Table 3: percentage of standard-compliant SQL statements per suite (RQ2)."""

from __future__ import annotations

from repro.core.report import format_percentage, format_table
from repro.corpus.profiles import TABLE3_STANDARD_COMPLIANCE
from repro.experiments.base import Experiment, ExperimentNeeds, register_experiment
from repro.experiments.context import ExperimentContext, ExperimentResult

EXPERIMENT_ID = "table3"
TITLE = "Table 3: share of standard-compliant SQL statements"

_SUITES = {"slt": "sqlite", "postgres": "postgres", "duckdb": "duckdb"}


@register_experiment(
    EXPERIMENT_ID,
    TITLE,
    needs=ExperimentNeeds(suites=("slt", "postgres", "duckdb")),
    description="standard-compliance share of each suite's SQL statements",
)
class Table3Experiment(Experiment):
    def finalize(self) -> ExperimentResult:
        return _build(self.context)


def run(context: ExperimentContext) -> ExperimentResult:
    """Back-compat module entry point (see :func:`repro.experiments.registry.run_experiment`)."""
    from repro.experiments.registry import run_experiment

    return run_experiment(EXPERIMENT_ID, context)


def _build(context: ExperimentContext) -> ExperimentResult:
    rows = []
    data: dict = {}
    for suite_name, paper_key in _SUITES.items():
        # both variants assemble from the same persisted per-file partials
        summary = context.analysis.standard_compliance(context.suites[suite_name])
        relaxed = context.analysis.standard_compliance(context.suites[suite_name], count_create_index_as_standard=True)
        paper = TABLE3_STANDARD_COMPLIANCE[paper_key]
        rows.append(
            [
                summary.suite,
                format_percentage(paper["standard_statements"]),
                format_percentage(summary.standard_share),
                format_percentage(paper["exclusively_standard_files"]),
                format_percentage(summary.exclusively_standard_share),
                format_percentage(relaxed.exclusively_standard_share),
            ]
        )
        data[suite_name] = {
            "paper_standard": paper["standard_statements"],
            "measured_standard": summary.standard_share,
            "paper_exclusive_files": paper["exclusively_standard_files"],
            "measured_exclusive_files": summary.exclusively_standard_share,
            "measured_exclusive_files_with_create_index": relaxed.exclusively_standard_share,
        }
    text = format_table(
        ["Suite", "Std stmts (paper)", "Std stmts (measured)", "Excl-std files (paper)", "Excl-std files (measured)", "... counting CREATE INDEX as std"],
        rows,
        title=TITLE,
    )
    return ExperimentResult(experiment_id=EXPERIMENT_ID, title=TITLE, text=text, data=data)
