"""Table 2: non-SQL commands of each DBMS test runner (RQ1)."""

from __future__ import annotations

from repro.analysis.features import feature_support_row
from repro.core.report import format_table
from repro.experiments.base import Experiment, ExperimentNeeds, register_experiment
from repro.experiments.context import ExperimentContext, ExperimentResult

EXPERIMENT_ID = "table2"
TITLE = "Table 2: non-SQL commands of each DBMS test runner"

_FEATURES = ("Include", "Set Variable", "Load", "Loop", "Skiptest", "Multi-Connections", "CLI Commands", "Runner Commands")
_SUITES = ("sqlite", "mysql", "postgres", "duckdb")
_SUITE_TO_CORPUS = {"sqlite": "slt", "mysql": "mysql", "postgres": "postgres", "duckdb": "duckdb"}


@register_experiment(
    EXPERIMENT_ID,
    TITLE,
    needs=ExperimentNeeds(suites=("slt", "postgres", "duckdb", "mysql")),
    description="documented vs measured non-SQL runner commands per suite",
)
class Table2Experiment(Experiment):
    def finalize(self) -> ExperimentResult:
        return _build(self.context)


def run(context: ExperimentContext) -> ExperimentResult:
    """Back-compat module entry point (see :func:`repro.experiments.registry.run_experiment`)."""
    from repro.experiments.registry import run_experiment

    return run_experiment(EXPERIMENT_ID, context)


def _build(context: ExperimentContext) -> ExperimentResult:
    suites = context.all_suites_with_mysql()
    rows = []
    for feature in _FEATURES:
        row = [feature]
        for suite in _SUITES:
            row.append(feature_support_row(suite)[feature])
        rows.append(row)
    documented = format_table(["Feature"] + [name.capitalize() for name in _SUITES], rows, title=TITLE + " (documented runners)")

    empirical_rows = []
    data: dict = {"documented": {suite: feature_support_row(suite) for suite in _SUITES}, "measured": {}}
    for suite in _SUITES:
        corpus = suites[_SUITE_TO_CORPUS[suite]]
        # store-backed incremental census: per-file partials assemble here
        census = context.analysis.command_census(corpus)
        data["measured"][suite] = census
        empirical_rows.append([suite.capitalize(), census["distinct_commands"], census["distinct_cli_commands"], ", ".join(census["feature_families"]) or "-"])
    empirical = format_table(
        ["Suite", "Distinct runner commands", "Distinct CLI commands", "Feature families observed"],
        empirical_rows,
        title="Measured on the generated corpora",
    )
    return ExperimentResult(experiment_id=EXPERIMENT_ID, title=TITLE, text=documented + "\n\n" + empirical, data=data)
