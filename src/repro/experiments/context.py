"""Shared state for experiment drivers: corpora and execution results."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.adapters.pool import AdapterPool
from repro.core.journal import JOURNAL_DIRNAME
from repro.core.records import TestSuite
from repro.core.resilience import ResiliencePolicy, set_default_timeout
from repro.core.transplant import DEFAULT_HOSTS, TransplantMatrix, run_matrix
from repro.corpus import build_all_suites, build_suite
from repro.store import ArtifactStore
from repro.store import artifacts as artifact_store


@dataclass
class ExperimentResult:
    """Output of one experiment: a formatted report plus raw data."""

    experiment_id: str
    title: str
    text: str
    data: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.text


class ExperimentContext:
    """Caches corpora and cross-execution results shared by the experiments.

    ``scale`` scales the number of generated test files per suite (1.0 is the
    laptop-sized default documented in EXPERIMENTS.md); ``seed`` makes the
    whole campaign deterministic.

    ``store_dir`` points the persistent artifact store somewhere other than
    the default (``REPRO_STORE_DIR`` or ``~/.cache/repro-store``);
    ``use_store=False`` runs the whole campaign storeless (the CLI's
    ``--no-store``).  Corpora and donor runs are then loaded from disk when a
    previous campaign — in any process — already produced them.

    ``incremental`` (the default) assembles store-backed campaigns file by
    file: matrix cells whose suite changed re-execute only the changed files
    and load the rest from the ``file-results`` namespace.
    ``incremental=False`` (the CLI's ``--no-incremental``) re-executes whole
    suites on any suite-level store miss.  Corpus builds reuse per-file
    donor recordings (``file-donor``) whenever the store is on — that reuse
    is part of the store layer itself (disable with ``use_store=False``),
    not of this switch.

    ``timeout_seconds`` (the CLI's ``--timeout``) sets the process-wide
    statement/watchdog timeout (see
    :func:`repro.core.resilience.set_default_timeout`); ``resilience``
    overrides the whole campaign resilience policy, which is threaded into
    every matrix cell.  :meth:`infra_failures` reports the unrecovered
    infrastructure faults of every matrix computed so far — the CLI maps a
    non-empty list to its "partial results" exit code.
    """

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 0,
        hosts: tuple[str, ...] = DEFAULT_HOSTS,
        workers: int = 1,
        executor: str = "auto",
        store_dir: str | None = None,
        use_store: bool = True,
        incremental: bool = True,
        timeout_seconds: float | None = None,
        resilience: ResiliencePolicy | None = None,
        journal: "bool | str | os.PathLike | None" = None,
    ):
        self.scale = scale
        self.seed = seed
        self.hosts = hosts
        self.incremental = incremental
        if timeout_seconds is not None:
            set_default_timeout(timeout_seconds)
        self.timeout_seconds = timeout_seconds
        #: campaign resilience policy; None means every cell resolves
        #: :func:`repro.core.resilience.default_policy` at execution time
        self.resilience = resilience
        #: write-ahead journal setting threaded into every campaign
        #: (see :func:`repro.core.transplant.run_matrix`): ``True`` journals
        #: under the store, a path journals there, ``None`` disables.  The
        #: plain and translated matrices are distinct campaigns and keep
        #: distinct journal files.
        self.journal = journal
        #: resolved artifact-store argument threaded through every corpus
        #: build and campaign: an explicit store, the process default
        #: (``DEFAULT``), or ``None`` for storeless
        self.store: "ArtifactStore | str | None"
        if not use_store:
            self.store = None
        elif store_dir is not None:
            self.store = ArtifactStore(root=store_dir)
        else:
            self.store = artifact_store.DEFAULT
        #: worker-pool width used for every cross-execution campaign; all
        #: table/figure drivers inherit it through the shared matrices
        self.workers = workers
        self.executor = executor
        self._suites: dict[str, TestSuite] | None = None
        self._mysql_suite: TestSuite | None = None
        self._matrix: TransplantMatrix | None = None
        self._translated_matrix: TransplantMatrix | None = None
        #: campaign-lifetime adapter pool: the plain and translated matrices
        #: (and any driver-level transplants routed through the context) share
        #: leased adapters instead of rebuilding them per transplant
        self.adapter_pool = AdapterPool()
        self._worker_pool = None
        self._analysis = None
        #: cells resolved by streaming passes (:mod:`repro.experiments.stream`)
        #: that are not part of a full adopted matrix; keyed by
        #: :class:`~repro.experiments.base.CellKey`
        self._stream_cells: dict = {}

    @property
    def worker_pool(self):
        """The context's persistent sharded-execution pool (``workers > 1``)."""
        if self.workers > 1 and self._worker_pool is None:
            from repro.core.parallel import WorkerPool

            self._worker_pool = WorkerPool(self.workers, self.executor)
        return self._worker_pool

    @property
    def analysis(self):
        """The campaign's incremental RQ1/RQ2 analyzer (store- and pool-backed).

        Every analysis-driven experiment (tables 2-3, figures 1-3) scans
        suites through this :class:`~repro.analysis.incremental.SuiteAnalyzer`
        instead of re-scanning whole suites: per-file partials are served
        from the store's ``file-analysis`` namespace and only changed files
        are re-analyzed, fanned over the same worker pool the campaigns
        execute on.  Storeless contexts (``use_store=False``) degrade to
        direct scans — value-identical either way.
        """
        if self._analysis is None:
            from repro.analysis.incremental import SuiteAnalyzer

            self._analysis = SuiteAnalyzer(
                store=self.store,
                workers=self.workers,
                executor=self.executor,
                # resolved per call: analysis shares the campaign's persistent
                # pool, including one created after the analyzer was built
                worker_pool=lambda: self.worker_pool,
            )
        return self._analysis

    def close(self) -> None:
        """Release pooled adapters and shut down campaign workers.

        The context stays usable afterwards: the next campaign simply starts
        from an empty pool.
        """
        if self._worker_pool is not None:
            self._worker_pool.shutdown()
            self._worker_pool = None
        self.adapter_pool.close()
        self.adapter_pool = AdapterPool()

    def __enter__(self) -> "ExperimentContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- corpora -------------------------------------------------------------------

    @property
    def suites(self) -> dict[str, TestSuite]:
        """The three executable suites (SLT, PostgreSQL, DuckDB).

        Donor recording of any files the store cannot serve is sharded over
        the context's persistent worker pool (``workers > 1``), the same pool
        the campaigns execute on.
        """
        if self._suites is None:
            self._suites = build_all_suites(
                seed=self.seed,
                scale=self.scale,
                store=self.store,
                workers=self.workers,
                executor=self.executor,
                worker_pool=self.worker_pool,
            )
        return self._suites

    @property
    def mysql_suite(self) -> TestSuite:
        """The MySQL corpus (analysed for RQ1/Figure 1, not executed)."""
        if self._mysql_suite is None:
            from repro.corpus.generate import DEFAULT_FILE_COUNT

            file_count = max(3, int(round(DEFAULT_FILE_COUNT["mysql"] * self.scale)))
            self._mysql_suite = build_suite(
                "mysql",
                file_count=file_count,
                seed=self.seed,
                store=self.store,
                workers=self.workers,
                executor=self.executor,
                worker_pool=self.worker_pool,
            )
        return self._mysql_suite

    def all_suites_with_mysql(self) -> dict[str, TestSuite]:
        suites = dict(self.suites)
        suites["mysql"] = self.mysql_suite
        return suites

    # -- execution results -----------------------------------------------------------

    @property
    def matrix(self) -> TransplantMatrix:
        """The full cross-execution matrix (every suite on every host)."""
        if self._matrix is None:
            self._matrix = run_matrix(
                self.suites,
                hosts=self.hosts,
                workers=self.workers,
                executor=self.executor,
                adapter_pool=self.adapter_pool,
                worker_pool=self.worker_pool,
                store=self.store,
                incremental=self.incremental,
                resilience=self.resilience,
                journal=self.journal,
            )
        return self._matrix

    @property
    def translated_matrix(self) -> TransplantMatrix:
        """The same matrix with the cross-dialect translator enabled (ablation)."""
        if self._translated_matrix is None:
            self._translated_matrix = run_matrix(
                self.suites,
                hosts=self.hosts,
                translate_dialect=True,
                workers=self.workers,
                executor=self.executor,
                # donor-on-donor runs are translation no-ops: reuse them from
                # the plain matrix when it has already been computed
                reuse_donor_runs_from=self._matrix,
                # both matrices share the context's pools: host adapters and
                # sharded workers survive from the plain campaign into this one
                adapter_pool=self.adapter_pool,
                worker_pool=self.worker_pool,
                store=self.store,
                incremental=self.incremental,
                resilience=self.resilience,
                journal=self.journal,
            )
        return self._translated_matrix

    def journal_location(self) -> str | None:
        """Where this context's campaign journals live, or None when off.

        ``journal=True`` resolves to the store's ``journals/`` directory;
        a path setting is returned as given.  Used by the CLI to print the
        exact ``--resume-from`` target on degraded exits.
        """
        if self.journal is None or self.journal is False:
            return None
        if self.journal is True:
            store = artifact_store.active_store(self.store)
            if store is None:
                return None
            return str(Path(store.root) / JOURNAL_DIRNAME)
        return str(self.journal)

    def donor_result(self, suite: str):
        """The donor-on-donor transplant result for one suite."""
        from repro.core.transplant import DONOR_OF_SUITE

        return self.matrix.get(suite, DONOR_OF_SUITE[suite])

    def suite_names(self) -> tuple[str, ...]:
        """The executable suite names in corpus (and campaign) order."""
        return tuple(self.suites)

    def built_suite_names(self) -> tuple[str, ...]:
        """Suite names if the corpora are already built, else () — never builds."""
        return tuple(self._suites) if self._suites is not None else ()

    # -- streaming-pass cell cache ---------------------------------------------------

    def peek_cell(self, key):
        """The already-computed result for one matrix cell, or None.

        Consulted by the streaming engine before executing a cell: earlier
        streaming passes and already-computed full matrices both count, so a
        warm context resolves cells without re-running anything.  Never
        triggers a campaign.
        """
        result = self._stream_cells.get(key)
        if result is not None:
            return result
        matrix = self._translated_matrix if key.translate else self._matrix
        if matrix is not None:
            return matrix.entries.get((key.suite, key.host))
        return None

    def note_stream_cell(self, key, result) -> None:
        """Record one cell executed by a streaming pass (see :meth:`peek_cell`)."""
        self._stream_cells[key] = result

    def adopt_matrix(self, matrix: TransplantMatrix, translated: bool = False) -> None:
        """Install a full-grid matrix assembled by a streaming pass.

        Later reads of :attr:`matrix` / :attr:`translated_matrix` (and
        :meth:`donor_result`) then resolve from the pass instead of launching
        a fresh campaign.  A matrix the context already computed wins — the
        pass drew its cells from it anyway.
        """
        names = self.built_suite_names()
        if not names or not matrix.is_full_grid(names, self.hosts):
            return
        if translated:
            if self._translated_matrix is None:
                self._translated_matrix = matrix
        elif self._matrix is None:
            self._matrix = matrix

    def infra_failures(self) -> list:
        """Unrecovered infrastructure faults across every computed matrix.

        Streaming passes contribute the cells they executed; fault reports
        shared between a matrix and the stream cache (adopted matrices,
        donor-cell reuse) are counted once.  Only work that already happened
        is consulted — asking for failures must not trigger a campaign.
        """
        failures: list = []
        seen: set[int] = set()
        for matrix in (self._matrix, self._translated_matrix):
            if matrix is not None:
                for failure in matrix.infra_failures():
                    seen.add(id(failure))
                    failures.append(failure)
        for result in self._stream_cells.values():
            for failure in result.infra_failures:
                if id(failure) not in seen:
                    seen.add(id(failure))
                    failures.append(failure)
        return failures
