"""Figure 2: distribution of SQL statement types in each DBMS test suite (RQ2)."""

from __future__ import annotations

from repro.analysis.statements import FIGURE2_STATEMENT_TYPES
from repro.core.report import format_percentage, format_table
from repro.experiments.base import Experiment, ExperimentNeeds, register_experiment
from repro.experiments.context import ExperimentContext, ExperimentResult

EXPERIMENT_ID = "figure2"
TITLE = "Figure 2: distribution of SQL statement types per test suite"

_SUITES = ("slt", "postgres", "duckdb")


@register_experiment(
    EXPERIMENT_ID,
    TITLE,
    needs=ExperimentNeeds(suites=_SUITES),
    description="SQL statement-type distribution per executable suite",
)
class Figure2Experiment(Experiment):
    def finalize(self) -> ExperimentResult:
        return _build(self.context)


def run(context: ExperimentContext) -> ExperimentResult:
    """Back-compat module entry point (see :func:`repro.experiments.registry.run_experiment`)."""
    from repro.experiments.registry import run_experiment

    return run_experiment(EXPERIMENT_ID, context)


def _build(context: ExperimentContext) -> ExperimentResult:
    distributions = {name: context.analysis.statement_type_distribution(context.suites[name]) for name in _SUITES}
    rows = []
    for stype in FIGURE2_STATEMENT_TYPES:
        row = [stype]
        for name in _SUITES:
            row.append(format_percentage(distributions[name].get(stype, 0.0)))
        rows.append(row)
    # Aggregate everything else so the columns sum to 100%.
    other = ["(other)"]
    for name in _SUITES:
        covered = sum(distributions[name].get(stype, 0.0) for stype in FIGURE2_STATEMENT_TYPES)
        other.append(format_percentage(max(0.0, 1.0 - covered)))
    rows.append(other)
    text = format_table(["Statement type", "SQLite (SLT)", "PostgreSQL", "DuckDB"], rows, title=TITLE)
    note = (
        "\nSELECT/INSERT/CREATE TABLE dominate every suite; PRAGMA appears only in DuckDB,\n"
        "SET / CLI commands / COPY only in PostgreSQL — the Figure 2 pattern."
    )
    return ExperimentResult(experiment_id=EXPERIMENT_ID, title=TITLE, text=text + note, data=distributions)
