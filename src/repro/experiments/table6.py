"""Table 6: failure-reason breakdown for cross-DBMS execution (RQ4)."""

from __future__ import annotations

from repro.core.classification import IncompatibilityCategory, category_histogram, classify_failures, sample_failures
from repro.core.report import format_table
from repro.core.runner import RecordOutcome
from repro.experiments.base import CellKey, Experiment, ExperimentNeeds, register_experiment
from repro.experiments.context import ExperimentContext, ExperimentResult

EXPERIMENT_ID = "table6"
TITLE = "Table 6: reasons for failed test cases when executing suites across DBMSs"

#: (suite, host) pairs in the paper's column order (donor columns excluded).
_PAIRS = (
    ("slt", "duckdb"),
    ("slt", "postgres"),
    ("slt", "mysql"),
    ("duckdb", "sqlite"),
    ("duckdb", "postgres"),
    ("duckdb", "mysql"),
    ("postgres", "sqlite"),
    ("postgres", "duckdb"),
    ("postgres", "mysql"),
)

_CATEGORY_ORDER = (
    IncompatibilityCategory.STATEMENTS,
    IncompatibilityCategory.FUNCTIONS,
    IncompatibilityCategory.TYPES,
    IncompatibilityCategory.OPERATORS,
    IncompatibilityCategory.CONFIGURATIONS,
    IncompatibilityCategory.SEMANTIC,
    IncompatibilityCategory.MISC,
)


@register_experiment(
    EXPERIMENT_ID,
    TITLE,
    needs=ExperimentNeeds(
        suites=("slt", "postgres", "duckdb"),
        cells=tuple(CellKey(suite, host) for suite, host in _PAIRS),
    ),
    description="failure-reason breakdown for every off-diagonal matrix cell",
)
class Table6Experiment(Experiment):
    def finalize(self) -> ExperimentResult:
        return _build(self)


def run(context: ExperimentContext) -> ExperimentResult:
    """Back-compat module entry point (see :func:`repro.experiments.registry.run_experiment`)."""
    from repro.experiments.registry import run_experiment

    return run_experiment(EXPERIMENT_ID, context)


def _build(experiment: Table6Experiment) -> ExperimentResult:
    context = experiment.context
    columns = []
    data: dict = {}
    for suite, host in _PAIRS:
        transplant = experiment.cell(suite, host)
        failures = transplant.result.all_failures()
        # SLT failures are analysed exhaustively; the other suites are sampled
        # (100 failures per pair), following the paper's methodology.
        if suite == "slt":
            analysed = failures
        else:
            analysed = sample_failures(failures, sample_size=100, seed=context.seed)
        histogram = category_histogram(classify_failures(analysed, scheme="incompatibility"))
        crash_count = sum(1 for file_result in transplant.result.files for record in file_result.results if record.outcome is RecordOutcome.CRASH)
        hang_count = sum(1 for file_result in transplant.result.files for record in file_result.results if record.outcome is RecordOutcome.HANG)
        column = {category.value: histogram.get(category, 0) for category in _CATEGORY_ORDER}
        column["Timeout"] = hang_count
        column["Crash"] = crash_count
        column["analysed"] = len(analysed)
        columns.append(((suite, host), column))
        data[f"{suite}->{host}"] = column

    headers = ["Failed reason"] + [f"{suite}->{host}" for (suite, host), _ in columns]
    rows = []
    for category in _CATEGORY_ORDER:
        rows.append([category.value] + [column[category.value] for _, column in columns])
    rows.append(["Timeout"] + [column["Timeout"] for _, column in columns])
    rows.append(["Crash"] + [column["Crash"] for _, column in columns])
    rows.append(["(analysed failures)"] + [column["analysed"] for _, column in columns])
    text = format_table(headers, rows, title=TITLE)
    note = (
        "\nShape to compare with the paper: unsupported Statements dominate the DuckDB and\n"
        "PostgreSQL suites on every host, while SLT failures are almost entirely Semantic\n"
        "(the '/' division difference); crashes appear only for DuckDB and MySQL hosts."
    )
    return ExperimentResult(experiment_id=EXPERIMENT_ID, title=TITLE, text=text + note, data=data)
