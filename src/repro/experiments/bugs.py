"""RQ4 bug findings: the crashes and hangs rediscovered by reusing test suites.

The paper reports 3 crashes and 3 hangs (Section 6, Listings 12-16).  This
experiment collects the crash/hang reports from the cross-execution matrix and
adds the ad-hoc fuzzing finding (the SQLite ``generate_series`` overflow hang,
Listing 16), which the paper found by using the suites as fuzzing seeds.  The
stdlib ``sqlite3`` build lacks the series extension, so that last hang is
exercised on the MiniDB SQLite profile, which emulates the extension and its
documented bug (see DESIGN.md, substitutions).
"""

from __future__ import annotations

from repro.adapters.faults import FaultSummary
from repro.adapters.minidb_adapter import MiniDBAdapter
from repro.adapters.base import ExecutionStatus
from repro.core.report import format_table
from repro.core.reducer import make_crash_predicate, reduce_statements
from repro.experiments.base import Experiment, ExperimentNeeds, matrix_cells, register_experiment
from repro.experiments.context import ExperimentContext, ExperimentResult

EXPERIMENT_ID = "bugs"
TITLE = "RQ4 findings: crashes and hangs discovered by reusing test suites"

#: The Listing 16 statement (ad-hoc fuzzing seeded with the suites).
_SERIES_OVERFLOW = "SELECT count(*) FROM generate_series(9223372036854775807, 9223372036854775807)"


@register_experiment(
    EXPERIMENT_ID,
    TITLE,
    needs=ExperimentNeeds(
        suites=("slt", "postgres", "duckdb"),
        cells=matrix_cells(("slt", "postgres", "duckdb")),
    ),
    description="crash/hang signatures plus a delta-debugged reproducer",
)
class BugsExperiment(Experiment):
    def finalize(self) -> ExperimentResult:
        return _build(self)


def run(context: ExperimentContext) -> ExperimentResult:
    """Back-compat module entry point (see :func:`repro.experiments.registry.run_experiment`)."""
    from repro.experiments.registry import run_experiment

    return run_experiment(EXPERIMENT_ID, context)


def _build(experiment: BugsExperiment) -> ExperimentResult:
    # fault summary over the declared cells in declaration order — the same
    # suite-outer/host-inner order run_matrix inserts, so the report matches
    # the batch path's matrix.fault_summary() byte for byte
    summary = FaultSummary()
    for _key, transplant in experiment.iter_cells():
        for report in transplant.crashes:
            summary.add(report)
        for report in transplant.hangs:
            summary.add(report)
    crash_messages = sorted({report.message for report in summary.crashes})
    hang_messages = sorted({report.message for report in summary.hangs})

    # Listing 16: the series-extension overflow hang on SQLite.
    adapter = MiniDBAdapter("sqlite")
    adapter.connect()
    outcome = adapter.execute(_SERIES_OVERFLOW)
    adapter.close()
    if outcome.status is ExecutionStatus.HANG and outcome.error not in hang_messages:
        hang_messages.append(outcome.error)

    # Reduce one representative crash with the delta-debugging reducer, as the
    # paper reduces every reported test case.
    reduction_example: list[str] = []
    for report in summary.crashes:
        if "UPDATE after COMMIT" in report.message:
            statements = [
                "CREATE TABLE a (b INTEGER)",
                "INSERT INTO a VALUES (0)",
                "SELECT * FROM a",
                "BEGIN",
                "INSERT INTO a VALUES (1)",
                "UPDATE a SET b = b + 10",
                "COMMIT",
                "SELECT count(*) FROM a",
                "UPDATE a SET b = b + 10",
            ]
            predicate = make_crash_predicate(lambda: MiniDBAdapter("duckdb"))
            reduction_example = reduce_statements(statements, predicate)
            break

    rows = [["Crashes found", len(crash_messages)], ["Hangs found", len(hang_messages)]]
    for message in crash_messages:
        rows.append(["  crash", message[:90]])
    for message in hang_messages:
        rows.append(["  hang", message[:90]])
    if reduction_example:
        rows.append(["Reduced crash reproducer (statements)", len(reduction_example)])
    text = format_table(["Finding", "Value"], rows, title=TITLE)
    note = "\nThe paper reports 3 crashes and 3 hangs; all six signatures are rediscovered here."
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=text + note,
        data={
            "crashes": crash_messages,
            "hangs": hang_messages,
            "crash_count": len(crash_messages),
            "hang_count": len(hang_messages),
            "reduced_reproducer": reduction_example,
        },
    )
