"""Table 4: running donor test suites against their donor DBMS (RQ3)."""

from __future__ import annotations

from repro.core.records import ControlRecord
from repro.core.report import format_table
from repro.corpus.profiles import TABLE4_DONOR_EXECUTION
from repro.experiments.base import Experiment, ExperimentNeeds, donor_cells, register_experiment
from repro.experiments.context import ExperimentContext, ExperimentResult

EXPERIMENT_ID = "table4"
TITLE = "Table 4: running donor test suites against the donor"

_SUITES = {"slt": "sqlite", "postgres": "postgres", "duckdb": "duckdb"}


@register_experiment(
    EXPERIMENT_ID,
    TITLE,
    needs=ExperimentNeeds(suites=("slt", "postgres", "duckdb"), cells=donor_cells("slt", "postgres", "duckdb")),
    description="donor-on-donor execution counts (RQ3) vs the paper",
)
class Table4Experiment(Experiment):
    def finalize(self) -> ExperimentResult:
        return _build(self)


def run(context: ExperimentContext) -> ExperimentResult:
    """Back-compat module entry point (see :func:`repro.experiments.registry.run_experiment`)."""
    from repro.experiments.registry import run_experiment

    return run_experiment(EXPERIMENT_ID, context)


def _build(experiment: Table4Experiment) -> ExperimentResult:
    context = experiment.context
    rows = []
    data: dict = {}
    for suite_name, paper_key in _SUITES.items():
        # the paper keys double as the donor host names
        transplant = experiment.cell(suite_name, paper_key)
        result = transplant.result
        suite = context.suites[suite_name]
        # PostgreSQL "omitted" cases are psql meta-commands the runner records
        # but does not execute; SLT / DuckDB skips come from skipif / require.
        cli_records = sum(
            1
            for test_file in suite.files
            for record in test_file.records
            if isinstance(record, ControlRecord) and record.command.startswith("psql:")
        )
        total = result.total_cases + cli_records
        executed = result.executed_cases
        failed = result.failed_cases
        paper = TABLE4_DONOR_EXECUTION[paper_key]
        rows.append(
            [
                transplant.donor.capitalize(),
                paper["total"],
                paper["executed"],
                paper["failed"],
                total,
                executed,
                failed,
            ]
        )
        data[suite_name] = {
            "paper": paper,
            "measured": {
                "total": total,
                "executed": executed,
                "failed": failed,
                "skipped": result.skipped_cases + cli_records,
                "executed_share": executed / total if total else 0.0,
                "failed_share": failed / executed if executed else 0.0,
            },
        }
    text = format_table(
        ["DBMS", "Total (paper)", "Executed (paper)", "Failed (paper)", "Total (measured)", "Executed (measured)", "Failed (measured)"],
        rows,
        title=TITLE,
    )
    note = (
        "\nMeasured counts are at corpus scale; the preserved shape is the *rates*: SLT executes\n"
        "~80% of its cases with almost no failures, DuckDB pre-filters the most cases (require),\n"
        "and PostgreSQL has the highest donor failure rate (~11% of executed cases)."
    )
    return ExperimentResult(experiment_id=EXPERIMENT_ID, title=TITLE, text=text + note, data=data)
