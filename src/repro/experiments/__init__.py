"""Experiment drivers: one module per table/figure of the paper's evaluation.

Every experiment implements ``run(context) -> ExperimentResult``; the shared
:class:`~repro.experiments.context.ExperimentContext` caches the generated
corpora and the cross-execution matrix so that benchmarks regenerating several
tables do not repeat the expensive steps.

Use :func:`repro.experiments.registry.run_experiment` to run one by id
(``"table4"``, ``"figure2"``, ...), or ``python -m repro.experiments`` for the
command-line interface.
"""

from repro.experiments.context import ExperimentContext, ExperimentResult
from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["ExperimentContext", "ExperimentResult", "EXPERIMENTS", "run_experiment"]
