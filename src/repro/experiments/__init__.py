"""Experiment drivers: one module per table/figure of the paper's evaluation.

Experiments are registered declaratively with
:func:`~repro.experiments.base.register_experiment`, stating up front which
corpora and campaign-matrix cells they need
(:class:`~repro.experiments.base.ExperimentNeeds`).  The streaming engine
(:func:`~repro.experiments.stream.stream_experiments`) unions those needs,
executes each unique cell exactly once per pass, and yields each experiment's
result the moment its last cell lands; ``run_experiment``/``run_all`` are
batch wrappers over the same pass.  The shared
:class:`~repro.experiments.context.ExperimentContext` caches the generated
corpora and every executed cell, so repeated runs do not repeat the expensive
steps.

Use :func:`repro.experiments.registry.run_experiment` to run one by id
(``"table4"``, ``"figure2"``, ...), or ``python -m repro.experiments`` for the
command-line interface (``--stream`` prints results as they complete).
"""

from repro.experiments.base import (
    CellKey,
    Experiment,
    ExperimentNeeds,
    donor_cells,
    experiment_entries,
    matrix_cells,
    register_experiment,
)
from repro.experiments.context import ExperimentContext, ExperimentResult
from repro.experiments.registry import EXPERIMENTS, run_all, run_experiment
from repro.experiments.stream import stream_experiments

__all__ = [
    "CellKey",
    "EXPERIMENTS",
    "Experiment",
    "ExperimentContext",
    "ExperimentNeeds",
    "ExperimentResult",
    "donor_cells",
    "experiment_entries",
    "matrix_cells",
    "register_experiment",
    "run_all",
    "run_experiment",
    "stream_experiments",
]
