"""Command line: ``python -m repro.experiments [experiment-id ...] [--scale S] [--seed N]``.

``python -m repro.experiments store {stats,gc,audit,clear}`` manages the
persistent artifact store (inspect footprint, trim to budget, verify and
repair after a crash, wipe) without deleting ``~/.cache/repro-store``
blindly.

Campaigns run under signal-aware shutdown: the first SIGINT/SIGTERM drains —
in-flight files finish and flush, remaining work degrades to resumable
partial results (exit code 2) — and a second signal exits immediately.  With
``--journal`` (or ``--resume-from``) progress is additionally journaled to a
durable write-ahead log, so even a SIGKILL'd campaign resumes with only its
in-flight work re-executed.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.shutdown import signal_aware_shutdown
from repro.errors import UnknownExperimentError
from repro.experiments.context import ExperimentContext
from repro.experiments.registry import EXPERIMENTS, experiment_entries, get_experiment_entry
from repro.experiments.stream import run_batch, stream_experiments


def _resume_command(argv: list[str], location: str) -> str:
    """The exact command that resumes this campaign from its journal."""
    cleaned: list[str] = []
    skip_value = False
    for token in argv:
        if skip_value:
            skip_value = False
            continue
        if token in ("--journal", "--resume-from"):
            skip_value = token == "--resume-from"
            continue
        if token.startswith("--resume-from="):
            continue
        cleaned.append(token)
    return "python -m repro.experiments " + " ".join(cleaned + ["--resume-from", location])


def _print_formats() -> None:
    from repro.formats import registered_parsers

    for parser in registered_parsers():
        aliases = f" (aliases: {', '.join(parser.aliases)})" if parser.aliases else ""
        extensions = ", ".join(parser.extensions)
        print(f"{parser.name:10s} {extensions:20s} {parser.description}{aliases}")


def _print_adapters() -> None:
    from repro.adapters import adapter_entries

    for entry in adapter_entries():
        aliases = f" (aliases: {', '.join(entry.aliases)})" if entry.aliases else ""
        print(f"{entry.name:12s} {entry.description}{aliases}")


def _print_experiments() -> None:
    for entry in experiment_entries():
        needs = entry.needs
        parts = []
        if needs.suites:
            parts.append(f"suites: {', '.join(needs.suites)}")
        if needs.cells:
            parts.append(f"{len(needs.cells)} matrix cell(s)")
        needs_text = "; ".join(parts) if parts else "pure analysis"
        description = f" — {entry.description}" if entry.description else ""
        print(f"{entry.id:10s} {entry.title}{description}")
        print(f"{'':10s}   needs: {needs_text}")


def _format_bytes(count: int) -> str:
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{int(count)} B"  # pragma: no cover - unreachable


def store_main(argv: list[str]) -> int:
    """``python -m repro.experiments store {stats,gc,audit,clear}``."""
    from repro.store import ArtifactStore, get_default_store

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments store",
        description="Inspect and maintain the persistent artifact store (see docs/STORE.md)",
    )
    parser.add_argument("action", choices=("stats", "gc", "audit", "clear"), help="stats: footprint + counters; gc: recount and evict to budget; audit: digest-verify every artifact, delete corruption and tmp leftovers; clear: delete every artifact")
    parser.add_argument("--store-dir", default=None, metavar="PATH", help="store root (default: $REPRO_STORE_DIR or ~/.cache/repro-store)")
    parser.add_argument("--max-bytes", type=int, default=None, metavar="N", help="gc only: trim to N bytes instead of the store's steady-state budget")
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    arguments = parser.parse_args(argv)
    if arguments.max_bytes is not None and arguments.max_bytes <= 0:
        parser.error("--max-bytes must be positive")

    store = ArtifactStore(root=arguments.store_dir) if arguments.store_dir else get_default_store()

    if arguments.action == "stats":
        payload = store.snapshot()
        payload["namespaces"] = store.namespace_stats()
        payload["max_bytes"] = store.max_bytes
        if arguments.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(f"store root:  {payload['root']}")
            print(f"entries:     {payload['entries']}")
            print(f"bytes:       {_format_bytes(payload['bytes'])} (budget {_format_bytes(store.max_bytes)})")
            print(f"this-process counters: hits={payload['hits']} misses={payload['misses']} writes={payload['writes']} evictions={payload['evictions']} errors={payload['errors']}")
            if payload["namespaces"]:
                print("namespaces:")
                for namespace, bucket in payload["namespaces"].items():
                    print(f"  {namespace:15s} {bucket['entries']:6d} entries  {_format_bytes(bucket['bytes'])}")
            else:
                print("namespaces:  (empty)")
        return 0

    if arguments.action == "audit":
        summary = store.audit()
        if arguments.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(
                f"audit: {summary['verified']} artifact(s) verified, {summary['corrupt']} corrupt deleted, "
                f"{summary['tmp_swept']} tmp leftover(s) swept ({summary['root']})"
            )
            for relative in summary["corrupt_paths"]:
                print(f"  deleted {relative}")
        return 0

    if arguments.action == "gc":
        summary = store.gc(max_bytes=arguments.max_bytes)
        if arguments.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(
                f"gc: {_format_bytes(summary['bytes_before'])} -> {_format_bytes(summary['bytes_after'])} "
                f"({summary['evicted']} evicted, budget {_format_bytes(summary['max_bytes'])})"
            )
        return 0

    # clear
    entries = store.entry_count
    store.clear()
    if arguments.json:
        print(json.dumps({"cleared": entries}))
    else:
        print(f"cleared {entries} artifact(s) from {store.root}")
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "store":
        return store_main(argv[1:])
    parser = argparse.ArgumentParser(description="Run SQuaLity reproduction experiments (tables and figures)")
    parser.add_argument("experiments", nargs="*", default=[], help="experiment ids (default: all); e.g. table4 figure2 bugs")
    parser.add_argument("--scale", type=float, default=1.0, help="corpus scale factor (default 1.0)")
    parser.add_argument("--seed", type=int, default=0, help="corpus generation seed (default 0)")
    parser.add_argument("--workers", type=int, default=1, help="worker-pool width for suite execution (default 1 = serial)")
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-statement timeout and watchdog deadline for adapters that support one "
        "(default: $REPRO_TIMEOUT_SECONDS or 5s)",
    )
    parser.add_argument(
        "--store-dir",
        default=None,
        metavar="PATH",
        help="artifact-store directory for corpora and donor runs (default: $REPRO_STORE_DIR or ~/.cache/repro-store)",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="disable the persistent artifact store (regenerate corpora and re-record donor runs)",
    )
    parser.add_argument(
        "--incremental",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="assemble store-backed campaigns from per-file artifacts, executing only changed files "
        "(--no-incremental re-executes whole suites on any suite-level store miss)",
    )
    parser.add_argument(
        "--journal",
        action="store_true",
        help="keep a durable write-ahead journal of campaign progress under the store "
        "(<store>/journals/), so a killed campaign can be resumed with --resume-from",
    )
    parser.add_argument(
        "--resume-from",
        default=None,
        metavar="PATH",
        help="resume a journaled campaign: PATH is the journal file or the journals directory "
        "a previous run wrote (implies --journal there); warm cells replay from the store, "
        "only in-flight work re-executes",
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help="stream results as they complete: the single campaign pass prints each experiment "
        "the moment its last matrix cell lands (batch mode prints in registry order)",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    parser.add_argument(
        "--list-experiments",
        action="store_true",
        help="list registered experiments with descriptions and declared matrix needs, and exit",
    )
    parser.add_argument("--list-formats", action="store_true", help="list registered test-suite formats and exit")
    parser.add_argument("--list-adapters", action="store_true", help="list registered DBMS adapters and exit")
    arguments = parser.parse_args(argv)

    if arguments.list:
        for experiment_id, (title, _runner) in EXPERIMENTS.items():
            print(f"{experiment_id:10s} {title}")
        return 0
    if arguments.list_experiments:
        _print_experiments()
        return 0
    if arguments.list_formats:
        _print_formats()
        return 0
    if arguments.list_adapters:
        _print_adapters()
        return 0

    if arguments.timeout is not None and arguments.timeout <= 0:
        parser.error("--timeout must be positive")
    if (arguments.journal or arguments.resume_from) and arguments.no_store:
        parser.error("--journal/--resume-from need the store (the campaign id embeds its fingerprint)")

    try:
        for experiment_id in arguments.experiments:
            get_experiment_entry(experiment_id)
    except UnknownExperimentError as error:
        # exit code 1 (usage error), NOT parser.error's 2 — 2 means "campaign
        # finished but degraded" here
        print(f"error: {error}", file=sys.stderr)
        return 1

    selected = arguments.experiments or None
    journal = arguments.resume_from if arguments.resume_from else (True if arguments.journal else None)
    with ExperimentContext(
        scale=arguments.scale,
        seed=arguments.seed,
        workers=arguments.workers,
        store_dir=arguments.store_dir,
        use_store=not arguments.no_store,
        incremental=arguments.incremental,
        timeout_seconds=arguments.timeout,
        journal=journal,
    ) as context:
        resume_command = None
        if journal is not None:
            location = context.journal_location()
            if location is not None:
                resume_command = _resume_command(argv, location)
        # first SIGINT/SIGTERM drains (in-flight files finish and flush, the
        # rest degrades to resumable partials), a second one exits immediately
        with signal_aware_shutdown(resume_command=resume_command):
            if arguments.stream:
                # one streaming pass: results print the moment their last
                # matrix cell lands (cells overlap when --workers > 1)
                for result in stream_experiments(selected, context):
                    print(result.text)
                    print()
            else:
                # batch: the same single pass, printed in registry order
                for result in run_batch(selected, context):
                    print(result.text)
                    print()
        infra_failures = context.infra_failures()
    if infra_failures:
        # exit code 2: the campaign *finished* but some cells degraded to
        # partial results (quarantined adapter, exhausted retries, watchdog
        # cut, shutdown drain) — distinct from 0 (clean) and 1 (crash /
        # usage error)
        print(f"WARNING: campaign degraded — {len(infra_failures)} unrecovered infrastructure failure(s):", file=sys.stderr)
        for failure in infra_failures:
            where = f"{failure.suite}->{failure.host}" + (f":{failure.path}" if failure.path else "")
            print(f"  [{failure.kind}] {where} after {failure.attempts} attempt(s): {failure.detail}", file=sys.stderr)
        if resume_command is not None:
            print(f"resume with: {resume_command}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
