"""Command line: ``python -m repro.experiments [experiment-id ...] [--scale S] [--seed N]``."""

from __future__ import annotations

import argparse
import sys

from repro.experiments.context import ExperimentContext
from repro.experiments.registry import EXPERIMENTS, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="Run SQuaLity reproduction experiments (tables and figures)")
    parser.add_argument("experiments", nargs="*", default=[], help="experiment ids (default: all); e.g. table4 figure2 bugs")
    parser.add_argument("--scale", type=float, default=1.0, help="corpus scale factor (default 1.0)")
    parser.add_argument("--seed", type=int, default=0, help="corpus generation seed (default 0)")
    parser.add_argument("--workers", type=int, default=1, help="worker-pool width for suite execution (default 1 = serial)")
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    arguments = parser.parse_args(argv)

    if arguments.list:
        for experiment_id, (title, _runner) in EXPERIMENTS.items():
            print(f"{experiment_id:10s} {title}")
        return 0

    selected = arguments.experiments or list(EXPERIMENTS)
    context = ExperimentContext(scale=arguments.scale, seed=arguments.seed, workers=arguments.workers)
    for experiment_id in selected:
        result = run_experiment(experiment_id, context)
        print(result.text)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
