"""Command line: ``python -m repro.experiments [experiment-id ...] [--scale S] [--seed N]``."""

from __future__ import annotations

import argparse
import sys

from repro.experiments.context import ExperimentContext
from repro.experiments.registry import EXPERIMENTS, run_experiment


def _print_formats() -> None:
    from repro.formats import registered_parsers

    for parser in registered_parsers():
        aliases = f" (aliases: {', '.join(parser.aliases)})" if parser.aliases else ""
        extensions = ", ".join(parser.extensions)
        print(f"{parser.name:10s} {extensions:20s} {parser.description}{aliases}")


def _print_adapters() -> None:
    from repro.adapters import adapter_entries

    for entry in adapter_entries():
        aliases = f" (aliases: {', '.join(entry.aliases)})" if entry.aliases else ""
        print(f"{entry.name:12s} {entry.description}{aliases}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="Run SQuaLity reproduction experiments (tables and figures)")
    parser.add_argument("experiments", nargs="*", default=[], help="experiment ids (default: all); e.g. table4 figure2 bugs")
    parser.add_argument("--scale", type=float, default=1.0, help="corpus scale factor (default 1.0)")
    parser.add_argument("--seed", type=int, default=0, help="corpus generation seed (default 0)")
    parser.add_argument("--workers", type=int, default=1, help="worker-pool width for suite execution (default 1 = serial)")
    parser.add_argument(
        "--store-dir",
        default=None,
        metavar="PATH",
        help="artifact-store directory for corpora and donor runs (default: $REPRO_STORE_DIR or ~/.cache/repro-store)",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="disable the persistent artifact store (regenerate corpora and re-record donor runs)",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    parser.add_argument("--list-formats", action="store_true", help="list registered test-suite formats and exit")
    parser.add_argument("--list-adapters", action="store_true", help="list registered DBMS adapters and exit")
    arguments = parser.parse_args(argv)

    if arguments.list:
        for experiment_id, (title, _runner) in EXPERIMENTS.items():
            print(f"{experiment_id:10s} {title}")
        return 0
    if arguments.list_formats:
        _print_formats()
        return 0
    if arguments.list_adapters:
        _print_adapters()
        return 0

    selected = arguments.experiments or list(EXPERIMENTS)
    with ExperimentContext(
        scale=arguments.scale,
        seed=arguments.seed,
        workers=arguments.workers,
        store_dir=arguments.store_dir,
        use_store=not arguments.no_store,
    ) as context:
        for experiment_id in selected:
            result = run_experiment(experiment_id, context)
            print(result.text)
            print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
