"""Declarative experiment API: registration, matrix needs, and accumulation.

An experiment used to be an ad-hoc ``(EXPERIMENT_ID, TITLE, run)`` module
triple consumed by a hand-maintained dict, which meant no scheduler could know
which matrix cells an experiment needs before running it.  This module closes
that gap the same way :mod:`repro.formats.registry` and
:mod:`repro.adapters.registry` did for parsers and adapters:

* :func:`register_experiment` — a decorator that registers an
  :class:`Experiment` subclass (or a plain ``run(context)`` function) under an
  id, with a human title, a description, and a declarative
  :class:`ExperimentNeeds`.
* :class:`ExperimentNeeds` — which corpora the experiment reads and which
  campaign-matrix cells (suite × host × translate) it consumes.  The streaming
  engine (:mod:`repro.experiments.stream`) unions these declarations and
  executes each unique cell exactly once per pass.
* :class:`Experiment` — the accumulate/finalize protocol: the engine calls
  :meth:`Experiment.consume` once per needed cell as results arrive (in any
  order) and :meth:`Experiment.finalize` once every declared cell has been
  delivered.  Accumulators must compute everything in ``finalize`` so results
  are independent of cell arrival order — that is what keeps streaming output
  byte-identical to the serial batch.

See docs/EXPERIMENTS.md for the third-party registration walkthrough.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.core.transplant import DEFAULT_HOSTS, DONOR_OF_SUITE
from repro.errors import UnknownExperimentError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.transplant import TransplantResult
    from repro.experiments.context import ExperimentContext, ExperimentResult


@dataclass(frozen=True, order=True)
class CellKey:
    """Identity of one campaign-matrix cell: run ``suite`` on ``host``."""

    suite: str
    host: str
    translate: bool = False

    @property
    def is_donor_run(self) -> bool:
        return DONOR_OF_SUITE.get(self.suite, self.suite) == self.host


def donor_cells(*suites: str) -> tuple[CellKey, ...]:
    """One donor-on-donor cell per suite (the RQ3 diagonal)."""
    return tuple(CellKey(suite, DONOR_OF_SUITE[suite]) for suite in suites)


def matrix_cells(
    suites: tuple[str, ...],
    hosts: tuple[str, ...] = DEFAULT_HOSTS,
    translate: bool = False,
    include_donor: bool = True,
) -> tuple[CellKey, ...]:
    """The suite × host grid in campaign order (suites outer, hosts inner).

    ``include_donor=False`` drops the donor-on-donor diagonal — the shape of
    the paper's off-diagonal RQ4 analyses (Tables 6/7, the translation
    ablation).
    """
    cells = []
    for suite in suites:
        for host in hosts:
            if not include_donor and DONOR_OF_SUITE.get(suite, suite) == host:
                continue
            cells.append(CellKey(suite, host, translate))
    return tuple(cells)


@dataclass(frozen=True)
class ExperimentNeeds:
    """What one experiment consumes, declared up front.

    ``suites`` names the corpora the driver reads (``"slt"``, ``"postgres"``,
    ``"duckdb"``, ``"mysql"``); ``cells`` the campaign-matrix cells it
    accumulates.  Both are declarative: the streaming engine warms the corpora
    once, unions every registered experiment's cells, and executes each unique
    cell exactly once per pass.  An empty declaration (the default) marks a
    pure-analysis experiment, which finalizes before any cell executes.
    """

    cells: tuple[CellKey, ...] = ()
    suites: tuple[str, ...] = ()


class Experiment:
    """Base class for registered experiments (the accumulate/finalize protocol).

    The engine instantiates the class with the shared
    :class:`~repro.experiments.context.ExperimentContext`, delivers each
    declared cell through :meth:`consume` as it completes — in **no guaranteed
    order** — and calls :meth:`finalize` exactly once, after the last declared
    cell has arrived.  Subclasses therefore do all their computation in
    ``finalize``, reading accumulated cells via :meth:`cell` /
    :meth:`iter_cells`; that discipline is what makes streaming output
    byte-identical to the serial batch regardless of completion order.
    """

    #: populated by :func:`register_experiment`
    id: str = ""
    title: str = ""
    description: str = ""
    needs: ExperimentNeeds = ExperimentNeeds()

    def __init__(self, context: "ExperimentContext"):
        self.context = context
        self._cells: dict[CellKey, "TransplantResult"] = {}

    def consume(self, key: CellKey, result: "TransplantResult") -> None:
        """Accept one completed matrix cell (called once per declared key)."""
        self._cells[key] = result

    def cell(self, suite: str, host: str, translate: bool = False) -> "TransplantResult":
        """The accumulated result of one declared cell."""
        return self._cells[CellKey(suite, host, translate)]

    def iter_cells(self) -> "list[tuple[CellKey, TransplantResult]]":
        """Accumulated cells in *declaration* order (stable across arrival orders)."""
        return [(key, self._cells[key]) for key in self.needs.cells if key in self._cells]

    def finalize(self) -> "ExperimentResult":
        """Produce the experiment's result; called once, after every cell arrived."""
        raise NotImplementedError


@dataclass(frozen=True)
class ExperimentEntry:
    """One registry row: identity, metadata, needs, and the experiment factory."""

    id: str
    title: str
    description: str
    needs: ExperimentNeeds
    factory: type[Experiment] = field(repr=False)

    def create(self, context: "ExperimentContext") -> Experiment:
        return self.factory(context)


#: experiment id -> entry, in registration order (the canonical run order)
_REGISTRY: dict[str, ExperimentEntry] = {}


def register_experiment(
    experiment_id: str,
    title: str,
    *,
    needs: ExperimentNeeds | None = None,
    description: str = "",
    replace: bool = False,
):
    """Decorator registering an experiment under ``experiment_id``.

    Accepts either an :class:`Experiment` subclass or a plain
    ``run(context) -> ExperimentResult`` function (wrapped in a needs-less
    accumulator whose ``finalize`` simply calls it — the minimal migration
    path for third-party drivers).  Registering an already-known id raises
    unless ``replace=True`` (test hook; see :func:`unregister_experiment`).
    """

    def decorate(obj):
        if isinstance(obj, type) and issubclass(obj, Experiment):
            cls = obj
        elif callable(obj):
            run_callable: Callable = obj

            class _FunctionExperiment(Experiment):
                def finalize(self) -> "ExperimentResult":
                    return run_callable(self.context)

            _FunctionExperiment.__name__ = f"{run_callable.__name__}_experiment"
            _FunctionExperiment.__qualname__ = _FunctionExperiment.__name__
            cls = _FunctionExperiment
        else:
            raise TypeError(
                f"@register_experiment({experiment_id!r}) expects an Experiment subclass "
                f"or a run(context) callable, got {obj!r}"
            )
        if experiment_id in _REGISTRY and not replace:
            raise ValueError(f"experiment {experiment_id!r} is already registered (pass replace=True to override)")
        cls.id = experiment_id
        cls.title = title
        cls.description = description
        cls.needs = needs if needs is not None else ExperimentNeeds()
        _REGISTRY[experiment_id] = ExperimentEntry(
            id=experiment_id, title=title, description=description, needs=cls.needs, factory=cls
        )
        return obj

    return decorate


def unregister_experiment(experiment_id: str) -> None:
    """Remove one registration (test hook for temporary experiments)."""
    _REGISTRY.pop(experiment_id, None)


def get_experiment_entry(experiment_id: str) -> ExperimentEntry:
    """The registry entry for ``experiment_id``, with near-miss suggestions on miss."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        suggestions = difflib.get_close_matches(experiment_id, _REGISTRY, n=3, cutoff=0.5)
        hint = f" (did you mean {', '.join(repr(s) for s in suggestions)}?)" if suggestions else ""
        raise UnknownExperimentError(
            f"unknown experiment {experiment_id!r}{hint}; known: {sorted(_REGISTRY)}"
        ) from None


def experiment_entries() -> list[ExperimentEntry]:
    """Every registered experiment, in registration order."""
    return list(_REGISTRY.values())


def available_experiments() -> list[str]:
    """Registered experiment ids, in registration order."""
    return list(_REGISTRY)
