"""Table 1: DBMS rankings and their test suites' information.

Table 1 is metadata about the studied systems (DB-Engines rank, GitHub stars,
versions, number of test files).  The reproduction reports the paper's values
side by side with the corresponding properties of the synthetic corpora (file
counts and collected test cases) so the scale factor is explicit.
"""

from __future__ import annotations

from repro.core.report import format_table
from repro.corpus.profiles import TABLE1_DBMS_INFO
from repro.experiments.base import Experiment, ExperimentNeeds, register_experiment
from repro.experiments.context import ExperimentContext, ExperimentResult

EXPERIMENT_ID = "table1"
TITLE = "Table 1: DBMS rankings and their test suites information"


@register_experiment(
    EXPERIMENT_ID,
    TITLE,
    needs=ExperimentNeeds(suites=("slt", "postgres", "duckdb", "mysql")),
    description="paper metadata vs generated corpus sizes per studied DBMS",
)
class Table1Experiment(Experiment):
    def finalize(self) -> ExperimentResult:
        return _build(self.context)


def run(context: ExperimentContext) -> ExperimentResult:
    """Back-compat module entry point (see :func:`repro.experiments.registry.run_experiment`)."""
    from repro.experiments.registry import run_experiment

    return run_experiment(EXPERIMENT_ID, context)


def _build(context: ExperimentContext) -> ExperimentResult:
    suites = context.all_suites_with_mysql()
    suite_of_dbms = {"sqlite": "slt", "postgres": "postgres", "duckdb": "duckdb", "mysql": "mysql"}
    rows = []
    data: dict = {}
    for dbms, info in TABLE1_DBMS_INFO.items():
        suite = suites.get(suite_of_dbms[dbms])
        generated_files = len(suite.files) if suite else 0
        generated_cases = suite.total_sql_records if suite else 0
        rows.append(
            [
                info.name,
                info.db_engines_rank,
                f"{info.github_stars_k}k",
                info.dbms_version,
                info.suite_version,
                info.test_files,
                generated_files,
                generated_cases,
            ]
        )
        data[dbms] = {
            "paper_test_files": info.test_files,
            "generated_test_files": generated_files,
            "generated_test_cases": generated_cases,
        }
    text = format_table(
        ["DBMS", "DB-Engines", "GitHub", "DBMS ver.", "Suite ver.", "Files (paper)", "Files (generated)", "Cases (generated)"],
        rows,
        title=TITLE,
    )
    return ExperimentResult(experiment_id=EXPERIMENT_ID, title=TITLE, text=text, data=data)
