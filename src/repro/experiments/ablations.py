"""Ablation experiments for the design choices called out in DESIGN.md.

* **Float tolerance** — SQuaLity compares results exactly; DuckDB's native
  runner accepts a 1% deviation (Listing 10).  The ablation quantifies how
  many donor-on-donor DuckDB failures the tolerant mode removes.
* **Dialect translation** — the paper's implications suggest syntax
  differences could be partially addressed by SQL translators; the ablation
  re-runs the cross-execution matrix with the translator enabled and reports
  the success-rate change per (suite, host) pair.
"""

from __future__ import annotations

from repro.core.report import format_percentage, format_table
from repro.core.transplant import DONOR_OF_SUITE, run_transplant
from repro.experiments.base import Experiment, ExperimentNeeds, donor_cells, matrix_cells, register_experiment
from repro.experiments.context import ExperimentContext, ExperimentResult

EXPERIMENT_ID = "ablations"
TITLE = "Ablations: float-tolerance comparison and cross-dialect translation"

_SUITES = ("slt", "postgres", "duckdb")
_HOSTS = ("sqlite", "postgres", "duckdb", "mysql")


@register_experiment(
    EXPERIMENT_ID,
    TITLE,
    needs=ExperimentNeeds(
        suites=_SUITES,
        cells=donor_cells("duckdb")
        + matrix_cells(_SUITES, _HOSTS, include_donor=False)
        + matrix_cells(_SUITES, _HOSTS, translate=True, include_donor=False),
    ),
    description="float-tolerance and dialect-translation ablations",
)
class AblationsExperiment(Experiment):
    def finalize(self) -> ExperimentResult:
        return _build(self)


def run(context: ExperimentContext) -> ExperimentResult:
    """Back-compat module entry point (see :func:`repro.experiments.registry.run_experiment`)."""
    from repro.experiments.registry import run_experiment

    return run_experiment(EXPERIMENT_ID, context)


def _build(experiment: AblationsExperiment) -> ExperimentResult:
    context = experiment.context
    # -- float tolerance (DuckDB donor run, exact vs 1%) ---------------------------
    duckdb_suite = context.suites["duckdb"]
    exact = experiment.cell("duckdb", "duckdb").result
    tolerant = run_transplant(duckdb_suite, "duckdb", float_tolerance=0.01).result
    float_rows = [
        ["exact comparison (SQuaLity)", exact.failed_cases, format_percentage(exact.success_rate)],
        ["1% tolerance (DuckDB native runner)", tolerant.failed_cases, format_percentage(tolerant.success_rate)],
    ]
    float_table = format_table(["Comparison mode", "Failed cases", "Success rate"], float_rows, title="DuckDB donor run: result-comparison mode")

    # -- dialect translation ---------------------------------------------------------
    translation_rows = []
    translation_data: dict[str, dict[str, float]] = {}
    for suite in _SUITES:
        for host in _HOSTS:
            if host == DONOR_OF_SUITE[suite]:
                continue
            baseline = experiment.cell(suite, host).success_rate
            translated = experiment.cell(suite, host, translate=True).success_rate
            translation_rows.append(
                [f"{suite} on {host}", format_percentage(baseline), format_percentage(translated), format_percentage(translated - baseline)]
            )
            translation_data[f"{suite}->{host}"] = {"baseline": baseline, "translated": translated}
    translation_table = format_table(
        ["Pair", "Success (as-is)", "Success (translated)", "Delta"],
        translation_rows,
        title="Cross-dialect translation ablation",
    )
    note = (
        "\nTranslation recovers part of the syntax-difference failures (::, DIV, ||, PRAGMA/SET,\n"
        "VARCHAR length), consistent with the paper's implication that translators help but do\n"
        "not remove dialect-specific feature gaps."
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=float_table + "\n\n" + translation_table + note,
        data={
            "float_tolerance": {"exact_failed": exact.failed_cases, "tolerant_failed": tolerant.failed_cases},
            "translation": translation_data,
        },
    )
