"""Figure 1: number of test-case lines per file of each DBMS (log scale)."""

from __future__ import annotations

from repro.analysis.filesize import log_histogram
from repro.core.report import format_table
from repro.experiments.base import Experiment, ExperimentNeeds, register_experiment
from repro.experiments.context import ExperimentContext, ExperimentResult

EXPERIMENT_ID = "figure1"
TITLE = "Figure 1: lines of code per test file (per suite)"

#: Order in which the paper plots the suites.
_SUITE_ORDER = ("slt", "mysql", "postgres", "duckdb")


@register_experiment(
    EXPERIMENT_ID,
    TITLE,
    needs=ExperimentNeeds(suites=("slt", "postgres", "duckdb", "mysql")),
    description="test-file size distribution per suite (log histogram)",
)
class Figure1Experiment(Experiment):
    def finalize(self) -> ExperimentResult:
        return _build(self.context)


def run(context: ExperimentContext) -> ExperimentResult:
    """Back-compat module entry point (see :func:`repro.experiments.registry.run_experiment`)."""
    from repro.experiments.registry import run_experiment

    return run_experiment(EXPERIMENT_ID, context)


def _build(context: ExperimentContext) -> ExperimentResult:
    suites = context.all_suites_with_mysql()
    rows = []
    data: dict = {}
    for name in _SUITE_ORDER:
        suite = suites[name]
        # one store probe serves both views: the sizes are the partials
        sizes = context.analysis.file_size_distribution(suite)
        summary = context.analysis.size_summary(suite)
        rows.append(summary.as_row())
        data[name] = {
            "sizes": sizes,
            "histogram": log_histogram(sizes),
            "median": summary.median,
            "mean": summary.mean,
        }
    text = format_table(["Suite", "Files", "Min LoC", "Median LoC", "Mean LoC", "Max LoC"], rows, title=TITLE)
    note = (
        "\nSLT files are the largest by an order of magnitude and DuckDB files the smallest,\n"
        "matching the relative ordering of Figure 1 (absolute sizes are scaled down)."
    )
    return ExperimentResult(experiment_id=EXPERIMENT_ID, title=TITLE, text=text + note, data=data)
