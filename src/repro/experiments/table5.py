"""Table 5: classification of sampled donor-on-donor failures (RQ3)."""

from __future__ import annotations

from repro.core.classification import DependencyCategory, category_histogram, classify_failures, sample_failures
from repro.core.report import format_table
from repro.corpus.profiles import TABLE5_DEPENDENCY_SAMPLE
from repro.experiments.base import Experiment, ExperimentNeeds, donor_cells, register_experiment
from repro.experiments.context import ExperimentContext, ExperimentResult

EXPERIMENT_ID = "table5"
TITLE = "Table 5: dependency classification of 100 sampled donor-on-donor failures"

_SUITES = {"slt": "sqlite", "duckdb": "duckdb", "postgres": "postgres"}
_ROW_ORDER = (
    ("Environment", DependencyCategory.FILE_PATHS),
    ("Environment", DependencyCategory.SETTING),
    ("Environment", DependencyCategory.SETUP),
    ("Extension", DependencyCategory.EXTENSION),
    ("Client", DependencyCategory.CLIENT_FORMAT),
    ("Client", DependencyCategory.CLIENT_NUMERIC),
    ("Client", DependencyCategory.CLIENT_EXCEPTION),
    ("Misc", DependencyCategory.RUNNER),
)


@register_experiment(
    EXPERIMENT_ID,
    TITLE,
    needs=ExperimentNeeds(suites=("slt", "postgres", "duckdb"), cells=donor_cells("slt", "duckdb", "postgres")),
    description="dependency classification of sampled donor-on-donor failures",
)
class Table5Experiment(Experiment):
    def finalize(self) -> ExperimentResult:
        return _build(self)


def run(context: ExperimentContext) -> ExperimentResult:
    """Back-compat module entry point (see :func:`repro.experiments.registry.run_experiment`)."""
    from repro.experiments.registry import run_experiment

    return run_experiment(EXPERIMENT_ID, context)


def _build(experiment: Table5Experiment) -> ExperimentResult:
    context = experiment.context
    histograms: dict[str, dict] = {}
    for suite_name, paper_key in _SUITES.items():
        # the paper keys double as the donor host names
        failures = experiment.cell(suite_name, paper_key).result.all_failures()
        sampled = sample_failures(failures, sample_size=100, seed=context.seed)
        histogram = category_histogram(classify_failures(sampled, scheme="dependency"))
        histograms[suite_name] = {category.value: histogram.get(category, 0) for _, category in _ROW_ORDER}

    rows = []
    for group, category in _ROW_ORDER:
        row = [f"{group} / {category.value}"]
        for suite_name, paper_key in _SUITES.items():
            paper_value = TABLE5_DEPENDENCY_SAMPLE[paper_key][category.value]
            measured = histograms[suite_name][category.value]
            row.append(f"{paper_value} / {measured}")
        rows.append(row)
    text = format_table(
        ["Reason (paper / measured)", "SQLite", "DuckDB", "PostgreSQL"],
        rows,
        title=TITLE,
    )
    note = (
        "\nShape to compare with the paper: PostgreSQL failures are dominated by environment set-up,\n"
        "DuckDB failures by client output-format differences, and SQLite has almost none."
    )
    return ExperimentResult(experiment_id=EXPERIMENT_ID, title=TITLE, text=text + note, data={"measured": histograms, "paper": TABLE5_DEPENDENCY_SAMPLE})
