"""Figure 4: cross-execution success-rate heatmap (RQ4)."""

from __future__ import annotations

from repro.core.report import format_heatmap, format_table, format_percentage
from repro.core.transplant import DONOR_OF_SUITE
from repro.corpus.profiles import FIGURE4_SUCCESS_RATES
from repro.experiments.base import Experiment, ExperimentNeeds, matrix_cells, register_experiment
from repro.experiments.context import ExperimentContext, ExperimentResult

EXPERIMENT_ID = "figure4"
TITLE = "Figure 4: share of SQL test cases that execute successfully across DBMSs"

_SUITES = ("slt", "postgres", "duckdb")
_HOSTS = ("sqlite", "postgres", "duckdb", "mysql")


@register_experiment(
    EXPERIMENT_ID,
    TITLE,
    needs=ExperimentNeeds(suites=_SUITES, cells=matrix_cells(_SUITES, _HOSTS)),
    description="donor-normalised cross-execution success-rate heatmap",
)
class Figure4Experiment(Experiment):
    def finalize(self) -> ExperimentResult:
        return _build(self)


def run(context: ExperimentContext) -> ExperimentResult:
    """Back-compat module entry point (see :func:`repro.experiments.registry.run_experiment`)."""
    from repro.experiments.registry import run_experiment

    return run_experiment(EXPERIMENT_ID, context)


def _build(experiment: Figure4Experiment) -> ExperimentResult:
    raw: dict[tuple[str, str], float] = {}
    normalized: dict[tuple[str, str], float] = {}
    for suite in _SUITES:
        donor_rate = experiment.cell(suite, DONOR_OF_SUITE[suite]).success_rate or 1.0
        for host in _HOSTS:
            rate = experiment.cell(suite, host).success_rate
            raw[(suite, host)] = rate
            # The paper's heatmap anchors every donor at 100%; normalising by
            # the donor rate removes donor-environment failures (RQ3) from the
            # cross-DBMS comparison, as the paper does.
            normalized[(suite, host)] = min(1.0, rate / donor_rate)

    heatmap = format_heatmap(_SUITES, _HOSTS, normalized, title=TITLE + " (measured, donor-normalised)")
    comparison_rows = []
    for suite in _SUITES:
        for host in _HOSTS:
            comparison_rows.append(
                [
                    f"{suite} on {host}",
                    format_percentage(FIGURE4_SUCCESS_RATES[(suite, host)]),
                    format_percentage(normalized[(suite, host)]),
                    format_percentage(raw[(suite, host)]),
                ]
            )
    comparison = format_table(
        ["Pair", "Paper", "Measured (normalised)", "Measured (raw)"],
        comparison_rows,
        title="Paper vs. measured success rates",
    )
    note = (
        "\nShape to compare: SLT is the most compatible suite everywhere (>94%), the PostgreSQL\n"
        "regression suite the least compatible, and MySQL is the host with the lowest success\n"
        "rate for both the PostgreSQL and DuckDB suites."
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=heatmap + "\n\n" + comparison + note,
        data={"paper": {f"{s}->{h}": v for (s, h), v in FIGURE4_SUCCESS_RATES.items()}, "measured": {f"{s}->{h}": v for (s, h), v in normalized.items()}, "raw": {f"{s}->{h}": v for (s, h), v in raw.items()}},
    )
