"""Figure 3: distribution of tokens in WHERE predicates of SELECT statements (RQ2)."""

from __future__ import annotations

from repro.core.report import format_percentage, format_table
from repro.experiments.base import Experiment, ExperimentNeeds, register_experiment
from repro.experiments.context import ExperimentContext, ExperimentResult
from repro.sqlparser.analyzer import PREDICATE_BUCKETS

EXPERIMENT_ID = "figure3"
TITLE = "Figure 3: distribution of WHERE-predicate token counts"

_SUITES = ("slt", "postgres", "duckdb")


@register_experiment(
    EXPERIMENT_ID,
    TITLE,
    needs=ExperimentNeeds(suites=_SUITES),
    description="WHERE-predicate token counts and join usage per suite",
)
class Figure3Experiment(Experiment):
    def finalize(self) -> ExperimentResult:
        return _build(self.context)


def run(context: ExperimentContext) -> ExperimentResult:
    """Back-compat module entry point (see :func:`repro.experiments.registry.run_experiment`)."""
    from repro.experiments.registry import run_experiment

    return run_experiment(EXPERIMENT_ID, context)


def _build(context: ExperimentContext) -> ExperimentResult:
    # both views assemble from the same persisted per-file predicate partials
    distributions = {name: context.analysis.predicate_distribution(context.suites[name]) for name in _SUITES}
    joins = {name: context.analysis.join_usage(context.suites[name]) for name in _SUITES}
    rows = []
    for bucket in PREDICATE_BUCKETS:
        rows.append([bucket] + [format_percentage(distributions[name][bucket]) for name in _SUITES])
    text = format_table(["WHERE tokens", "SQLite (SLT)", "PostgreSQL", "DuckDB"], rows, title=TITLE)

    join_rows = []
    for name in _SUITES:
        usage = joins[name]
        join_rows.append(
            [name, usage.total_selects, format_percentage(usage.join_share), format_percentage(usage.implicit_share), format_percentage(usage.inner_share)]
        )
    join_text = format_table(
        ["Suite", "SELECTs", "any join", "implicit join", "INNER JOIN"],
        join_rows,
        title="Join usage (Section 4, reported alongside Figure 3)",
    )
    data = {
        "predicates": distributions,
        "joins": {name: vars(joins[name]) for name in _SUITES},
    }
    note = "\nMost SELECTs have no WHERE clause, matching the paper's ~80% figure."
    return ExperimentResult(experiment_id=EXPERIMENT_ID, title=TITLE, text=text + "\n\n" + join_text + note, data=data)
