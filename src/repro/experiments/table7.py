"""Table 7: what makes failing test cases hard to reuse (RQ4 roll-up)."""

from __future__ import annotations

from collections import Counter

from repro.core.classification import DifficultyCategory, classify_failures
from repro.core.report import format_percentage, format_table
from repro.corpus.profiles import TABLE7_DIFFICULTY
from repro.experiments.base import Experiment, ExperimentNeeds, matrix_cells, register_experiment
from repro.experiments.context import ExperimentContext, ExperimentResult

EXPERIMENT_ID = "table7"
TITLE = "Table 7: share of failures due to dialect features / syntax / semantics"

_SUITES = {"slt": "sqlite", "duckdb": "duckdb", "postgres": "postgres"}
_HOSTS = ("sqlite", "postgres", "duckdb", "mysql")
_CATEGORIES = (DifficultyCategory.DIALECT_FEATURE, DifficultyCategory.SYNTAX, DifficultyCategory.SEMANTIC)


@register_experiment(
    EXPERIMENT_ID,
    TITLE,
    needs=ExperimentNeeds(
        suites=("slt", "postgres", "duckdb"),
        cells=matrix_cells(("slt", "duckdb", "postgres"), _HOSTS, include_donor=False),
    ),
    description="dialect/syntax/semantics difficulty shares across hosts",
)
class Table7Experiment(Experiment):
    def finalize(self) -> ExperimentResult:
        return _build(self)


def run(context: ExperimentContext) -> ExperimentResult:
    """Back-compat module entry point (see :func:`repro.experiments.registry.run_experiment`)."""
    from repro.experiments.registry import run_experiment

    return run_experiment(EXPERIMENT_ID, context)


def _build(experiment: Table7Experiment) -> ExperimentResult:
    context = experiment.context
    shares: dict[str, dict[str, float]] = {}
    for suite_name, paper_key in _SUITES.items():
        counter: Counter = Counter()
        donor = {"slt": "sqlite", "duckdb": "duckdb", "postgres": "postgres"}[suite_name]
        for host in _HOSTS:
            if host == donor:
                continue
            failures = experiment.cell(suite_name, host).result.all_failures()
            for classified in classify_failures(failures, scheme="difficulty"):
                counter[classified.category] += 1
        total = sum(counter.values()) or 1
        shares[suite_name] = {category.value: counter.get(category, 0) / total for category in _CATEGORIES}

    rows = []
    for category in _CATEGORIES:
        row = [category.value]
        for suite_name, paper_key in _SUITES.items():
            paper_value = TABLE7_DIFFICULTY[paper_key][category.value]
            measured = shares[suite_name][category.value]
            row.append(f"{format_percentage(paper_value, 1)} / {format_percentage(measured, 1)}")
        rows.append(row)
    text = format_table(["Difficulty (paper / measured)", "SQLite (SLT)", "DuckDB", "PostgreSQL"], rows, title=TITLE)
    note = (
        "\nShape to compare: SLT failures are overwhelmingly semantic, while the DuckDB and\n"
        "PostgreSQL suites fail mostly because of dialect-specific features."
    )
    return ExperimentResult(experiment_id=EXPERIMENT_ID, title=TITLE, text=text + note, data={"measured": shares, "paper": TABLE7_DIFFICULTY})
