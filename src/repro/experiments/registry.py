"""Canonical experiment registry: driver imports, run order, and compat API.

Importing this module registers every built-in driver with
:mod:`repro.experiments.base` (the way :mod:`repro.formats.registry` imports
the format parsers) and pins the canonical run order — the order the paper
presents its tables and figures, which ``run_all`` and the CLI preserve.

``run_experiment`` and ``run_all`` are thin wrappers over the single-pass
streaming engine (:func:`repro.experiments.stream.run_batch`): even the batch
path plans the union of every selected experiment's declared needs and
executes each unique matrix cell exactly once.  The legacy ``EXPERIMENTS``
mapping of ``id -> (title, run callable)`` is kept for callers that still
iterate it.
"""

from __future__ import annotations

import functools
from typing import Callable

# importing the driver modules is what registers them; the tuple below pins
# the canonical order even if a driver was imported directly beforehand
from repro.experiments import (
    ablations,
    bugs,
    figure1,
    figure2,
    figure3,
    figure4,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
)
from repro.experiments import base as _base
from repro.experiments.base import (
    available_experiments,
    experiment_entries,
    get_experiment_entry,
)
from repro.experiments.context import ExperimentContext, ExperimentResult

_CANONICAL_MODULES = (
    table1,
    figure1,
    table2,
    figure2,
    table3,
    figure3,
    table4,
    table5,
    figure4,
    table6,
    table7,
    table8,
    bugs,
    ablations,
)


def _pin_canonical_order() -> None:
    """Reorder the registry: canonical built-ins first, later registrations after."""
    ordered = {
        module.EXPERIMENT_ID: _base._REGISTRY[module.EXPERIMENT_ID]
        for module in _CANONICAL_MODULES
        if module.EXPERIMENT_ID in _base._REGISTRY
    }
    for experiment_id, entry in _base._REGISTRY.items():
        ordered.setdefault(experiment_id, entry)
    _base._REGISTRY.clear()
    _base._REGISTRY.update(ordered)


_pin_canonical_order()


def run_experiment(experiment_id: str, context: ExperimentContext | None = None) -> ExperimentResult:
    """Run one experiment by id (``"table4"``, ``"figure2"``, ``"bugs"``, ...).

    Unknown ids raise :class:`~repro.errors.UnknownExperimentError` (a
    ``KeyError`` subclass, so legacy ``except KeyError`` callers still work)
    with near-miss suggestions.
    """
    from repro.experiments.stream import run_batch

    return run_batch([experiment_id], context)[0]


def run_all(context: ExperimentContext | None = None) -> list[ExperimentResult]:
    """Run every registered experiment through one shared streaming pass.

    Results come back in registry order and are byte-identical to running the
    experiments one by one; the single pass executes each unique matrix cell
    at most once, so shared campaign work is never repeated.
    """
    from repro.experiments.stream import run_batch

    return run_batch(None, context)


def _experiments_compat() -> dict[str, tuple[str, Callable[..., ExperimentResult]]]:
    return {
        entry.id: (entry.title, functools.partial(run_experiment, entry.id))
        for entry in experiment_entries()
    }


#: legacy mapping of experiment id -> (title, run callable); prefer
#: :func:`repro.experiments.base.experiment_entries` for new code
EXPERIMENTS: dict[str, tuple[str, Callable[..., ExperimentResult]]] = _experiments_compat()

__all__ = [
    "EXPERIMENTS",
    "available_experiments",
    "experiment_entries",
    "get_experiment_entry",
    "run_all",
    "run_experiment",
]
