"""Registry of experiment drivers and the command-line entry point."""

from __future__ import annotations

from typing import Callable

from repro.experiments import (
    ablations,
    bugs,
    figure1,
    figure2,
    figure3,
    figure4,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
)
from repro.experiments.context import ExperimentContext, ExperimentResult

#: experiment id -> (title, run callable)
EXPERIMENTS: dict[str, tuple[str, Callable[[ExperimentContext], ExperimentResult]]] = {
    module.EXPERIMENT_ID: (module.TITLE, module.run)
    for module in (table1, figure1, table2, figure2, table3, figure3, table4, table5, figure4, table6, table7, table8, bugs, ablations)
}


def run_experiment(experiment_id: str, context: ExperimentContext | None = None) -> ExperimentResult:
    """Run one experiment by id (``"table4"``, ``"figure2"``, ``"bugs"``, ...)."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}")
    _title, runner = EXPERIMENTS[experiment_id]
    return runner(context or ExperimentContext())


def run_all(context: ExperimentContext | None = None) -> list[ExperimentResult]:
    """Run every registered experiment, sharing one context."""
    shared = context or ExperimentContext()
    return [run_experiment(experiment_id, shared) for experiment_id in EXPERIMENTS]
