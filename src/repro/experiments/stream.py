"""Single-pass streaming experiment engine.

One pass over the campaign matrix feeds *every* selected experiment:

1. **Plan** — union the :class:`~repro.experiments.base.ExperimentNeeds` of
   the selected registry entries into a deduplicated cell list in campaign
   order (plain cells before translated, suites outer, hosts inner — the same
   nesting :func:`repro.core.transplant.run_matrix` uses, so store and pool
   behaviour match the batch path).  Translated donor-on-donor cells are
   aliases of their plain siblings (translation is the identity there) and are
   normalised away whenever caching is enabled, mirroring
   ``run_matrix(reuse_donor_runs_from=...)``.
2. **Execute** — each unique cell runs exactly once per pass, via
   :func:`repro.core.transplant.run_transplant` with the context's store,
   pools, and resilience policy: store-warm cells resolve instantly, degraded
   cells surface through :meth:`ExperimentContext.infra_failures`.  With
   ``max_inflight > 1`` cells fan out over the
   :class:`~repro.core.parallel.WorkerPool` thread lane so slow hosts overlap;
   serially the cells keep the batch path's per-file sharding.
3. **Fan out** — every completed cell is delivered to each subscribed
   experiment's :meth:`~repro.experiments.base.Experiment.consume`, and an
   experiment's :class:`~repro.experiments.context.ExperimentResult` is
   yielded the moment its last declared cell lands.  Pure-analysis experiments
   (no cells) yield before any cell executes.

Because accumulators compute everything in ``finalize``, each yielded result
is byte-identical to the serial batch run no matter the completion order; only
the *yield order* varies under concurrency.  :func:`run_batch` (what
``run_all`` builds on) restores registry order.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import FIRST_COMPLETED, wait
from typing import TYPE_CHECKING, Iterator

from repro.core.transplant import DONOR_OF_SUITE, TransplantMatrix, run_transplant
from repro.experiments.base import CellKey, ExperimentEntry, get_experiment_entry
from repro.experiments.context import ExperimentContext, ExperimentResult
from repro.perf import cache as perf_cache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.transplant import TransplantResult

#: corpora the context can build (the three executable suites plus mysql)
_EXECUTABLE_SUITES = ("slt", "postgres", "duckdb")


def _resolve_entries(experiment_ids) -> list[ExperimentEntry]:
    """Registry entries for ``experiment_ids`` (None = all, in registry order).

    Unknown ids raise :class:`~repro.errors.UnknownExperimentError` with
    near-miss suggestions before anything executes; duplicates collapse to
    their first occurrence (one pass produces one result per experiment).
    """
    # importing the registry module registers every built-in driver
    from repro.experiments import registry as _registry  # noqa: F401

    if experiment_ids is None:
        from repro.experiments.base import experiment_entries

        return experiment_entries()
    entries: list[ExperimentEntry] = []
    seen: set[str] = set()
    for experiment_id in experiment_ids:
        entry = get_experiment_entry(experiment_id)
        if entry.id not in seen:
            seen.add(entry.id)
            entries.append(entry)
    return entries


def _normalize(key: CellKey) -> CellKey:
    """Collapse translated donor-on-donor cells onto their plain siblings.

    Translation is the identity when donor == host (the runner skips it), so
    the plain cell's result *is* the translated cell's result — the same reuse
    ``run_matrix(reuse_donor_runs_from=...)`` applies, honouring the same
    global cache switch.
    """
    if key.translate and DONOR_OF_SUITE.get(key.suite, key.suite) == key.host and perf_cache.caching_enabled():
        return CellKey(key.suite, key.host, False)
    return key


def _plan_cells(entries: list[ExperimentEntry], context: ExperimentContext) -> list[CellKey]:
    """The deduplicated union of every entry's cells, in campaign order.

    Plain cells come before translated ones, and within each group cells
    follow suite-then-host nesting (suites in corpus order, hosts in the
    context's host order) — exactly how the batch path's two ``run_matrix``
    calls walk the grid, so adapters and store entries are touched in the
    same sequence.
    """
    needed = {_normalize(key) for entry in entries for key in entry.needs.cells}
    suite_order = {name: index for index, name in enumerate(_EXECUTABLE_SUITES)}
    host_order = {name: index for index, name in enumerate(context.hosts)}
    return sorted(
        needed,
        key=lambda key: (
            key.translate,
            suite_order.get(key.suite, len(suite_order)),
            key.suite,
            host_order.get(key.host, len(host_order)),
            key.host,
        ),
    )


def _warm_corpora(entries: list[ExperimentEntry], plan: list[CellKey], context: ExperimentContext) -> None:
    """Build every needed corpus once, up front, on the calling thread.

    Cell execution and pure-analysis finalization both read the context's
    lazily-built suites; warming them here keeps the lazy build off the cell
    fan-out threads (no duplicated corpus work, no racing builders).
    """
    needed = {suite for entry in entries for suite in entry.needs.suites}
    needed.update(key.suite for key in plan)
    if needed & set(_EXECUTABLE_SUITES):
        context.suites
    if "mysql" in needed:
        context.mysql_suite


def _open_pass_journals(context: ExperimentContext, plan: list[CellKey]) -> dict:
    """Open this pass's write-ahead journals, one per translate variant.

    The streaming pass is a campaign like any other: when the context has
    journaling enabled (``ExperimentContext(journal=...)`` / CLI
    ``--journal``), each cell's start/finish — and its per-file artifact
    keys — land in a durable journal so a killed pass resumes with
    ``--resume-from`` exactly like ``run_matrix`` does.  Plain and
    translated cells are distinct campaigns (the translate switch is part
    of campaign identity), so a mixed plan opens up to two journals; their
    specs are derived from the plan's own suites and hosts, which makes the
    identity stable across reruns of the same experiment selection.
    """
    setting = getattr(context, "journal", None)
    if setting is None or setting is False:
        return {}
    from pathlib import Path

    from repro.core.journal import JOURNAL_DIRNAME, CampaignJournal, campaign_spec
    from repro.store import artifacts as artifact_store

    store = artifact_store.active_store(context.store)
    if store is None:
        return {}
    journals: dict = {}
    for translate in (False, True):
        keys = [key for key in plan if key.translate == translate]
        if not keys:
            continue
        suites = {name: context.suites[name] for name in sorted({key.suite for key in keys})}
        hosts = tuple(sorted({key.host for key in keys}))
        spec = campaign_spec(suites, hosts, translate_dialect=translate)
        if setting is True:
            journals[translate] = CampaignJournal.open_in(Path(store.root) / JOURNAL_DIRNAME, spec, store.fingerprint)
        else:
            path = Path(setting)
            if path.suffix == ".jsonl" or path.is_file():
                journals[translate] = CampaignJournal.open(path, spec, store.fingerprint)
            else:
                journals[translate] = CampaignJournal.open_in(path, spec, store.fingerprint)
    return journals


def _execute_transplant(context: ExperimentContext, key: CellKey, workers: int, worker_pool, journal=None) -> "TransplantResult":
    """Run one matrix cell with the context's store, pools, and policy."""
    # journal only travels when the pass opened one: run_transplant fakes in
    # the engine's unit tests (and third-party stand-ins) predate the kwarg
    extra = {"journal": journal} if journal is not None else {}
    return run_transplant(
        context.suites[key.suite],
        key.host,
        translate_dialect=key.translate,
        workers=workers,
        executor=context.executor,
        pool=context.adapter_pool,
        worker_pool=worker_pool,
        store=context.store,
        incremental=context.incremental,
        resilience=context.resilience,
        **extra,
    )


def _resolve_cell(context: ExperimentContext, key: CellKey, workers: int, worker_pool, journal=None) -> "TransplantResult":
    cached = context.peek_cell(key)
    if cached is not None:
        return cached
    if journal is None:
        # positional-only call: test doubles (and third-party stand-ins) for
        # _execute_transplant predate the journal kwarg
        result = _execute_transplant(context, key, workers, worker_pool)
    else:
        result = _execute_transplant(context, key, workers, worker_pool, journal=journal)
    context.note_stream_cell(key, result)
    return result


class _Subscription:
    """One experiment's place in the pass: pending cells and requested keys."""

    def __init__(self, entry: ExperimentEntry, context: ExperimentContext):
        self.entry = entry
        self.experiment = entry.create(context)
        #: normalized key -> declared keys (an aliased translated-donor cell is
        #: delivered under the key the experiment declared, not the one that ran)
        self.requested: dict[CellKey, list[CellKey]] = {}
        for declared in entry.needs.cells:
            self.requested.setdefault(_normalize(declared), []).append(declared)
        self.pending: set[CellKey] = set(self.requested)

    def deliver(self, key: CellKey, result: "TransplantResult") -> bool:
        """Feed one completed cell; True when the experiment became ready."""
        if key not in self.pending:
            return False
        for declared in self.requested[key]:
            self.experiment.consume(declared, result)
        self.pending.discard(key)
        return not self.pending


def _adopt_matrices(context: ExperimentContext, resolved: dict[CellKey, "TransplantResult"]) -> None:
    """Install full-grid matrices assembled from this pass into the context.

    Only complete grids are adopted (a subset pass must not masquerade as a
    full campaign); entries are inserted in ``run_matrix``'s suite-then-host
    order so ``fault_summary`` and friends iterate identically.
    """
    suite_names = context.built_suite_names()
    if not suite_names:
        return
    for translate in (False, True):
        cells = []
        for suite in suite_names:
            for host in context.hosts:
                result = resolved.get(_normalize(CellKey(suite, host, translate)))
                if result is None:
                    break
                cells.append(result)
            else:
                continue
            break
        else:
            matrix = TransplantMatrix()
            for result in cells:
                matrix.add(result)
            context.adopt_matrix(matrix, translated=translate)


def stream_experiments(
    experiment_ids=None,
    context: ExperimentContext | None = None,
    *,
    max_inflight: int | None = None,
) -> Iterator[ExperimentResult]:
    """Stream experiment results as the single campaign pass completes them.

    ``experiment_ids`` selects registered experiments (None = all); each
    unique matrix cell of their unioned needs executes at most once.
    ``max_inflight`` bounds how many cells execute concurrently (default: the
    context's ``workers``).  Serial passes (``max_inflight == 1``) yield in a
    deterministic order — analysis experiments first, then experiments in
    completion order along the campaign-ordered plan — and keep the batch
    path's per-file sharding inside each cell.  Concurrent passes fan cells
    out over the worker pool's thread lane (cells hold live pools and stores,
    so they never cross process boundaries) and run each cell serially
    inside; the yield order then follows completion and is not deterministic,
    but every yielded result is byte-identical to its batch twin.
    """
    shared = context if context is not None else ExperimentContext()
    entries = _resolve_entries(experiment_ids)
    subscriptions = [_Subscription(entry, shared) for entry in entries]
    plan = _plan_cells(entries, shared)
    _warm_corpora(entries, plan, shared)

    subscribers: dict[CellKey, list[_Subscription]] = {}
    for subscription in subscriptions:
        for key in subscription.requested:
            subscribers.setdefault(key, []).append(subscription)

    # pure-analysis experiments have nothing pending: finalize them first, in
    # registry order, before any cell executes
    for subscription in subscriptions:
        if not subscription.pending:
            yield subscription.experiment.finalize()

    if not plan:
        return

    width = max_inflight if max_inflight is not None else shared.workers
    resolved: dict[CellKey, "TransplantResult"] = {}
    journals = _open_pass_journals(shared, plan)

    def _deliver(key: CellKey, result: "TransplantResult") -> list[ExperimentResult]:
        resolved[key] = result
        ready = []
        for subscription in subscribers.get(key, ()):
            if subscription.deliver(key, result):
                ready.append(subscription.experiment.finalize())
        return ready

    try:
        if width <= 1:
            # serial: same execution shape as the pre-streaming batch (per-cell
            # file sharding on the context's worker pool, campaign cell order)
            for key in plan:
                result = _resolve_cell(shared, key, shared.workers, shared.worker_pool, journals.get(key.translate))
                yield from _deliver(key, result)
        else:
            yield from _stream_concurrent(shared, plan, width, _deliver, journals)
    finally:
        for journal in journals.values():
            journal.close()

    _adopt_matrices(shared, resolved)


def _stream_concurrent(
    context: ExperimentContext, plan: list[CellKey], width: int, deliver, journals: dict | None = None
) -> Iterator[ExperimentResult]:
    """Bounded cell fan-out over the worker pool's thread lane.

    At most ``width`` cells are in flight at any moment (backpressure: the
    next cell is submitted only when one completes), and each cell runs its
    files serially — cell-level overlap replaces file-level sharding.  The
    thread lane comes from the context's persistent
    :class:`~repro.core.parallel.WorkerPool` when it has one, else from a
    pass-owned pool that is torn down with the generator.
    """
    from repro.core.parallel import WorkerPool

    owned_pool = None
    lane_pool = context.worker_pool
    if lane_pool is None:
        owned_pool = WorkerPool(width, "thread")
        lane_pool = owned_pool
    queued = deque(plan)
    inflight: dict = {}
    try:
        while queued or inflight:
            while queued and len(inflight) < width:
                key = queued.popleft()
                journal = (journals or {}).get(key.translate)
                inflight[lane_pool.submit_local(_resolve_cell, context, key, 1, None, journal)] = key
            done, _ = wait(inflight, return_when=FIRST_COMPLETED)
            for future in done:
                key = inflight.pop(future)
                yield from deliver(key, future.result())
    finally:
        if owned_pool is not None:
            owned_pool.shutdown()


def run_batch(experiment_ids=None, context: ExperimentContext | None = None) -> list[ExperimentResult]:
    """Run the selected experiments through one serial streaming pass.

    The compatibility core under :func:`repro.experiments.registry.run_all`
    and ``run_experiment``: results come back in selection order (registry
    order for None), and shared matrix work is deduplicated by the planner
    even though the pass is serial.
    """
    shared = context if context is not None else ExperimentContext()
    entries = _resolve_entries(experiment_ids)
    by_id = {
        result.experiment_id: result
        for result in stream_experiments([entry.id for entry in entries], shared, max_inflight=1)
    }
    return [by_id[entry.id] for entry in entries]
