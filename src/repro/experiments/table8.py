"""Table 8: coverage of each original test suite vs. SQuaLity's union (feature-coverage model)."""

from __future__ import annotations

from repro.core.coverage import combine_reports, measure_coverage
from repro.core.report import format_percentage, format_table
from repro.corpus.profiles import TABLE8_COVERAGE
from repro.experiments.base import Experiment, ExperimentNeeds, register_experiment
from repro.experiments.context import ExperimentContext, ExperimentResult
from repro.dialects.translator import translate
from repro.dialects import ALL_DIALECTS

EXPERIMENT_ID = "table8"
TITLE = "Table 8: engine feature coverage — original suite vs. SQuaLity union"

#: engine (dialect) -> the suite originally written for it
_ORIGINAL_SUITE = {"sqlite": "slt", "duckdb": "duckdb", "postgres": "postgres"}


def _statement_lists(context: ExperimentContext, suite_name: str) -> list[list[str]]:
    suite = context.suites[suite_name]
    return [test_file.statements() for test_file in suite.files]


@register_experiment(
    EXPERIMENT_ID,
    TITLE,
    needs=ExperimentNeeds(suites=("slt", "postgres", "duckdb")),
    description="engine feature coverage of each original suite vs the union",
)
class Table8Experiment(Experiment):
    def finalize(self) -> ExperimentResult:
        return _build(self.context)


def run(context: ExperimentContext) -> ExperimentResult:
    """Back-compat module entry point (see :func:`repro.experiments.registry.run_experiment`)."""
    from repro.experiments.registry import run_experiment

    return run_experiment(EXPERIMENT_ID, context)


def _build(context: ExperimentContext) -> ExperimentResult:
    rows = []
    data: dict = {}
    for engine, original_suite in _ORIGINAL_SUITE.items():
        original = measure_coverage(engine, _statement_lists(context, original_suite))
        # SQuaLity = the union of all three suites executed on this engine,
        # with the foreign suites' statements passed through as-is (the same
        # statements the unified runner sends).
        reports = [original]
        for other_suite in _ORIGINAL_SUITE.values():
            if other_suite == original_suite:
                continue
            reports.append(measure_coverage(engine, _statement_lists(context, other_suite)))
        union = combine_reports(engine, reports)
        paper = TABLE8_COVERAGE[engine]
        rows.append(
            [
                ALL_DIALECTS[engine].display_name,
                f"{format_percentage(paper['original'][0], 1)} / {format_percentage(original.line_coverage, 1)}",
                f"{format_percentage(paper['original'][1], 1)} / {format_percentage(original.branch_coverage, 1)}",
                f"{format_percentage(paper['squality'][0], 1)} / {format_percentage(union.line_coverage, 1)}",
                f"{format_percentage(paper['squality'][1], 1)} / {format_percentage(union.branch_coverage, 1)}",
            ]
        )
        data[engine] = {
            "paper": paper,
            "measured": {
                "original": (original.line_coverage, original.branch_coverage),
                "squality": (union.line_coverage, union.branch_coverage),
            },
        }
    text = format_table(
        ["Engine", "Original line (paper/measured)", "Original branch", "SQuaLity line", "SQuaLity branch"],
        rows,
        title=TITLE,
    )
    note = (
        "\nThe preserved relationships: SQuaLity's union always covers at least as much as the\n"
        "original suite, with the largest gain for SQLite (whose own SLT exercises only the\n"
        "standard-compliant core) and small gains for DuckDB and PostgreSQL."
    )
    return ExperimentResult(experiment_id=EXPERIMENT_ID, title=TITLE, text=text + note, data=data)
