"""``AdapterPool`` — reuse live adapters instead of rebuilding them per run.

Building an adapter is cheap for MiniDB but not free (dialect profile, fault
tables, function registry, expression evaluator), and the transplant pipeline
used to rebuild one per ``run_transplant`` call — for a ``run_matrix``
campaign that means suites × hosts rebuilds of the same four adapters.  The
pool keys idle adapters by ``(registry name, constructor kwargs)`` and hands
back a **reset** live instance on a hit, so a campaign touches each adapter
configuration exactly once.

Reset-on-acquire is the pool's state-leak guarantee: a leased adapter always
starts from a pristine database, whatever the previous lease did (committed
tables, dangling transactions, settings, even an emulated crash —
``MiniDBAdapter.reset`` reconnects a crashed session).  The only state that
survives a reuse is the session RNG, the same caveat the sharded executor
documents; the generated corpora never invoke nondeterministic SQL.

The pool is thread-safe: concurrent ``acquire`` calls receive distinct
instances (a new one is built when no idle adapter of that key is available).
Worker processes of the sharded executor each hold their own module-level
pool (see :func:`repro.core.parallel.worker_adapter_pool`), which is what
turns "one adapter per shard" into "one adapter per worker per campaign".
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

from repro.adapters.base import DBMSAdapter
from repro.adapters.registry import create_adapter, get_adapter_entry
from repro.errors import AdapterNotFoundError, AdapterQuarantinedError

#: key identifying one adapter configuration
PoolKey = tuple[str, tuple[tuple[str, object], ...]]


def pool_key(name: str, kwargs: dict) -> PoolKey:
    """Canonical pool key: aliases collapse onto their registry entry, so
    ``acquire("postgres")`` and ``acquire("postgresql")`` share one adapter."""
    try:
        canonical = get_adapter_entry(name).name
    except AdapterNotFoundError:
        canonical = name.lower()  # acquire() will raise when it tries to build
    return (canonical, tuple(sorted(kwargs.items())))


class CircuitBreaker:
    """Quarantine adapter configurations that keep failing.

    The resilience layer (:mod:`repro.core.resilience` consumers) records one
    failure per failed execution attempt and one success per cleanly finished
    unit of work, keyed by the same canonical :func:`pool_key` the pool uses.
    ``threshold`` *consecutive* failures quarantine the key: subsequent
    :meth:`AdapterPool.acquire` calls raise
    :class:`~repro.errors.AdapterQuarantinedError` instead of handing out an
    adapter that demonstrably cannot do work, and campaigns convert the
    affected cells into partial results.  Any success resets the streak, so
    a one-off transient fault never trips the breaker.

    Thread-safe; one process-global instance (:func:`adapter_breaker`) is
    shared by every pool by default — worker threads of one campaign each
    hold their own :class:`AdapterPool`, and a broken adapter configuration
    is broken for all of them.
    """

    def __init__(self, threshold: int = 3) -> None:
        self.threshold = threshold
        self._lock = threading.Lock()
        self._consecutive: dict[PoolKey, int] = {}
        self._quarantined: dict[PoolKey, str] = {}  # key -> last failure detail

    def record_failure(self, key: PoolKey, detail: str = "", threshold: int | None = None) -> bool:
        """Count one failure; returns True when this call quarantines ``key``."""
        limit = self.threshold if threshold is None else threshold
        with self._lock:
            if key in self._quarantined:
                return False
            streak = self._consecutive.get(key, 0) + 1
            self._consecutive[key] = streak
            if streak >= limit:
                self._quarantined[key] = detail
                return True
        return False

    def record_success(self, key: PoolKey) -> None:
        """A clean unit of work on ``key`` resets its failure streak."""
        with self._lock:
            self._consecutive.pop(key, None)

    def is_quarantined(self, key: PoolKey) -> bool:
        with self._lock:
            return key in self._quarantined

    def quarantined_keys(self) -> list[PoolKey]:
        with self._lock:
            return sorted(self._quarantined)

    def quarantine_detail(self, key: PoolKey) -> str:
        with self._lock:
            return self._quarantined.get(key, "")

    def reset(self) -> None:
        """Clear every streak and quarantine (tests; operator reset)."""
        with self._lock:
            self._consecutive.clear()
            self._quarantined.clear()


#: the process-global breaker every pool consults unless handed its own
_GLOBAL_BREAKER = CircuitBreaker()


def adapter_breaker() -> CircuitBreaker:
    """The process-global adapter circuit breaker."""
    return _GLOBAL_BREAKER


class AdapterPool:
    """A keyed pool of live, reusable DBMS adapters."""

    def __init__(self, breaker: CircuitBreaker | None = None) -> None:
        self._lock = threading.Lock()
        self._idle: dict[PoolKey, list[DBMSAdapter]] = {}
        self._leased: dict[int, tuple[PoolKey, DBMSAdapter]] = {}
        self._closed = False
        self.breaker = breaker if breaker is not None else _GLOBAL_BREAKER
        self.created = 0
        self.reused = 0

    # -- core protocol -----------------------------------------------------------------

    def acquire(self, name: str, **kwargs) -> DBMSAdapter:
        """A live adapter for ``name``: a reset idle one, or a fresh setup.

        The returned adapter is connected and pristine; hand it back with
        :meth:`release` (or use :meth:`lease`).  A configuration the circuit
        breaker has quarantined raises
        :class:`~repro.errors.AdapterQuarantinedError` instead of building an
        adapter that demonstrably cannot do work.
        """
        key = pool_key(name, kwargs)
        if self.breaker.is_quarantined(key):
            detail = self.breaker.quarantine_detail(key)
            raise AdapterQuarantinedError(
                f"adapter {key[0]!r} is quarantined after repeated infrastructure failures"
                + (f": {detail}" if detail else "")
            )
        with self._lock:
            if self._closed:
                raise RuntimeError("AdapterPool is closed")
            idle = self._idle.get(key)
            adapter = idle.pop() if idle else None
        if adapter is not None:
            try:
                adapter.reset()
            except Exception:
                # a reset failure must not leak the popped adapter (it is
                # neither idle nor leased at this point); the reset error is
                # the one that explains the failure, so a teardown error on
                # top of it is suppressed
                try:
                    adapter.teardown()
                except Exception:
                    pass
                raise
            with self._lock:
                self.reused += 1
                self._leased[id(adapter)] = (key, adapter)
            return adapter
        adapter = create_adapter(name, **kwargs)
        adapter.setup()
        with self._lock:
            self.created += 1
            self._leased[id(adapter)] = (key, adapter)
        return adapter

    def release(self, adapter: DBMSAdapter) -> None:
        """Return a leased adapter to the pool for reuse."""
        with self._lock:
            entry = self._leased.pop(id(adapter), None)
            if entry is None or self._closed:
                torn_down = True
            else:
                self._idle.setdefault(entry[0], []).append(adapter)
                torn_down = False
        if torn_down:
            adapter.teardown()

    def discard(self, adapter: DBMSAdapter) -> None:
        """Tear down a leased adapter instead of returning it (e.g. after an
        unrecoverable failure)."""
        with self._lock:
            self._leased.pop(id(adapter), None)
        adapter.teardown()

    @contextmanager
    def lease(self, name: str, **kwargs) -> Iterator[DBMSAdapter]:
        """``with pool.lease("duckdb") as adapter: ...`` — acquire + release."""
        adapter = self.acquire(name, **kwargs)
        try:
            yield adapter
        finally:
            self.release(adapter)

    # -- lifecycle and introspection ---------------------------------------------------

    def close(self) -> None:
        """Tear down every idle adapter; leased ones are torn down on release.

        Best-effort, never raises: close() runs from ``finally`` blocks
        (``run_matrix``, ``ExperimentContext.close``) where a teardown error
        would mask the in-flight failure that actually matters.  Per-adapter
        isolation means one bad teardown (e.g. a thread-affine sqlite3
        connection closed from another thread) cannot leak the rest; anything
        that refuses to tear down is left to garbage collection.
        """
        with self._lock:
            self._closed = True
            idle = [adapter for adapters in self._idle.values() for adapter in adapters]
            self._idle.clear()
        for adapter in idle:
            try:
                adapter.teardown()
            except Exception:
                pass

    def __enter__(self) -> "AdapterPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def idle_count(self) -> int:
        with self._lock:
            return sum(len(adapters) for adapters in self._idle.values())

    @property
    def leased_count(self) -> int:
        with self._lock:
            return len(self._leased)

    def stats(self) -> dict[str, int]:
        """Lifetime counters: builds avoided = ``reused``."""
        with self._lock:
            return {
                "created": self.created,
                "reused": self.reused,
                "idle": sum(len(adapters) for adapters in self._idle.values()),
                "leased": len(self._leased),
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stats = self.stats()
        return f"<AdapterPool created={stats['created']} reused={stats['reused']} idle={stats['idle']} leased={stats['leased']}>"
