"""Adapter registry: create adapters by name.

``create_adapter("sqlite")`` returns the real ``sqlite3`` adapter;
``"sqlite-mini"``, ``"postgres"``, ``"duckdb"``, and ``"mysql"`` return MiniDB
emulations with the corresponding dialect profile.  New adapters (the paper's
"Supporting a new DBMS" scenario) register themselves with
:func:`register_adapter`.
"""

from __future__ import annotations

from typing import Callable

from repro.adapters.base import DBMSAdapter
from repro.adapters.minidb_adapter import MiniDBAdapter
from repro.adapters.sqlite_adapter import SQLite3Adapter
from repro.errors import AdapterNotFoundError

_FACTORIES: dict[str, Callable[..., DBMSAdapter]] = {}


def register_adapter(name: str, factory: Callable[..., DBMSAdapter]) -> None:
    """Register ``factory`` under ``name`` (lowercase)."""
    _FACTORIES[name.lower()] = factory


def available_adapters() -> list[str]:
    """Names of all registered adapters."""
    return sorted(_FACTORIES)


def create_adapter(name: str, **kwargs) -> DBMSAdapter:
    """Instantiate (but do not connect) the adapter registered under ``name``."""
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        raise AdapterNotFoundError(f"no adapter named {name!r}; available: {available_adapters()}") from None
    return factory(**kwargs)


register_adapter("sqlite", lambda **kwargs: SQLite3Adapter(**kwargs))
register_adapter("sqlite3", lambda **kwargs: SQLite3Adapter(**kwargs))
register_adapter("sqlite-mini", lambda **kwargs: MiniDBAdapter("sqlite", **kwargs))
register_adapter("postgres", lambda **kwargs: MiniDBAdapter("postgres", **kwargs))
register_adapter("postgresql", lambda **kwargs: MiniDBAdapter("postgres", **kwargs))
register_adapter("duckdb", lambda **kwargs: MiniDBAdapter("duckdb", **kwargs))
register_adapter("mysql", lambda **kwargs: MiniDBAdapter("mysql", **kwargs))
