"""Adapter registry: create adapters by name.

``create_adapter("sqlite")`` returns the real ``sqlite3`` adapter;
``"sqlite-mini"``, ``"postgres"``, ``"duckdb"``, and ``"mysql"`` return MiniDB
emulations with the corresponding dialect profile.  New adapters (the paper's
"Supporting a new DBMS" scenario) register themselves with
:func:`register_adapter`, either the factory form::

    register_adapter("oracle", lambda **kwargs: OracleAdapter(**kwargs))

or the decorator form, which registers the class constructor directly::

    @register_adapter("oracle", aliases=("ora",), description="Oracle via oracledb")
    class OracleAdapter(DBMSAdapter):
        ...

The registry is symmetric with :mod:`repro.formats`: it is the single place
the execution core, the parallel workers, and the experiments CLI resolve
adapters through, and :class:`~repro.adapters.pool.AdapterPool` draws from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.adapters.base import DBMSAdapter
from repro.adapters.minidb_adapter import MiniDBAdapter
from repro.adapters.sqlite_adapter import SQLite3Adapter
from repro.errors import AdapterNotFoundError


@dataclass(frozen=True)
class AdapterEntry:
    """One registered adapter: its factory plus display metadata."""

    name: str
    factory: Callable[..., DBMSAdapter]
    aliases: tuple[str, ...] = ()
    description: str = ""


#: canonical name -> entry, in registration order
_ENTRIES: dict[str, AdapterEntry] = {}
#: every accepted name (canonical + aliases, lowercase) -> canonical name.
#: The indirection (rather than alias -> entry) means re-registering a name
#: atomically retargets its aliases too.
_NAMES: dict[str, str] = {}


def register_adapter(
    name: str,
    factory: Callable[..., DBMSAdapter] | None = None,
    *,
    aliases: tuple[str, ...] = (),
    description: str = "",
):
    """Register an adapter factory under ``name`` (plus ``aliases``).

    With ``factory`` given this registers immediately (the seed API).  Without
    it, returns a decorator for an adapter class or factory function.
    """

    def _register(target: Callable[..., DBMSAdapter]):
        entry = AdapterEntry(name=name.lower(), factory=target, aliases=tuple(alias.lower() for alias in aliases), description=description)
        _ENTRIES[entry.name] = entry
        _NAMES[entry.name] = entry.name
        for alias in entry.aliases:
            _NAMES[alias] = entry.name
        return target

    if factory is not None:
        return _register(factory)
    return _register


def available_adapters(include_aliases: bool = True) -> list[str]:
    """Names of all registered adapters (aliases included by default)."""
    if include_aliases:
        return sorted(_NAMES)
    return sorted(_ENTRIES)


def adapter_entries() -> list[AdapterEntry]:
    """The registered entries (canonical only, registration order)."""
    return list(_ENTRIES.values())


def get_adapter_entry(name: str) -> AdapterEntry:
    """The registry entry for ``name`` (canonical or alias, case-insensitive)."""
    try:
        return _ENTRIES[_NAMES[name.lower()]]
    except KeyError:
        raise AdapterNotFoundError(f"no adapter named {name!r}; available: {available_adapters()}") from None


def create_adapter(name: str, **kwargs) -> DBMSAdapter:
    """Instantiate (but do not connect) the adapter registered under ``name``."""
    return get_adapter_entry(name).factory(**kwargs)


register_adapter(
    "sqlite",
    lambda **kwargs: SQLite3Adapter(**kwargs),
    aliases=("sqlite3",),
    description="real sqlite3 engine (in-memory)",
)
register_adapter(
    "sqlite-mini",
    lambda **kwargs: MiniDBAdapter("sqlite", **kwargs),
    description="MiniDB emulation, SQLite dialect",
)
register_adapter(
    "postgres",
    lambda **kwargs: MiniDBAdapter("postgres", **kwargs),
    aliases=("postgresql",),
    description="MiniDB emulation, PostgreSQL dialect",
)
register_adapter(
    "duckdb",
    lambda **kwargs: MiniDBAdapter("duckdb", **kwargs),
    description="MiniDB emulation, DuckDB dialect",
)
register_adapter(
    "mysql",
    lambda **kwargs: MiniDBAdapter("mysql", **kwargs),
    aliases=("mariadb",),
    description="MiniDB emulation, MySQL dialect",
)
