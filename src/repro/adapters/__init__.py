"""DBMS adapters: the connector layer SQuaLity executes statements through.

The paper stresses that SQuaLity uses the *Python DBMS connectors* (not the
CLI clients) so that results can be compared consistently across systems.  We
mirror that: every adapter implements :class:`~repro.adapters.base.DBMSAdapter`
and returns :class:`~repro.adapters.base.ExecutionOutcome` objects with
connector-style rendered values.

Four adapters are provided:

* ``sqlite`` — the real ``sqlite3`` standard-library engine (the one genuine
  DBMS available offline),
* ``sqlite-mini``, ``postgres``, ``duckdb``, ``mysql`` — MiniDB sessions
  configured with the corresponding dialect profile (the substitution for the
  real client/server systems; see DESIGN.md).

Adapters resolve through the registry (:func:`create_adapter` /
:func:`register_adapter`), follow an explicit lifecycle
(``setup``/``reset``/``teardown``, context-manager supported), and are reused
across runs via :class:`AdapterPool` (see docs/ARCHITECTURE.md).
"""

from repro.adapters.base import DBMSAdapter, ExecutionOutcome, ExecutionStatus
from repro.adapters.minidb_adapter import MiniDBAdapter
from repro.adapters.sqlite_adapter import SQLite3Adapter
from repro.adapters.registry import (
    AdapterEntry,
    adapter_entries,
    available_adapters,
    create_adapter,
    get_adapter_entry,
    register_adapter,
)
from repro.adapters.pool import AdapterPool, CircuitBreaker, adapter_breaker
from repro.adapters.faults import FaultReport, known_fault_signatures

__all__ = [
    "DBMSAdapter",
    "ExecutionOutcome",
    "ExecutionStatus",
    "MiniDBAdapter",
    "SQLite3Adapter",
    "AdapterEntry",
    "AdapterPool",
    "CircuitBreaker",
    "adapter_breaker",
    "adapter_entries",
    "available_adapters",
    "create_adapter",
    "get_adapter_entry",
    "register_adapter",
    "FaultReport",
    "known_fault_signatures",
]
