"""Fault-emulation reporting utilities.

The crash/hang *injection* lives inside MiniDB sessions (driven by the dialect
profiles' :class:`~repro.dialects.base.FaultSignature` entries); this module
provides the reporting side used by the RQ4 experiment: enumerate the known
signatures, match outcomes against them, and summarise which bugs a
transplanted test-suite run rediscovered.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adapters.base import ExecutionOutcome, ExecutionStatus
from repro.dialects import ALL_DIALECTS
from repro.dialects.base import FaultSignature


@dataclass
class FaultReport:
    """One crash or hang observed while executing transplanted test cases."""

    dbms: str
    kind: str
    statement: str
    message: str
    reference: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.kind.upper()}] {self.dbms}: {self.message}"


def known_fault_signatures() -> dict[str, list[FaultSignature]]:
    """All documented crash/hang signatures per dialect."""
    return {name: list(profile.fault_signatures) for name, profile in ALL_DIALECTS.items() if profile.fault_signatures}


def collect_fault_reports(dbms: str, outcomes: list[ExecutionOutcome]) -> list[FaultReport]:
    """Extract crash/hang reports from a list of execution outcomes."""
    reports: list[FaultReport] = []
    for outcome in outcomes:
        if outcome.status is ExecutionStatus.CRASH:
            reports.append(FaultReport(dbms=dbms, kind="crash", statement=outcome.statement, message=outcome.error))
        elif outcome.status is ExecutionStatus.HANG:
            reports.append(FaultReport(dbms=dbms, kind="hang", statement=outcome.statement, message=outcome.error))
    return reports


@dataclass
class FaultSummary:
    """Aggregate crash/hang tally across a whole cross-execution campaign."""

    crashes: list[FaultReport] = field(default_factory=list)
    hangs: list[FaultReport] = field(default_factory=list)

    def add(self, report: FaultReport) -> None:
        if report.kind == "crash":
            self.crashes.append(report)
        else:
            self.hangs.append(report)

    def unique_crashes(self) -> int:
        """Distinct crash signatures (message text deduplicated)."""
        return len({report.message for report in self.crashes})

    def unique_hangs(self) -> int:
        return len({report.message for report in self.hangs})
