"""Adapter backed by the real SQLite engine (Python's ``sqlite3`` module).

This is the one genuine DBMS available in the offline environment; executing
the SLT-style corpora on it exercises the same code path the paper's SQuaLity
used for SQLite (a Python connector to a real engine).
"""

from __future__ import annotations

import sqlite3
from typing import Any

from repro.adapters.base import DBMSAdapter, ExecutionOutcome, ExecutionStatus
from repro.dialects.sqlite import SQLITE


class SQLite3Adapter(DBMSAdapter):
    """Executes statements on an in-memory ``sqlite3`` database."""

    name = "sqlite3"
    dialect = SQLITE

    def __init__(self, timeout_seconds: float | None = None, render_style: str = "python"):
        if timeout_seconds is None:
            # resolved at construction time from the resilience configuration
            # (set_default_timeout / REPRO_TIMEOUT_SECONDS / the built-in 5s),
            # so fork_config() ships the *resolved* value to workers
            from repro.core.resilience import default_timeout_seconds

            timeout_seconds = default_timeout_seconds()
        self.timeout_seconds = timeout_seconds
        self.render_style = render_style
        self.connection: sqlite3.Connection | None = None

    def fork_config(self) -> tuple[str, dict]:
        return (self.name, {"timeout_seconds": self.timeout_seconds, "render_style": self.render_style})

    def connect(self) -> None:
        # check_same_thread=False: the watchdog (repro.core.resilience) hands
        # execution to a helper thread while the owner waits on the deadline —
        # a sequential handoff, never concurrent access to the connection
        self.connection = sqlite3.connect(":memory:", check_same_thread=False)
        self.connection.isolation_level = None  # autocommit; BEGIN/COMMIT pass through
        # Interrupt very long statements so hang-inducing queries surface as
        # HANG outcomes instead of blocking the whole run.
        self.connection.set_progress_handler(self._make_progress_guard(), 1_000_000)
        self._interrupted = False

    def _make_progress_guard(self):
        import time

        started = {"at": time.monotonic()}

        def guard() -> int:
            if time.monotonic() - started["at"] > self.timeout_seconds:
                self._interrupted = True
                return 1  # non-zero interrupts the statement
            return 0

        self._progress_started = started
        return guard

    def reset(self) -> None:
        self.close()
        self.connect()

    def close(self) -> None:
        if self.connection is not None:
            self.connection.close()
            self.connection = None

    def execute(self, sql: str) -> ExecutionOutcome:
        if self.connection is None:
            self.connect()
        assert self.connection is not None
        import time

        self._interrupted = False
        self._progress_started["at"] = time.monotonic()
        cursor = self.connection.cursor()
        try:
            cursor.execute(sql)
        except sqlite3.OperationalError as error:
            if self._interrupted or "interrupted" in str(error).lower():
                return ExecutionOutcome(status=ExecutionStatus.HANG, error=f"statement exceeded {self.timeout_seconds}s", error_type="Timeout", statement=sql)
            return ExecutionOutcome(status=ExecutionStatus.ERROR, error=str(error), error_type="OperationalError", statement=sql)
        except sqlite3.DatabaseError as error:
            return ExecutionOutcome(status=ExecutionStatus.ERROR, error=str(error), error_type=type(error).__name__, statement=sql)
        except (OverflowError, ValueError) as error:
            return ExecutionOutcome(status=ExecutionStatus.ERROR, error=str(error), error_type=type(error).__name__, statement=sql)

        if cursor.description is None:
            return ExecutionOutcome(status=ExecutionStatus.OK, statement=sql)
        columns = [entry[0] for entry in cursor.description]
        raw_rows = cursor.fetchall()
        rows: list[list[Any]] = [list(row) for row in raw_rows]
        outcome = ExecutionOutcome(
            status=ExecutionStatus.OK,
            columns=columns,
            rows=rows,
            statement=sql,
        )
        # render lazily, same as the MiniDB adapter (see ExecutionOutcome.__getattr__)
        del outcome.rendered
        outcome._render_style = self.render_style
        return outcome
