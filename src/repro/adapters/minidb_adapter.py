"""Adapter running statements on a MiniDB session with a dialect profile."""

from __future__ import annotations

from repro.adapters.base import DBMSAdapter, ExecutionOutcome, ExecutionStatus
from repro.dialects.base import DialectProfile, get_dialect
from repro.engine.session import Session
from repro.errors import (
    DatabaseError,
    EngineCrash,
    EngineHang,
    ReproError,
    SQLSyntaxError,
)


class MiniDBAdapter(DBMSAdapter):
    """Executes statements on the MiniDB emulation of one DBMS dialect."""

    def __init__(self, dialect: DialectProfile | str, enable_faults: bool = True, seed: int = 0, render_style: str = "python"):
        self.dialect = get_dialect(dialect) if isinstance(dialect, str) else dialect
        self.name = self.dialect.name
        self.enable_faults = enable_faults
        self.seed = seed
        self.render_style = render_style
        self.session: Session | None = None

    def fork_config(self) -> tuple[str, dict]:
        # registry name "sqlite" builds the real sqlite3 adapter; the MiniDB
        # emulation of the sqlite dialect is registered as "sqlite-mini"
        registry_name = "sqlite-mini" if self.name == "sqlite" else self.name
        return (registry_name, {"enable_faults": self.enable_faults, "seed": self.seed, "render_style": self.render_style})

    def connect(self) -> None:
        self.session = Session(dialect=self.dialect, enable_faults=self.enable_faults, seed=self.seed)

    def reset(self) -> None:
        if self.session is None or self.session.crashed:
            self.connect()
        else:
            self.session.reset()

    def close(self) -> None:
        if self.session is not None:
            self.session.close()
            self.session = None

    @property
    def features_exercised(self) -> set[str]:
        """Engine feature/branch identifiers touched so far (Table 8 coverage)."""
        return set(self.session.features) if self.session is not None else set()

    def execute(self, sql: str) -> ExecutionOutcome:
        if self.session is None:
            self.connect()
        assert self.session is not None
        try:
            result = self.session.execute(sql)
        except EngineCrash as error:
            return ExecutionOutcome(status=ExecutionStatus.CRASH, error=str(error), error_type="EngineCrash", statement=sql)
        except EngineHang as error:
            return ExecutionOutcome(status=ExecutionStatus.HANG, error=str(error), error_type="EngineHang", statement=sql)
        except SQLSyntaxError as error:
            return ExecutionOutcome(status=ExecutionStatus.ERROR, error=f"syntax error: {error}", error_type="SQLSyntaxError", statement=sql)
        except (DatabaseError, ReproError) as error:
            return ExecutionOutcome(status=ExecutionStatus.ERROR, error=str(error), error_type=type(error).__name__, statement=sql)
        except RecursionError as error:  # deep expressions: report as an engine error
            return ExecutionOutcome(status=ExecutionStatus.ERROR, error=f"expression too deep: {error}", error_type="RecursionError", statement=sql)
        outcome = ExecutionOutcome(
            status=ExecutionStatus.OK,
            columns=result.columns if result.is_query else [],
            rows=result.rows,
            statement=sql,
        )
        # render lazily: comparisons consume the raw rows, so the text form is
        # only built when something (codec, SLT value lists) actually asks
        del outcome.rendered
        outcome._render_style = self.render_style
        return outcome
