"""Adapter interface and execution outcome model.

The paper's "Supporting a new DBMS" implication (Section 9) notes that adding
a DBMS to SQuaLity only requires implementing a handful of interface methods
(connect, set up / tear down a database, execute statements and queries) —
about 33 LOC per system.  :class:`DBMSAdapter` is that interface.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from repro.dialects.base import DialectProfile


class ExecutionStatus(enum.Enum):
    """Outcome category of executing one statement."""

    OK = "ok"
    ERROR = "error"
    CRASH = "crash"
    HANG = "hang"

    @property
    def is_abnormal(self) -> bool:
        """Crashes and hangs are never expected outcomes (Section 9)."""
        return self in (ExecutionStatus.CRASH, ExecutionStatus.HANG)


@dataclass
class ExecutionOutcome:
    """What happened when an adapter executed one statement."""

    status: ExecutionStatus
    columns: list[str] = field(default_factory=list)
    rows: list[list[Any]] = field(default_factory=list)
    rendered: list[list[str]] = field(default_factory=list)
    error: str = ""
    error_type: str = ""
    statement: str = ""

    def __getattr__(self, name: str) -> Any:
        # Lazy materialisation backstops.  The result codec stores query rows
        # column-major and the engine adapters defer text rendering; both drop
        # the corresponding field from the instance dict and park compact
        # backing state (``_row_columns``/``_row_count``/``_render_style``)
        # there instead.  Anything that reads the field — comparisons that
        # miss the columnar fast path, canonical serialization, equality —
        # rebuilds it here once; consumers that never look never pay.  The
        # backing state is plain data, so lazy outcomes pickle across process
        # workers and stay lazy on the other side.
        state = self.__dict__
        if name == "rows":
            columns = state.get("_row_columns")
            if columns is not None:
                rows = [list(row) for row in zip(*columns)]
            else:
                count = state.get("_row_count")
                if count is None:
                    raise AttributeError(name)
                rows = [[] for _ in range(count)]
            state["rows"] = rows
            return rows
        if name == "rendered":
            style = state.get("_render_style")
            if style is None:
                raise AttributeError(name)
            from repro.engine.values import render_value

            rendered = [[render_value(value, style) for value in row] for row in self.rows]
            state["rendered"] = rendered
            return rendered
        raise AttributeError(name)

    @property
    def ok(self) -> bool:
        return self.status is ExecutionStatus.OK

    @property
    def is_query_result(self) -> bool:
        return self.ok and bool(self.columns)

    def flat_values(self) -> list[str]:
        """All rendered values in row-major order (SLT value-wise comparison)."""
        return [value for row in self.rendered for value in row]


class DBMSAdapter(ABC):
    """Common interface over every DBMS SQuaLity can execute tests on.

    The lifecycle is explicit: :meth:`setup` opens the connection,
    :meth:`reset` restores a pristine database between test files (and between
    pooled reuses — see :class:`~repro.adapters.pool.AdapterPool`), and
    :meth:`teardown` releases everything.  ``connect``/``close`` remain the
    abstract primitives subclasses implement; ``setup``/``teardown`` are the
    lifecycle entry points callers (and the context-manager protocol) use, so
    an adapter can hook them without touching the connection primitives.
    """

    #: short machine name, e.g. ``"sqlite"``
    name: str = "abstract"
    #: dialect profile describing the system's SQL dialect
    dialect: DialectProfile

    @abstractmethod
    def connect(self) -> None:
        """Open a connection / create the in-process engine instance."""

    @abstractmethod
    def reset(self) -> None:
        """Drop all state so the next test file starts from a clean database."""

    @abstractmethod
    def execute(self, sql: str) -> ExecutionOutcome:
        """Execute one statement and describe the outcome (never raises)."""

    @abstractmethod
    def close(self) -> None:
        """Tear down the connection."""

    # -- lifecycle ----------------------------------------------------------------

    def setup(self) -> None:
        """Bring the adapter to a usable state (default: :meth:`connect`)."""
        self.connect()

    def teardown(self) -> None:
        """Release every resource (default: :meth:`close`)."""
        self.close()

    # -- conveniences shared by all adapters ---------------------------------------

    def fork_config(self) -> tuple[str, dict] | None:
        """Registry name + kwargs with which an equivalent fresh adapter can be
        built in a worker (for sharded execution), or None if it cannot.

        The default is None — sharded runs fall back to serial execution —
        because silently rebuilding an adapter without its constructor state
        could change results.  Adapters opt in by returning their registry
        name plus every kwarg needed to clone themselves (see
        :class:`~repro.adapters.minidb_adapter.MiniDBAdapter`).
        """
        return None

    def execute_many(self, statements: list[str]) -> list[ExecutionOutcome]:
        """Execute statements in order, stopping early only on a crash."""
        outcomes = []
        for statement in statements:
            outcome = self.execute(statement)
            outcomes.append(outcome)
            if outcome.status is ExecutionStatus.CRASH:
                break
        return outcomes

    # -- asyncio integration --------------------------------------------------------

    async def execute_async(self, sql: str) -> ExecutionOutcome:
        """Execute one statement without blocking the event loop.

        The default offloads the synchronous :meth:`execute` to the running
        loop's default thread executor — correct for every in-process adapter
        (sqlite3 releases the GIL inside C, MiniDB just computes).  Adapters
        wrapping a natively-async client override this with a real
        ``await``.
        """
        import asyncio

        return await asyncio.get_running_loop().run_in_executor(None, self.execute, sql)

    async def run_suite_async(self, suite, *, runner=None, executor=None, **runner_kwargs):
        """Run a whole test suite against this adapter without blocking the loop.

        Builds a :class:`~repro.core.runner.TestRunner` over this (already
        set-up) adapter — or uses the caller's ``runner`` — and offloads the
        synchronous suite execution to ``executor`` (None = the loop's default
        thread pool; pass :meth:`WorkerPool.local_executor
        <repro.core.parallel.WorkerPool.local_executor>` to share a campaign's
        thread lane).  One suite maps to one offloaded call, so an event loop
        can drive several adapters' suites concurrently — the async face of the
        streaming engine's cell fan-out.  Adapters backed by natively-async
        clients can override this to run record-by-record on the loop itself.
        """
        import asyncio

        if runner is None:
            # local import: repro.core.runner imports this module
            from repro.core.runner import TestRunner

            runner = TestRunner(self, **runner_kwargs)
        return await asyncio.get_running_loop().run_in_executor(executor, runner.run_suite, suite)

    def __enter__(self) -> "DBMSAdapter":
        self.setup()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.teardown()
