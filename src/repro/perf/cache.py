"""Statement-level caches for the parse → translate → plan hot path.

Every experiment driver replays the same suites — once per record, per suite,
per target host — so the pipeline's pure stages (tokenizing, dialect
translation, statement planning, fault-signature matching) recompute identical
work thousands of times.  This module provides the shared infrastructure those
stages memoize through:

* :class:`LRUCache` — a small, thread-safe LRU map with hit/miss statistics.
  Thread safety matters because the sharded suite executor
  (:mod:`repro.core.parallel`) runs worker threads against the same global
  caches.
* a process-wide registry so benchmarks can report hit rates
  (:func:`cache_stats`) and reset state between measurements
  (:func:`clear_caches`).
* a global enable switch (:func:`set_caching`, :func:`caching_disabled`) so
  benchmarks can compare the memoized pipeline against the seed-equivalent
  uncached path on identical inputs.

The module is deliberately dependency-free (stdlib only): the tokenizer, the
translator, and the engine session all import it without cycles.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "CacheStats",
    "LRUCache",
    "absorb_stats",
    "cache_stats",
    "caching_disabled",
    "caching_enabled",
    "clear_caches",
    "merge_stats",
    "registered_caches",
    "set_caching",
]

_MISSING = object()

#: Process-wide switch; ``False`` routes every consumer down its uncached
#: (seed-equivalent) code path.
_ENABLED = True

_REGISTRY: "OrderedDict[str, LRUCache]" = OrderedDict()
_REGISTRY_LOCK = threading.Lock()


class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    __slots__ = ("hits", "misses", "evictions")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def snapshot(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


class LRUCache:
    """A bounded least-recently-used map with statistics.

    Keys and values are caller-defined; values are returned by reference, so
    consumers must treat cached values as immutable (or copy on return, as the
    tokenizer does).
    """

    def __init__(self, name: str, maxsize: int = 4096, register: bool = True):
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.name = name
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._data: "OrderedDict[Any, Any]" = OrderedDict()
        self._lock = threading.Lock()
        if register:
            with _REGISTRY_LOCK:
                _REGISTRY[name] = self

    def __len__(self) -> int:
        return len(self._data)

    def peek(self, key: Any, default: Any = None) -> Any:
        """Lock-free read without a recency update.

        For hot memos of *pure* functions the full LRU bookkeeping (lock,
        ``move_to_end``) costs more than the lookup; ``peek`` trades exact
        recency for speed — eviction degrades toward insertion order — and a
        racing eviction merely surfaces as a miss and a recompute.
        """
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.stats.misses += 1
            return default
        self.stats.hits += 1
        return value

    def get(self, key: Any, default: Any = None) -> Any:
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.stats.misses += 1
                return default
            self._data.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: Any, value: Any) -> None:
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            if len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.stats.reset()


# -- global switch ------------------------------------------------------------------


def caching_enabled() -> bool:
    """Whether the pipeline caches are active."""
    return _ENABLED


def set_caching(enabled: bool) -> bool:
    """Set the global cache switch; returns the previous value."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


@contextmanager
def caching_disabled() -> Iterator[None]:
    """Run a block down the uncached, seed-equivalent pipeline path."""
    previous = set_caching(False)
    try:
        yield
    finally:
        set_caching(previous)


# -- registry-wide operations --------------------------------------------------------


def registered_caches() -> dict[str, LRUCache]:
    with _REGISTRY_LOCK:
        return dict(_REGISTRY)


def clear_caches() -> None:
    """Empty every registered cache and reset its statistics."""
    for cache in registered_caches().values():
        cache.clear()


def cache_stats() -> dict[str, dict[str, Any]]:
    """Statistics snapshot for every registered cache, keyed by cache name."""
    return {name: cache.stats.snapshot() for name, cache in registered_caches().items()}


def absorb_stats(snapshot: dict[str, dict[str, Any]]) -> None:
    """Fold a workers' stats snapshot into this process's registered caches.

    Process-pool workers accumulate cache activity in their own address
    space; absorbing their deltas keeps :func:`cache_stats` in the parent an
    accurate account of total pipeline activity regardless of executor.
    """
    caches = registered_caches()
    for name, stats in snapshot.items():
        cache = caches.get(name)
        if cache is None:
            continue
        cache.stats.hits += stats.get("hits", 0)
        cache.stats.misses += stats.get("misses", 0)
        cache.stats.evictions += stats.get("evictions", 0)


def merge_stats(*snapshots: dict[str, dict[str, Any]]) -> dict[str, dict[str, Any]]:
    """Merge several :func:`cache_stats` snapshots (e.g. from pool workers)."""
    merged: dict[str, dict[str, Any]] = {}
    for snapshot in snapshots:
        for name, stats in snapshot.items():
            bucket = merged.setdefault(name, {"hits": 0, "misses": 0, "evictions": 0})
            bucket["hits"] += stats.get("hits", 0)
            bucket["misses"] += stats.get("misses", 0)
            bucket["evictions"] += stats.get("evictions", 0)
    for bucket in merged.values():
        lookups = bucket["hits"] + bucket["misses"]
        bucket["hit_rate"] = round(bucket["hits"] / lookups, 4) if lookups else 0.0
    return merged
