"""Performance subsystem: statement-level caches and pipeline instrumentation.

See :mod:`repro.perf.cache` for the memoization layer shared by the tokenizer,
the dialect translator, and the MiniDB engine, and
:mod:`repro.core.parallel` for the sharded suite executor built on top of it.
"""

from repro.perf.cache import (
    LRUCache,
    cache_stats,
    caching_disabled,
    caching_enabled,
    clear_caches,
    merge_stats,
    set_caching,
)

__all__ = [
    "LRUCache",
    "cache_stats",
    "caching_disabled",
    "caching_enabled",
    "clear_caches",
    "merge_stats",
    "set_caching",
]
