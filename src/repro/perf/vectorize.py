"""Process-wide switch for the columnar (vectorized) executor paths.

The engine's hot loops — WHERE filtering, projection, DISTINCT keys,
aggregation grouping, ORDER-BY key extraction, and JOIN conditions — can
evaluate expressions through *compiled column programs* (see
:mod:`repro.engine.columnar`): each referenced column is resolved to a row
index once per plan, and the per-row evaluation becomes a chain of plain
closures instead of a ``RowContext`` dict build plus recursive dispatch.

The scalar row-at-a-time path is kept verbatim behind this switch so the
differential harness can pin ``vectorized == scalar`` byte-identity
(``tests/test_differential.py``), mirroring how ``repro.perf.cache``
gates the memo caches:

* ``REPRO_VECTORIZE=off|0|false|no`` in the environment disables the
  columnar paths for a whole process tree (workers inherit the env).
* :func:`vectorize_disabled` / :func:`set_vectorize` scope the switch in
  tests without touching the environment.

The switch only selects *how* expressions are evaluated; results are
byte-identical either way (compiled programs replicate the evaluator's
semantics — including feature-coverage touches and error ordering — and
fall back to the scalar path for any construct they do not cover).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

_ENABLED = os.environ.get("REPRO_VECTORIZE", "").strip().lower() not in ("off", "0", "false", "no")


def vectorize_enabled() -> bool:
    """True when the columnar executor paths are active."""
    return _ENABLED


def set_vectorize(enabled: bool) -> bool:
    """Set the switch; returns the previous value (for try/finally scoping)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


@contextmanager
def vectorize_disabled() -> Iterator[None]:
    """Scope with the columnar paths off — the scalar row-at-a-time engine."""
    previous = set_vectorize(False)
    try:
        yield
    finally:
        set_vectorize(previous)


@contextmanager
def vectorize_enabled_scope() -> Iterator[None]:
    """Scope with the columnar paths forced on (tests pinning both paths)."""
    previous = set_vectorize(True)
    try:
        yield
    finally:
        set_vectorize(previous)
