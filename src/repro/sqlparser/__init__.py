"""Best-effort, dialect-agnostic SQL analysis.

This subpackage replaces the ``sqlparse`` dependency used by the paper's
artifact.  It provides:

* :mod:`repro.sqlparser.tokenizer` — a SQL tokenizer that understands string
  literals, quoted identifiers, numbers, operators, and comments of all four
  studied dialects.
* :mod:`repro.sqlparser.statements` — statement splitting, statement-type
  classification (``SELECT``, ``CREATE TABLE``, ``PRAGMA``, ...), and
  SQL-standard compliance classification used by RQ2.
* :mod:`repro.sqlparser.analyzer` — structural analyses of individual
  statements (WHERE-predicate token counts, join detection, referenced
  functions), used by RQ2's Figure 3 and by the failure classifier.
"""

from repro.sqlparser.tokenizer import Token, TokenType, tokenize
from repro.sqlparser.statements import (
    StatementInfo,
    classify_statement,
    is_standard_statement,
    split_statements,
    statement_type,
)
from repro.sqlparser.analyzer import (
    JoinKind,
    SelectShape,
    analyze_select,
    extract_function_names,
    where_token_count,
)

__all__ = [
    "Token",
    "TokenType",
    "tokenize",
    "StatementInfo",
    "classify_statement",
    "is_standard_statement",
    "split_statements",
    "statement_type",
    "JoinKind",
    "SelectShape",
    "analyze_select",
    "extract_function_names",
    "where_token_count",
]
