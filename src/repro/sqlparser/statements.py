"""Statement splitting, statement-type classification, standard compliance.

This module implements the RQ2 methodology: every SQL statement extracted from
a test file is assigned a *statement type* (the leading verb phrase such as
``SELECT``, ``CREATE TABLE``, ``PRAGMA``) and a *standard compliance* flag that
says whether the statement type is defined by the ANSI/ISO SQL standard.

The classification is best-effort by design, mirroring the paper's use of
``sqlparse``: intentionally-broken statements used to exercise DBMS parsers
(``SELEC 1``) are classified under their literal leading token, and statements
wrapped in stray parentheses keep the parenthesis prefix, exactly as the paper
describes observing (Section 4, "Infrequently used SQL statements").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf import cache as perf_cache
from repro.sqlparser.tokenizer import Token, TokenType, tokenize

#: Statement types whose syntax is defined by the ANSI/ISO SQL standard [2].
#: ``CREATE INDEX`` is *not* part of the standard (the paper calls this out for
#: SLT's 35.9% of files); neither are ``PRAGMA``, ``SET``, ``EXPLAIN``,
#: ``VACUUM``, ``COPY``, ``SHOW``, or ``ATTACH``.
STANDARD_STATEMENT_TYPES = frozenset(
    {
        "SELECT",
        "INSERT",
        "UPDATE",
        "DELETE",
        "CREATE TABLE",
        "CREATE VIEW",
        "CREATE SCHEMA",
        "DROP TABLE",
        "DROP VIEW",
        "DROP SCHEMA",
        "ALTER TABLE",
        "WITH",
        "VALUES",
        "COMMIT",
        "ROLLBACK",
        "START TRANSACTION",
        "SAVEPOINT",
        "RELEASE SAVEPOINT",
        "GRANT",
        "REVOKE",
        "DECLARE",
        "FETCH",
        "CREATE FUNCTION",
        "DROP FUNCTION",
        "CREATE PROCEDURE",
        "DROP PROCEDURE",
        "CREATE TRIGGER",
        "DROP TRIGGER",
        "CREATE SEQUENCE",
        "DROP SEQUENCE",
        "TRUNCATE",
        "CASE",
    }
)

#: Statement types that are widely implemented but not standardized.  Used by
#: the analysis code to distinguish "non-standard but ubiquitous" (e.g.
#: ``CREATE INDEX``) from genuinely dialect-specific statements.
WIDELY_SUPPORTED_NONSTANDARD = frozenset(
    {
        "CREATE INDEX",
        "DROP INDEX",
        "BEGIN",
        "EXPLAIN",
        "ANALYZE",
    }
)

#: Two-word statement prefixes.  If the second keyword matches, the type is the
#: two-word phrase; otherwise it falls back to the first keyword.
_TWO_WORD_PREFIXES = {
    "CREATE": {
        "TABLE",
        "INDEX",
        "VIEW",
        "SCHEMA",
        "FUNCTION",
        "PROCEDURE",
        "TRIGGER",
        "SEQUENCE",
        "DATABASE",
        "TYPE",
        "MACRO",
        "EXTENSION",
        "ROLE",
        "USER",
    },
    "DROP": {
        "TABLE",
        "INDEX",
        "VIEW",
        "SCHEMA",
        "FUNCTION",
        "PROCEDURE",
        "TRIGGER",
        "SEQUENCE",
        "DATABASE",
        "TYPE",
        "MACRO",
        "EXTENSION",
        "ROLE",
        "USER",
    },
    "ALTER": {"TABLE", "INDEX", "VIEW", "SCHEMA", "SEQUENCE", "DATABASE", "TYPE", "ROLE", "USER"},
    "START": {"TRANSACTION"},
    "RELEASE": {"SAVEPOINT"},
    "LOCK": {"TABLE"},
    "REFRESH": {"MATERIALIZED"},
}

#: Modifier keywords skipped between CREATE/DROP and the object kind, e.g.
#: ``CREATE TEMP TABLE``, ``CREATE OR REPLACE VIEW``, ``CREATE UNIQUE INDEX``.
_CREATE_MODIFIERS = {
    "TEMP",
    "TEMPORARY",
    "UNIQUE",
    "OR",
    "REPLACE",
    "MATERIALIZED",
    "VIRTUAL",
    "GLOBAL",
    "LOCAL",
    "IF",
    "NOT",
    "EXISTS",
    "RECURSIVE",
}


@dataclass(frozen=True)
class StatementInfo:
    """Classification result for a single SQL statement."""

    text: str
    statement_type: str
    is_standard: bool
    is_query: bool
    is_cli_command: bool = False

    @property
    def is_widely_supported(self) -> bool:
        """True for non-standard statements that nearly every DBMS implements."""
        return self.is_standard or self.statement_type in WIDELY_SUPPORTED_NONSTANDARD


def split_statements(sql: str) -> list[str]:
    """Split a SQL script into individual statements on top-level semicolons.

    String literals, quoted identifiers, comments, and dollar-quoted bodies are
    respected, so semicolons inside them do not split.  Empty fragments are
    dropped.  Statements keep their original text (without the trailing
    semicolon), preserving internal whitespace.
    """
    statements: list[str] = []
    depth = 0
    start = 0
    last_significant_end = 0
    tokens = tokenize(sql, include_whitespace=True, include_comments=True)
    for token in tokens:
        if token.type is TokenType.PUNCTUATION:
            if token.value == "(":
                depth += 1
            elif token.value == ")":
                depth = max(0, depth - 1)
            elif token.value == ";" and depth == 0:
                fragment = sql[start : token.position].strip()
                if fragment:
                    statements.append(fragment)
                start = token.position + 1
        if token.type not in (TokenType.WHITESPACE, TokenType.COMMENT):
            last_significant_end = token.position + len(token.value)
    tail = sql[start:last_significant_end].strip() if last_significant_end > start else sql[start:].strip()
    if tail:
        statements.append(tail)
    return statements


def _significant_tokens(sql: str) -> list[Token]:
    try:
        return tokenize(sql)
    except Exception:
        # Intentionally malformed statements (e.g. unterminated strings used
        # to stress DBMS parsers) still deserve a best-effort classification:
        # fall back to whitespace splitting of the raw text.
        words = sql.split()
        fake: list[Token] = []
        offset = 0
        for word in words[:4]:
            fake.append(Token(TokenType.IDENTIFIER, word, word.lower(), offset))
            offset += len(word) + 1
        return fake


#: Statement-type memo: the classification is a pure function of the SQL text
#: and every record is classified once per host per campaign flavour.
_TYPE_MEMO = perf_cache.LRUCache("statement_type", maxsize=16384)


def statement_type(sql: str) -> str:
    """Return the statement type of ``sql`` (e.g. ``"SELECT"``, ``"CREATE TABLE"``).

    psql CLI meta-commands (lines starting with a backslash) are classified as
    ``CLI_COMMAND``; completely empty inputs as ``EMPTY``.
    """
    if not perf_cache.caching_enabled():
        return _statement_type(sql)
    cached = _TYPE_MEMO.peek(sql)
    if cached is not None:
        return cached
    result = _statement_type(sql)
    _TYPE_MEMO.put(sql, result)
    return result


def _statement_type(sql: str) -> str:
    stripped = sql.lstrip()
    if not stripped:
        return "EMPTY"
    if stripped.startswith("\\"):
        return "CLI_COMMAND"
    tokens = _significant_tokens(stripped)
    if not tokens:
        return "EMPTY"

    # Preserve stray-parenthesis prefixes, as the paper observed sqlparse does.
    paren_prefix = ""
    index = 0
    while index < len(tokens) and tokens[index].value == "(":
        paren_prefix += "("
        index += 1
    if index >= len(tokens):
        return paren_prefix or "EMPTY"

    head = tokens[index]
    if head.type is TokenType.KEYWORD:
        first = head.normalized
    elif head.type is TokenType.IDENTIFIER:
        first = head.value.upper()
    else:
        first = head.value.upper()

    result = first
    expected_seconds = _TWO_WORD_PREFIXES.get(first)
    if expected_seconds:
        for token in tokens[index + 1 : index + 8]:
            word = token.normalized if token.type is TokenType.KEYWORD else token.value.upper()
            if word in expected_seconds:
                result = f"{first} {word}"
                break
            if word not in _CREATE_MODIFIERS:
                break
    if first == "REFRESH" and result == "REFRESH MATERIALIZED":
        result = "REFRESH MATERIALIZED VIEW"
    return paren_prefix + result


def is_standard_statement(stype: str) -> bool:
    """Whether statement type ``stype`` is defined by the ANSI/ISO SQL standard."""
    return stype in STANDARD_STATEMENT_TYPES


_QUERY_TYPES = {"SELECT", "VALUES", "WITH", "SHOW", "EXPLAIN", "DESCRIBE", "PRAGMA", "FETCH"}


def classify_statement(sql: str) -> StatementInfo:
    """Classify one SQL statement and return a :class:`StatementInfo`."""
    stype = statement_type(sql)
    bare = stype.lstrip("(")
    return StatementInfo(
        text=sql,
        statement_type=stype,
        is_standard=is_standard_statement(bare),
        is_query=bare in _QUERY_TYPES,
        is_cli_command=stype == "CLI_COMMAND",
    )


def classify_script(sql: str) -> list[StatementInfo]:
    """Split a script and classify every statement."""
    return [classify_statement(statement) for statement in split_statements(sql)]
