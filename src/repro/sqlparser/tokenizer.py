"""A dialect-agnostic SQL tokenizer.

The tokenizer is deliberately permissive: its job is to turn SQL text from any
of the four studied dialects (SQLite, PostgreSQL, DuckDB, MySQL) into a flat
token stream that the statement classifier, the structural analyzer, and the
MiniDB parser can all consume.  It understands:

* single-quoted string literals with ``''`` escaping (and MySQL ``\\'``),
* dollar-quoted strings (PostgreSQL ``$$ ... $$`` / ``$tag$ ... $tag$``),
* double-quoted and backtick-quoted identifiers, and ``[bracketed]`` ones,
* line comments (``--`` and MySQL ``#``) and block comments (``/* ... */``),
* numeric literals including decimals, exponents and hex (``0x1F``),
* multi-character operators (``::``, ``||``, ``<=``, ``>=``, ``<>``, ``!=``,
  ``<<``, ``>>``, ``->``, ``->>``, ``**``),
* parameters (``?``, ``$1``, ``:name``, ``@name``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.errors import SQLSyntaxError
from repro.perf import cache as perf_cache


class TokenType(enum.Enum):
    """Lexical category of a :class:`Token`."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    QUOTED_IDENTIFIER = "quoted_identifier"
    STRING = "string"
    NUMBER = "number"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    PARAMETER = "parameter"
    COMMENT = "comment"
    WHITESPACE = "whitespace"


#: Keywords recognised across the four dialects.  The set is intentionally a
#: superset of the SQL standard: classification into standard / non-standard
#: happens later in :mod:`repro.sqlparser.statements`.
KEYWORDS = frozenset(
    """
    ABORT ADD ALL ALTER ANALYZE AND ANY AS ASC ASOF ATTACH AUTOINCREMENT
    BEGIN BETWEEN BIGINT BLOB BOOLEAN BOTH BY CASCADE CASE CAST CHECK COLLATE
    COLUMN COMMIT CONFLICT CONSTRAINT COPY CREATE CROSS CTE CURRENT CURRENT_DATE
    CURRENT_TIME CURRENT_TIMESTAMP DATABASE DEALLOCATE DECIMAL DEFAULT DEFERRABLE
    DELETE DESC DESCRIBE DETACH DISTINCT DIV DO DOUBLE DROP EACH ELSE END ESCAPE
    EXCEPT EXCLUSIVE EXEC EXECUTE EXISTS EXPLAIN FALSE FETCH FILTER FIRST FLOAT
    FOLLOWING FOR FOREIGN FROM FULL FUNCTION GLOB GRANT GROUP HAVING IF IGNORE
    ILIKE IMMEDIATE IN INDEX INDEXED INITIALLY INNER INSERT INSTEAD INT INTEGER
    INTERSECT INTERVAL INTO IS ISNULL JOIN KEY LANGUAGE LAST LEADING LEFT LIKE
    LIMIT LOAD LOCAL LOCK MATERIALIZED NATURAL NO NOT NOTHING NOTNULL NULL NULLS
    NUMERIC OF OFFSET ON ONLY OR ORDER OUTER OVER PARTITION PLAN PRAGMA PRECEDING
    PRECISION PREPARE PRIMARY PROCEDURE RAISE RANGE REAL RECURSIVE REFERENCES
    REGEXP REINDEX RELEASE RENAME REPLACE RESET RESTRICT RETURNING REVOKE RIGHT
    ROLLBACK ROW ROWS SAVEPOINT SCHEMA SELECT SEQUENCE SET SHOW SMALLINT SOME
    START TABLE TEMP TEMPORARY TEXT THEN TIES TIMESTAMP TO TRAILING TRANSACTION
    TRIGGER TRUE TRUNCATE TYPE UNBOUNDED UNION UNIQUE UPDATE USE USING VACUUM
    VALUES VARCHAR VIEW VIRTUAL WHEN WHERE WINDOW WITH WITHOUT WORK
    """.split()
)

#: Multi-character operators, longest first so greedy matching works.
_MULTI_CHAR_OPERATORS = (
    "->>",
    "::",
    "||",
    "<=",
    ">=",
    "<>",
    "!=",
    "==",
    "<<",
    ">>",
    "->",
    "**",
    "!~",
    "~*",
)

_SINGLE_CHAR_OPERATORS = set("+-*/%<>=~&|^!")
_PUNCTUATION = set("(),;.")


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``value`` preserves the original text (including quotes for strings and
    quoted identifiers) so the tokenizer is loss-less; ``normalized`` is the
    uppercase form for keywords and the unquoted form for identifiers/strings,
    which is what most consumers want to compare against.
    """

    type: TokenType
    value: str
    normalized: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        """Return True when this token is a keyword equal to one of ``names``."""
        return self.type is TokenType.KEYWORD and self.normalized in names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r})"


def _read_line_comment(text: str, pos: int) -> int:
    end = text.find("\n", pos)
    return len(text) if end == -1 else end


def _read_block_comment(text: str, pos: int) -> int:
    end = text.find("*/", pos + 2)
    if end == -1:
        raise SQLSyntaxError("unterminated block comment")
    return end + 2


def _read_single_quoted(text: str, pos: int, allow_backslash: bool = True) -> int:
    """Return the index one past the closing quote of a string starting at ``pos``."""
    i = pos + 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\\" and allow_backslash and i + 1 < n:
            i += 2
            continue
        if ch == "'":
            if i + 1 < n and text[i + 1] == "'":
                i += 2
                continue
            return i + 1
        i += 1
    raise SQLSyntaxError("unterminated string literal")


def _read_quoted(text: str, pos: int, quote: str) -> int:
    i = pos + 1
    n = len(text)
    while i < n:
        if text[i] == quote:
            if i + 1 < n and text[i + 1] == quote:
                i += 2
                continue
            return i + 1
        i += 1
    raise SQLSyntaxError(f"unterminated quoted identifier ({quote})")


def _read_dollar_quoted(text: str, pos: int) -> int | None:
    """Handle PostgreSQL dollar quoting.  Returns end index or None if not one."""
    n = len(text)
    i = pos + 1
    while i < n and (text[i].isalnum() or text[i] == "_"):
        i += 1
    if i >= n or text[i] != "$":
        return None
    tag = text[pos : i + 1]
    end = text.find(tag, i + 1)
    if end == -1:
        raise SQLSyntaxError("unterminated dollar-quoted string")
    return end + len(tag)


def _read_number(text: str, pos: int) -> int:
    n = len(text)
    i = pos
    if text.startswith("0x", pos) or text.startswith("0X", pos):
        i = pos + 2
        while i < n and (text[i].isdigit() or text[i].lower() in "abcdef"):
            i += 1
        return i
    seen_dot = False
    seen_exp = False
    while i < n:
        ch = text[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif ch in "eE" and not seen_exp and i + 1 < n and (
            text[i + 1].isdigit() or (text[i + 1] in "+-" and i + 2 < n and text[i + 2].isdigit())
        ):
            seen_exp = True
            i += 2 if text[i + 1] in "+-" else 1
        else:
            break
    return i


def _read_word(text: str, pos: int) -> int:
    n = len(text)
    i = pos
    while i < n and (text[i].isalnum() or text[i] in "_$"):
        i += 1
    return i


def iter_tokens(sql: str, include_whitespace: bool = False, include_comments: bool = False) -> Iterator[Token]:
    """Yield tokens for ``sql``.

    Whitespace and comments are skipped unless explicitly requested; most
    consumers only care about the significant tokens.
    """
    n = len(sql)
    pos = 0
    while pos < n:
        ch = sql[pos]

        if ch.isspace():
            end = pos
            while end < n and sql[end].isspace():
                end += 1
            if include_whitespace:
                yield Token(TokenType.WHITESPACE, sql[pos:end], " ", pos)
            pos = end
            continue

        if sql.startswith("--", pos) or ch == "#":
            end = _read_line_comment(sql, pos)
            if include_comments:
                yield Token(TokenType.COMMENT, sql[pos:end], sql[pos:end], pos)
            pos = end
            continue

        if sql.startswith("/*", pos):
            end = _read_block_comment(sql, pos)
            if include_comments:
                yield Token(TokenType.COMMENT, sql[pos:end], sql[pos:end], pos)
            pos = end
            continue

        if ch == "'":
            end = _read_single_quoted(sql, pos)
            raw = sql[pos:end]
            yield Token(TokenType.STRING, raw, raw[1:-1].replace("''", "'"), pos)
            pos = end
            continue

        if ch in ('"', "`"):
            end = _read_quoted(sql, pos, ch)
            raw = sql[pos:end]
            yield Token(TokenType.QUOTED_IDENTIFIER, raw, raw[1:-1].replace(ch * 2, ch), pos)
            pos = end
            continue

        if ch == "[":
            # ``[name]`` is a SQL-Server-style quoted identifier, but DuckDB
            # uses brackets for LIST literals (``[1, 2, 3]``); only treat the
            # bracketed text as an identifier when it looks like one.
            end = sql.find("]", pos)
            if end != -1:
                inner = sql[pos + 1 : end]
                if inner and inner.replace("_", "a").replace(" ", "a").isalnum() and not inner[:1].isdigit():
                    raw = sql[pos : end + 1]
                    yield Token(TokenType.QUOTED_IDENTIFIER, raw, inner, pos)
                    pos = end + 1
                    continue
            # fall through: treat as punctuation below

        if ch == "$":
            dq_end = _read_dollar_quoted(sql, pos)
            if dq_end is not None:
                raw = sql[pos:dq_end]
                inner = raw[raw.index("$", 1) + 1 : raw.rindex("$", 0, len(raw) - 1)]
                # strip the leading/trailing tag markers to recover the body
                tag_len = raw.index("$", 1) + 1
                body = raw[tag_len : len(raw) - tag_len]
                yield Token(TokenType.STRING, raw, body if body else inner, pos)
                pos = dq_end
                continue
            end = _read_word(sql, pos + 1)
            yield Token(TokenType.PARAMETER, sql[pos:end], sql[pos:end], pos)
            pos = end
            continue

        if ch in ("?",):
            yield Token(TokenType.PARAMETER, ch, ch, pos)
            pos += 1
            continue

        if ch in (":", "@") and pos + 1 < n and (sql[pos + 1].isalpha() or sql[pos + 1] == "_"):
            # ``::`` cast must win over ``:name`` parameters.
            if not sql.startswith("::", pos):
                end = _read_word(sql, pos + 1)
                yield Token(TokenType.PARAMETER, sql[pos:end], sql[pos:end], pos)
                pos = end
                continue

        if ch.isdigit() or (ch == "." and pos + 1 < n and sql[pos + 1].isdigit()):
            end = _read_number(sql, pos)
            yield Token(TokenType.NUMBER, sql[pos:end], sql[pos:end], pos)
            pos = end
            continue

        if ch.isalpha() or ch == "_":
            end = _read_word(sql, pos)
            word = sql[pos:end]
            upper = word.upper()
            if upper in KEYWORDS:
                yield Token(TokenType.KEYWORD, word, upper, pos)
            else:
                yield Token(TokenType.IDENTIFIER, word, word.lower(), pos)
            pos = end
            continue

        matched_multi = False
        for op in _MULTI_CHAR_OPERATORS:
            if sql.startswith(op, pos):
                yield Token(TokenType.OPERATOR, op, op, pos)
                pos += len(op)
                matched_multi = True
                break
        if matched_multi:
            continue

        if ch in _SINGLE_CHAR_OPERATORS:
            yield Token(TokenType.OPERATOR, ch, ch, pos)
            pos += 1
            continue

        if ch in _PUNCTUATION or ch in "[]{}":
            yield Token(TokenType.PUNCTUATION, ch, ch, pos)
            pos += 1
            continue

        if ch == ":":
            # a bare colon (DuckDB struct literals ``{'k': 1}``, PostgreSQL
            # slice syntax); ``::`` and ``:name`` parameters are handled above.
            yield Token(TokenType.OPERATOR, ch, ch, pos)
            pos += 1
            continue

        if ch == "\\":
            # psql meta-command leaked into SQL text; emit as operator so the
            # classifier can flag the statement as a CLI command.
            yield Token(TokenType.OPERATOR, ch, ch, pos)
            pos += 1
            continue

        raise SQLSyntaxError(f"unexpected character {ch!r} at offset {pos}")


#: Memoized token streams for the default (significant-tokens-only) mode.
#: Values are tuples: the public API hands out fresh lists so callers may
#: mutate their copy without corrupting the cache.
_TOKEN_CACHE = perf_cache.LRUCache("tokenize", maxsize=16384)

#: Statements longer than this are not worth interning (one-off bulk scripts).
_TOKEN_CACHE_MAX_SQL = 20_000


def tokenize(sql: str, include_whitespace: bool = False, include_comments: bool = False) -> list[Token]:
    """Tokenize ``sql`` into a list of :class:`Token` objects.

    Results for the default mode are memoized process-wide: the translator,
    the statement classifier, and the MiniDB parser repeatedly tokenize the
    same statements when a suite is replayed across hosts.
    """
    if (
        include_whitespace
        or include_comments
        or len(sql) > _TOKEN_CACHE_MAX_SQL
        or not perf_cache.caching_enabled()
    ):
        return list(iter_tokens(sql, include_whitespace=include_whitespace, include_comments=include_comments))
    cached = _TOKEN_CACHE.peek(sql)
    if cached is None:
        cached = tuple(iter_tokens(sql))
        _TOKEN_CACHE.put(sql, cached)
    return list(cached)


def strip_comments(sql: str) -> str:
    """Return ``sql`` with comments removed but everything else intact."""
    parts: list[str] = []
    last = 0
    for token in iter_tokens(sql, include_whitespace=True, include_comments=True):
        if token.type is TokenType.COMMENT:
            parts.append(sql[last : token.position])
            last = token.position + len(token.value)
    parts.append(sql[last:])
    return "".join(parts)
