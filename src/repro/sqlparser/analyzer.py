"""Structural analyses of individual SQL statements.

Used by RQ2 (Figure 3: distribution of tokens in WHERE predicates, join
complexity) and by the failure classifier (extracting referenced function
names, cast operators, and configuration variables from failing statements).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.perf import cache as perf_cache
from repro.sqlparser.tokenizer import Token, TokenType, tokenize


class JoinKind(enum.Enum):
    """Join syntax families distinguished by the paper's RQ2 analysis."""

    NONE = "none"
    IMPLICIT = "implicit"
    INNER = "inner"
    LEFT = "left"
    RIGHT = "right"
    FULL = "full"
    CROSS = "cross"
    ASOF = "asof"


@dataclass
class SelectShape:
    """Structural summary of a single SELECT statement."""

    has_where: bool = False
    where_tokens: int = 0
    join_kinds: list[JoinKind] = field(default_factory=list)
    from_table_count: int = 0
    has_group_by: bool = False
    has_order_by: bool = False
    has_limit: bool = False
    has_subquery: bool = False
    has_aggregate: bool = False
    function_names: list[str] = field(default_factory=list)

    @property
    def join_kind(self) -> JoinKind:
        """The dominant join kind (explicit joins win over implicit ones)."""
        explicit = [kind for kind in self.join_kinds if kind not in (JoinKind.NONE, JoinKind.IMPLICIT)]
        if explicit:
            return explicit[0]
        if JoinKind.IMPLICIT in self.join_kinds:
            return JoinKind.IMPLICIT
        return JoinKind.NONE

    @property
    def has_join(self) -> bool:
        return self.join_kind is not JoinKind.NONE


_AGGREGATE_FUNCTIONS = {"count", "sum", "avg", "min", "max", "median", "group_concat", "string_agg", "total"}

#: Keywords that terminate a WHERE clause at the same nesting depth.
_WHERE_TERMINATORS = {"GROUP", "ORDER", "LIMIT", "OFFSET", "HAVING", "UNION", "INTERSECT", "EXCEPT", "WINDOW", "FETCH"}


def _safe_tokenize(sql: str) -> list[Token]:
    try:
        return tokenize(sql)
    except Exception:
        return []


#: Predicate-complexity memo: the count is a pure function of the SQL text and
#: the analysis pass recomputes it for every record per campaign flavour.
_WHERE_COUNT_MEMO = perf_cache.LRUCache("where_tokens", maxsize=16384)


def where_token_count(sql: str) -> int:
    """Count significant tokens in the (first, top-level) WHERE predicate.

    Returns 0 when the statement has no WHERE clause, which the paper plots as
    the ``0`` bucket of Figure 3.  The count includes identifiers, literals,
    operators, and keywords of the predicate, but not the ``WHERE`` keyword
    itself — matching a simple "how complex is this predicate" reading.
    """
    if not perf_cache.caching_enabled():
        return _where_token_count(sql)
    cached = _WHERE_COUNT_MEMO.peek(sql)
    if cached is not None:
        return cached
    count = _where_token_count(sql)
    _WHERE_COUNT_MEMO.put(sql, count)
    return count


def _where_token_count(sql: str) -> int:
    tokens = _safe_tokenize(sql)
    count = 0
    depth = 0
    in_where = False
    where_depth = 0
    for token in tokens:
        if token.type is TokenType.PUNCTUATION:
            if token.value == "(":
                depth += 1
            elif token.value == ")":
                depth -= 1
                if in_where and depth < where_depth:
                    break
        if not in_where:
            if token.is_keyword("WHERE"):
                in_where = True
                where_depth = depth
            continue
        if token.type is TokenType.KEYWORD and depth == where_depth and token.normalized in _WHERE_TERMINATORS:
            break
        if token.type is TokenType.PUNCTUATION and token.value == ";":
            break
        count += 1
    return count


def extract_function_names(sql: str) -> list[str]:
    """Return lowercase names of all function-call sites in ``sql``.

    A function call is an identifier (or non-reserved keyword such as ``LEFT``)
    immediately followed by an opening parenthesis.  Duplicates are preserved
    in call order, which lets callers count usage frequency.
    """
    tokens = _safe_tokenize(sql)
    names: list[str] = []
    for current, nxt in zip(tokens, tokens[1:]):
        if nxt.type is TokenType.PUNCTUATION and nxt.value == "(":
            if current.type is TokenType.IDENTIFIER:
                names.append(current.normalized)
            elif current.type is TokenType.KEYWORD and current.normalized in ("LEFT", "RIGHT", "REPLACE", "IF"):
                names.append(current.normalized.lower())
    return names


def uses_cast_operator(sql: str) -> bool:
    """True when the statement uses the PostgreSQL/DuckDB ``::`` cast operator."""
    return any(token.type is TokenType.OPERATOR and token.value == "::" for token in _safe_tokenize(sql))


def referenced_settings(sql: str) -> list[str]:
    """Extract setting names referenced by SET / PRAGMA statements."""
    tokens = _safe_tokenize(sql)
    if not tokens:
        return []
    head = tokens[0]
    if head.is_keyword("SET") or head.is_keyword("PRAGMA"):
        names = []
        for token in tokens[1:]:
            if token.type in (TokenType.IDENTIFIER, TokenType.QUOTED_IDENTIFIER):
                names.append(token.normalized)
                break
            if token.type is TokenType.KEYWORD and token.normalized not in ("LOCAL", "SESSION", "GLOBAL", "TO"):
                names.append(token.normalized.lower())
                break
        return names
    return []


def analyze_select(sql: str) -> SelectShape:
    """Analyze the structure of a SELECT statement (joins, WHERE, aggregates)."""
    shape = SelectShape()
    tokens = _safe_tokenize(sql)
    if not tokens:
        return shape

    shape.function_names = extract_function_names(sql)
    shape.has_aggregate = any(name in _AGGREGATE_FUNCTIONS for name in shape.function_names)
    shape.where_tokens = where_token_count(sql)
    shape.has_where = shape.where_tokens > 0

    depth = 0
    in_from = False
    from_depth = 0
    select_seen = 0
    previous_keyword = ""
    for index, token in enumerate(tokens):
        if token.type is TokenType.PUNCTUATION:
            if token.value == "(":
                depth += 1
            elif token.value == ")":
                depth -= 1
                if in_from and depth < from_depth:
                    in_from = False
            continue
        if token.type is not TokenType.KEYWORD:
            if in_from and depth == from_depth and token.type in (TokenType.IDENTIFIER, TokenType.QUOTED_IDENTIFIER):
                if previous_keyword not in ("AS", "ON", "USING") and (
                    index == 0 or tokens[index - 1].value in (",", "FROM", "JOIN") or tokens[index - 1].is_keyword("FROM", "JOIN")
                ):
                    shape.from_table_count += 1
            previous_keyword = ""
            continue

        keyword = token.normalized
        if keyword == "SELECT":
            select_seen += 1
            if select_seen > 1 or depth > 0:
                shape.has_subquery = shape.has_subquery or depth > 0 or select_seen > 1
        elif keyword == "FROM" and depth == 0 and not in_from:
            in_from = True
            from_depth = depth
        elif keyword in ("WHERE", "GROUP", "ORDER", "LIMIT", "HAVING", "UNION", "INTERSECT", "EXCEPT") and depth == from_depth:
            in_from = False
        if keyword == "GROUP":
            shape.has_group_by = True
        elif keyword == "ORDER":
            shape.has_order_by = True
        elif keyword == "LIMIT":
            shape.has_limit = True
        elif keyword == "JOIN":
            kind = {
                "INNER": JoinKind.INNER,
                "LEFT": JoinKind.LEFT,
                "RIGHT": JoinKind.RIGHT,
                "FULL": JoinKind.FULL,
                "CROSS": JoinKind.CROSS,
                "ASOF": JoinKind.ASOF,
                "OUTER": JoinKind.LEFT,
            }.get(previous_keyword, JoinKind.INNER)
            shape.join_kinds.append(kind)
        previous_keyword = keyword

    if not shape.join_kinds and shape.from_table_count > 1:
        shape.join_kinds.append(JoinKind.IMPLICIT)
    return shape


def predicate_bucket(token_count: int) -> str:
    """Map a WHERE token count onto the buckets used by Figure 3."""
    if token_count == 0:
        return "0"
    if token_count <= 2:
        return "1-2"
    if token_count <= 10:
        return "3-10"
    if token_count <= 100:
        return "11-100"
    return "100+"


#: Order of Figure 3 buckets, exported so plots/benchmarks agree on ordering.
PREDICATE_BUCKETS = ("0", "1-2", "3-10", "11-100", "100+")
