"""Expression evaluation with dialect-sensitive semantics.

The evaluator is where most of the paper's semantic incompatibilities live:

* ``/`` on two integers truncates (SQLite, PostgreSQL) or produces a decimal
  result (MySQL, DuckDB) depending on the dialect profile,
* ``'abc' + 1`` works only where weak typing allows it,
* ``||`` is concatenation except for MySQL, where it is logical OR,
* ``::`` casts exist only in PostgreSQL/DuckDB,
* row-value comparison with a NULL component returns NULL except in DuckDB,
* ``COALESCE(1, 1.0)`` keeps integer typing only in SQLite (implemented in the
  function registry).
"""

from __future__ import annotations

import re
from typing import Any, Callable

from repro.dialects.base import DialectProfile, DivisionSemantics
from repro.engine import ast_nodes as ast
from repro.engine.functions import FunctionRegistry
from repro.engine.values import compare_values, to_boolean, to_number, cast_value
from repro.errors import (
    CatalogError,
    ConversionError,
    DatabaseError,
    UnsupportedOperatorError,
    UnsupportedTypeError,
)
from repro.perf import cache as perf_cache


#: Sentinel marking a column name bound under more than one qualifier.
_AMBIGUOUS = object()

#: Interned "operator.<op>" feature strings (built once instead of per call).
_OPERATOR_FEATURES: dict[str, str] = {}

#: Interned "function.<name>" feature strings (cf. ``_OPERATOR_FEATURES``).
_FUNCTION_FEATURES: dict[str, str] = {}

#: Three-way-comparison verdict per comparison operator: one dict hit instead
#: of walking an ``if`` chain per row (profiling showed ``_comparison`` and
#: ``_eval_binaryop``'s operator chains as the top per-row dispatch costs).
_COMPARISON_VERDICTS: dict[str, Callable[[int], bool]] = {
    "=": lambda r: r == 0,
    "!=": lambda r: r != 0,
    "<": lambda r: r < 0,
    ">": lambda r: r > 0,
    "<=": lambda r: r <= 0,
    ">=": lambda r: r >= 0,
}

_LOGICAL_OPERATORS = frozenset(("AND", "OR"))
_ARITHMETIC_OPERATORS = frozenset(("+", "-", "*", "/", "%", "DIV"))

#: Compiled LIKE patterns, keyed by (pattern, case_insensitive).  LIKE over a
#: table re-derives the same regex for every row; the memo collapses that to
#: one compile per distinct pattern.
_LIKE_REGEX_CACHE = perf_cache.LRUCache("like-regex", maxsize=2048)


def _like_regex(pattern: str, case_insensitive: bool) -> "re.Pattern[str]":
    """The compiled regex equivalent of one SQL LIKE pattern."""
    if not perf_cache.caching_enabled():
        return _compile_like(pattern, case_insensitive)
    key = (pattern, case_insensitive)
    compiled = _LIKE_REGEX_CACHE.peek(key)
    if compiled is None:
        compiled = _compile_like(pattern, case_insensitive)
        _LIKE_REGEX_CACHE.put(key, compiled)
    return compiled


def _compile_like(pattern: str, case_insensitive: bool) -> "re.Pattern[str]":
    # re.escape escapes % and _ as themselves (no backslash needed), handle both
    regex = "^" + re.escape(pattern).replace(r"\%", ".*").replace("%", ".*").replace("_", ".") + "$"
    return re.compile(regex, re.IGNORECASE if case_insensitive else 0)


def _predicate_truth(result: Any) -> bool:
    """WHERE/HAVING truth of one evaluated predicate result (NULL is false).

    Module-level so the columnar executor's compiled programs share the exact
    semantics of :meth:`ExpressionEvaluator.evaluate_predicate`.
    """
    # comparisons, AND/OR, IS, IN, LIKE ... all yield bool or None: take
    # the identity checks before any isinstance dispatch
    if result is True:
        return True
    if result is False or result is None:
        return False
    if isinstance(result, (int, float)):
        return result != 0
    if isinstance(result, str):
        try:
            return bool(to_boolean(result))
        except ConversionError:
            return False
    return bool(result)


def _as_bool(value: Any) -> bool | None:
    """Truth value for AND/OR operands (module-level: built once, not per call)."""
    if value is None:
        return None
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    try:
        return to_boolean(value)
    except ConversionError:
        return None


class RowContext:
    """Column name -> value bindings for the row currently being evaluated.

    Both bare (``a``) and qualified (``t1.a``) names are stored; an outer
    context supports correlated subqueries.  Unqualified lookups that have to
    fall back to qualified bindings are resolved through a lazily built
    suffix index instead of re-scanning every binding on each reference; the
    index is rebuilt whenever new bindings have been added since it was built.
    """

    __slots__ = ("values", "outer", "_suffix_index", "_suffix_index_size")

    def __init__(self, values: dict[str, Any] | None = None, outer: "RowContext | None" = None):
        self.values: dict[str, Any] = values if values is not None else {}
        self.outer = outer
        self._suffix_index: dict[str, Any] | None = None
        self._suffix_index_size = -1

    def bind(self, name: str, value: Any) -> None:
        self.values[name.lower()] = value

    def _qualified_suffix_index(self) -> dict[str, Any]:
        """Map of bare column name -> qualified binding key (or ambiguity mark)."""
        index: dict[str, Any] = {}
        for binding in self.values:
            _, dot, suffix = binding.rpartition(".")
            if not dot:
                continue
            index[suffix] = _AMBIGUOUS if suffix in index else binding
        self._suffix_index = index
        self._suffix_index_size = len(self.values)
        return index

    def lookup(self, name: str, table: str | None = None) -> Any:
        key = f"{table}.{name}".lower() if table else name.lower()
        values = self.values
        if key in values:
            return values[key]
        if table is None:
            # try any qualified binding that ends with .name
            index = self._suffix_index
            if index is None or self._suffix_index_size != len(values):
                index = self._qualified_suffix_index()
            match = index.get(key)
            if match is _AMBIGUOUS:
                raise CatalogError(f"ambiguous column name: {name}")
            if match is not None:
                return values[match]
        if self.outer is not None:
            return self.outer.lookup(name, table)
        raise CatalogError(f"no such column: {key}")

    def has(self, name: str, table: str | None = None) -> bool:
        try:
            self.lookup(name, table)
            return True
        except CatalogError:
            return False


class ExpressionEvaluator:
    """Evaluates expression AST nodes against a :class:`RowContext`."""

    def __init__(
        self,
        dialect: DialectProfile,
        functions: FunctionRegistry,
        subquery_executor: Callable[[ast.SelectStatement, RowContext | None], list[list[Any]]] | None = None,
        feature_hook: Callable[[str], None] | None = None,
    ):
        self.dialect = dialect
        self.functions = functions
        self.subquery_executor = subquery_executor
        self._feature_hook = feature_hook or (lambda name: None)
        # hot-path alias: touches go straight to the hook (for a live session,
        # ``features.add``) without the intermediate method frame
        self._touch = self._feature_hook
        # node class -> bound handler, filled on first encounter; avoids the
        # per-call string build + getattr of the seed dispatch
        self._dispatch_table: dict[type, Callable[[Any, RowContext], Any]] = {}

    # -- helpers ----------------------------------------------------------------

    def _numeric(self, value: Any) -> int | float | None:
        return to_number(value, strict=self.dialect.strict_types and not self.dialect.allows_string_plus_integer)

    # -- entry point ------------------------------------------------------------

    def evaluate(self, node: ast.Expression, context: RowContext) -> Any:
        node_type = type(node)
        # inlined fast paths for the two leaf nodes that dominate every
        # predicate and projection (profile: ~half of all evaluate calls)
        if node_type is ast.Literal:
            return node.value
        if node_type is ast.ColumnRef:
            return context.lookup(node.name, node.table)
        method = self._dispatch_table.get(node_type)
        if method is None:
            method = getattr(self, "_eval_" + node_type.__name__.lower(), None)
            if method is None:
                raise DatabaseError(f"cannot evaluate expression node {node_type.__name__}")
            self._dispatch_table[node_type] = method
        return method(node, context)

    def evaluate_predicate(self, node: ast.Expression, context: RowContext) -> bool:
        """Evaluate ``node`` as a WHERE/HAVING predicate (NULL counts as false)."""
        return _predicate_truth(self.evaluate(node, context))

    # -- node handlers ------------------------------------------------------------

    def _eval_literal(self, node: ast.Literal, context: RowContext) -> Any:
        return node.value

    def _eval_columnref(self, node: ast.ColumnRef, context: RowContext) -> Any:
        return context.lookup(node.name, node.table)

    def _eval_star(self, node: ast.Star, context: RowContext) -> Any:
        raise DatabaseError("* is only valid in a SELECT projection or COUNT(*)")

    def _eval_unaryop(self, node: ast.UnaryOp, context: RowContext) -> Any:
        operand = self.evaluate(node.operand, context)
        if node.operator == "NOT":
            if operand is None:
                return None
            return not bool(operand)
        if node.operator == "-":
            number = self._numeric(operand)
            return None if number is None else -number
        if node.operator == "~":
            number = self._numeric(operand)
            return None if number is None else ~int(number)
        raise UnsupportedOperatorError(f"unsupported unary operator {node.operator}")

    def _eval_binaryop(self, node: ast.BinaryOp, context: RowContext) -> Any:
        operator = node.operator
        feature = _OPERATOR_FEATURES.get(operator)
        if feature is None:
            feature = _OPERATOR_FEATURES[operator] = "operator." + operator
        self._touch(feature)

        left = self.evaluate(node.left, context)
        right = self.evaluate(node.right, context)

        # ordered by per-row frequency: comparisons, then AND/OR, then math
        verdict = _COMPARISON_VERDICTS.get(operator)
        if verdict is not None:
            return self._comparison(operator, left, right)
        if operator in _LOGICAL_OPERATORS:
            return self._logical(operator, left, right)
        if operator in _ARITHMETIC_OPERATORS:
            return self._arithmetic(operator, left, right)
        if operator == "||":
            return self._concat_or_or(left, right)
        if operator in ("IS", "IS NOT"):
            equal = self._is_equal(left, right)
            return equal if operator == "IS" else not equal
        if operator in ("IS DISTINCT FROM", "IS NOT DISTINCT FROM"):
            equal = self._is_equal(left, right)
            return (not equal) if operator == "IS DISTINCT FROM" else equal
        raise UnsupportedOperatorError(f"unsupported operator {operator}")

    def _logical(self, operator: str, left: Any, right: Any) -> Any:
        left_bool, right_bool = _as_bool(left), _as_bool(right)
        if operator == "AND":
            if left_bool is False or right_bool is False:
                return False
            if left_bool is None or right_bool is None:
                return None
            return True
        if left_bool is True or right_bool is True:
            return True
        if left_bool is None or right_bool is None:
            return None
        return False

    def _comparison(self, operator: str, left: Any, right: Any) -> Any:
        # Row values compare element-wise; a NULL component yields NULL except
        # in DuckDB's documented deviation (Listing 17).
        if isinstance(left, tuple) or isinstance(right, tuple):
            return self._row_value_comparison(operator, left, right)
        result = compare_values(left, right)
        if result is None:
            return None
        return _COMPARISON_VERDICTS[operator](result)

    def _row_value_comparison(self, operator: str, left: Any, right: Any) -> Any:
        left_items = list(left) if isinstance(left, tuple) else [left]
        right_items = list(right) if isinstance(right, tuple) else [right]
        has_null = any(item is None for item in left_items + right_items)
        if has_null:
            if self.dialect.row_value_null_comparison == "true":
                self._touch("semantic.row_value_null_true")
                return True
            return None
        for left_item, right_item in zip(left_items, right_items):
            item_result = compare_values(left_item, right_item)
            if item_result is None:
                return None
            if item_result != 0:
                return self._comparison(operator, item_result, 0)
        return self._comparison(operator, 0, 0)

    def _is_equal(self, left: Any, right: Any) -> bool:
        if left is None and right is None:
            return True
        if left is None or right is None:
            return False
        return compare_values(left, right) == 0

    def _concat_or_or(self, left: Any, right: Any) -> Any:
        if not self.dialect.pipes_as_concat:
            # MySQL default: || is logical OR.
            self._touch("semantic.pipes_as_or")
            return self._logical("OR", left, right)
        if left is None or right is None:
            return None
        from repro.engine.values import render_value

        def text_of(value: Any) -> str:
            if isinstance(value, str):
                return value
            return render_value(value)

        return text_of(left) + text_of(right)

    def _arithmetic(self, operator: str, left: Any, right: Any) -> Any:
        if left is None or right is None:
            return None
        # string + integer: allowed only on weakly-typed dialects
        if operator == "+" and (isinstance(left, str) or isinstance(right, str)):
            if not self.dialect.allows_string_plus_integer:
                raise UnsupportedOperatorError("operator + does not accept text operands in this dialect")
            self._touch("semantic.string_plus_integer")
        left_number = self._numeric(left)
        right_number = self._numeric(right)
        if left_number is None or right_number is None:
            return None
        if operator == "+":
            return left_number + right_number
        if operator == "-":
            return left_number - right_number
        if operator == "*":
            return left_number * right_number
        if operator == "%":
            if right_number == 0:
                return None
            return left_number % right_number
        if operator == "DIV":
            if not self.dialect.supports_div_operator:
                raise UnsupportedOperatorError("DIV operator is not supported in this dialect")
            if right_number == 0:
                return None
            self._touch("semantic.div_operator")
            result = abs(left_number) // abs(right_number)
            if (left_number < 0) != (right_number < 0):
                result = -result
            return int(result)
        # division
        if right_number == 0:
            if self.dialect.name in ("postgres", "duckdb"):
                raise DatabaseError("division by zero")
            return None
        both_integers = isinstance(left_number, int) and isinstance(right_number, int)
        if both_integers and self.dialect.division is DivisionSemantics.INTEGER:
            self._touch("semantic.integer_division")
            quotient = abs(left_number) // abs(right_number)
            if (left_number < 0) != (right_number < 0):
                quotient = -quotient
            return int(quotient)
        self._touch("semantic.decimal_division")
        return left_number / right_number

    def _eval_functioncall(self, node: ast.FunctionCall, context: RowContext) -> Any:
        name = node.name
        feature = _FUNCTION_FEATURES.get(name)
        if feature is None:
            feature = _FUNCTION_FEATURES[name] = "function." + name
        self._touch(feature)
        args = [self.evaluate(arg, context) for arg in node.args]
        return self.functions.call_scalar(name, args)

    def _eval_cast(self, node: ast.Cast, context: RowContext) -> Any:
        if node.via_double_colon and not self.dialect.supports_double_colon_cast:
            raise UnsupportedOperatorError("the :: cast operator is not supported in this dialect")
        self._touch("operator.cast")
        operand = self.evaluate(node.operand, context)
        base = node.type_name.split("(")[0].strip().upper()
        if not self.dialect.supports_type(base) and base not in ("INTEGER", "TEXT", "REAL"):
            raise UnsupportedTypeError(f"unknown data type: {node.type_name}")
        try:
            return cast_value(
                operand,
                node.type_name,
                strict=self.dialect.strict_types,
                boolean_accepts_integers=self.dialect.boolean_accepts_integers,
            )
        except UnsupportedTypeError:
            raise
        except ConversionError:
            if self.dialect.strict_types:
                raise
            return operand

    def _eval_caseexpression(self, node: ast.CaseExpression, context: RowContext) -> Any:
        self._touch("expression.case")
        if node.operand is not None:
            subject = self.evaluate(node.operand, context)
            for condition, result in node.whens:
                candidate = self.evaluate(condition, context)
                if compare_values(subject, candidate) == 0:
                    return self.evaluate(result, context)
        else:
            for condition, result in node.whens:
                if self.evaluate_predicate(condition, context):
                    return self.evaluate(result, context)
        if node.default is not None:
            return self.evaluate(node.default, context)
        return None

    def _eval_inexpression(self, node: ast.InExpression, context: RowContext) -> Any:
        self._touch("expression.in")
        operand = self.evaluate(node.operand, context)
        if node.subquery is not None:
            rows = self._run_subquery(node.subquery, context)
            candidates = [row[0] if row else None for row in rows]
        else:
            candidates = [self.evaluate(item, context) for item in node.items]
        if operand is None:
            return None
        saw_null = False
        for candidate in candidates:
            if candidate is None:
                saw_null = True
                continue
            if compare_values(operand, candidate) == 0:
                return not node.negated
        if saw_null:
            return None
        return node.negated

    def _eval_betweenexpression(self, node: ast.BetweenExpression, context: RowContext) -> Any:
        self._touch("expression.between")
        operand = self.evaluate(node.operand, context)
        low = self.evaluate(node.low, context)
        high = self.evaluate(node.high, context)
        if operand is None or low is None or high is None:
            return None
        inside = compare_values(operand, low) >= 0 and compare_values(operand, high) <= 0
        return inside != node.negated

    def _eval_likeexpression(self, node: ast.LikeExpression, context: RowContext) -> Any:
        self._touch("expression.like")
        operand = self.evaluate(node.operand, context)
        pattern = self.evaluate(node.pattern, context)
        if operand is None or pattern is None:
            return None
        case_insensitive = node.case_insensitive or self.dialect.name in ("mysql", "sqlite")
        matched = _like_regex(str(pattern), case_insensitive).match(str(operand)) is not None
        return matched != node.negated

    def _eval_isnullexpression(self, node: ast.IsNullExpression, context: RowContext) -> Any:
        operand = self.evaluate(node.operand, context)
        result = operand is None
        return result != node.negated

    def _eval_existsexpression(self, node: ast.ExistsExpression, context: RowContext) -> Any:
        self._touch("expression.exists")
        rows = self._run_subquery(node.subquery, context)
        return bool(rows) != node.negated

    def _eval_scalarsubquery(self, node: ast.ScalarSubquery, context: RowContext) -> Any:
        self._touch("expression.scalar_subquery")
        rows = self._run_subquery(node.subquery, context)
        if not rows:
            return None
        return rows[0][0] if rows[0] else None

    def _eval_rowvalue(self, node: ast.RowValue, context: RowContext) -> Any:
        return tuple(self.evaluate(item, context) for item in node.items)

    def _eval_listliteral(self, node: ast.ListLiteral, context: RowContext) -> Any:
        self._touch("type.list")
        return [self.evaluate(item, context) for item in node.items]

    def _eval_structliteral(self, node: ast.StructLiteral, context: RowContext) -> Any:
        self._touch("type.struct")
        return {key: self.evaluate(value, context) for key, value in node.items}

    # -- subqueries ----------------------------------------------------------------

    def _run_subquery(self, statement: ast.SelectStatement, context: RowContext) -> list[list[Any]]:
        if self.subquery_executor is None:
            raise DatabaseError("subqueries are not available in this context")
        return self.subquery_executor(statement, context)
