"""In-memory storage layer: columns, tables, indexes, views, schemas, catalog.

The storage model is deliberately simple — row lists guarded by a catalog —
because the reproduction's experiments stress dialect semantics and test-suite
mechanics, not storage performance.  Indexes are maintained (and used for
point-lookups) so that ``CREATE INDEX``-heavy SLT files exercise a real code
path, which matters for the Table 8 coverage experiment.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import CatalogError, ConstraintViolationError
from repro.engine.values import SQLType, coerce_to_declared, declared_runtime_type, is_known_type


@dataclass
class Column:
    """Schema information for one table column."""

    name: str
    type_name: str | None = None
    not_null: bool = False
    primary_key: bool = False
    unique: bool = False
    default: Any = None
    has_default: bool = False


@dataclass
class Index:
    """A secondary index over one or more columns of a table."""

    name: str
    table: str
    columns: list[str]
    unique: bool = False
    entries: dict[tuple, list[int]] = field(default_factory=dict)

    def rebuild(self, table: "Table") -> None:
        """Recompute the key -> row-position mapping from the table's rows."""
        self.entries.clear()
        positions = [table.column_position(column) for column in self.columns]
        self._positions = positions
        self._schema_version = table.schema_version
        for row_index, row in enumerate(table.rows):
            key = tuple(row[position] for position in positions)
            self.entries.setdefault(key, []).append(row_index)

    def note_insert(self, table: "Table", row_index: int, row: list[Any]) -> None:
        """Append one row's key to :attr:`entries` without a full rebuild.

        INSERT is the index-maintenance hot path (CREATE-INDEX-heavy SLT files
        insert hundreds of rows per index); appending one entry replaces the
        seed's O(table) :meth:`rebuild` per insert.  The cached column
        positions are invalidated by schema changes (``table.schema_version``),
        in which case this falls back to :meth:`rebuild` — which re-resolves
        the indexed columns and therefore raises the same ``CatalogError`` the
        rebuild-per-insert path raised when an indexed column was renamed or
        dropped.
        """
        positions = getattr(self, "_positions", None)
        if positions is None or getattr(self, "_schema_version", None) != table.schema_version:
            self.rebuild(table)
            return
        key = tuple(row[position] for position in positions)
        self.entries.setdefault(key, []).append(row_index)

    def check_unique(self, table: "Table") -> None:
        if not self.unique:
            return
        for key, row_indexes in self.entries.items():
            if len(row_indexes) > 1 and all(part is not None for part in key):
                raise ConstraintViolationError(f"UNIQUE constraint failed on index {self.name} for key {key}")


class Table:
    """A base table: column schema plus a list of row tuples (as lists).

    Rows are the primary representation; :meth:`column_data` exposes the lazy
    columnar view (per-column value lists) the vectorized executor and the
    constraint checks consume.  Two counters invalidate the derived caches:
    ``version`` changes on any content mutation (insert, delete, update) and
    ``schema_version`` additionally on column-list changes (ALTER TABLE), which
    is what tells indexes their cached column positions are stale.
    """

    def __init__(self, name: str, columns: list[Column]):
        self.name = name
        self.columns = columns
        self.rows: list[list[Any]] = []
        self.indexes: dict[str, Index] = {}
        self.version = 0
        self.schema_version = 0
        #: (version, per-column value lists) — the lazy columnar view
        self._column_data: tuple[int, list[list[Any]]] | None = None
        #: (version, (pk positions, pk key set, {position: unique value set}))
        self._constraint_sets: tuple[int, tuple] | None = None
        #: (schema_version, per-column runtime SQLType or None) — lets
        #: insert_row skip coercion when a value's exact type already matches
        self._coerce_targets: tuple[int, list[SQLType | None]] | None = None

    def note_rows_mutated(self) -> None:
        """Invalidate content-derived caches (UPDATE edits rows in place)."""
        self.version += 1

    def note_schema_changed(self) -> None:
        """Invalidate schema-derived caches too (ALTER TABLE)."""
        self.version += 1
        self.schema_version += 1

    def column_data(self) -> list[list[Any]]:
        """Per-column value lists for the current rows (cached per version)."""
        cached = self._column_data
        if cached is not None and cached[0] == self.version:
            return cached[1]
        rows = self.rows
        data = [[row[position] for row in rows] for position in range(len(self.columns))]
        self._column_data = (self.version, data)
        return data

    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def column_position(self, name: str) -> int:
        lowered = name.lower()
        for position, column in enumerate(self.columns):
            if column.name.lower() == lowered:
                return position
        raise CatalogError(f"no such column: {self.name}.{name}")

    def has_column(self, name: str) -> bool:
        lowered = name.lower()
        return any(column.name.lower() == lowered for column in self.columns)

    def insert_row(self, values: list[Any], strict_types: bool, boolean_accepts_integers: bool = True) -> None:
        """Insert one row after applying column coercion and constraints."""
        if len(values) != len(self.columns):
            raise ConstraintViolationError(
                f"table {self.name} has {len(self.columns)} columns but {len(values)} values were supplied"
            )
        targets = self._coerce_targets
        if targets is None or targets[0] != self.schema_version:
            resolved = [
                declared_runtime_type(column.type_name)
                if column.type_name and is_known_type(column.type_name)
                else None
                for column in self.columns
            ]
            targets = (self.schema_version, resolved)
            self._coerce_targets = targets
        coerced: list[Any] = []
        for column, target, value in zip(self.columns, targets[1], values):
            # exact-type match: coercion is the identity in both strict and
            # dynamic modes (bool, an int subclass, misses the exact check and
            # keeps its own conversion path)
            value_type = type(value)
            if (
                (value_type is int and target is SQLType.INTEGER)
                or (value_type is str and target is SQLType.TEXT)
                or (value_type is float and target is SQLType.FLOAT)
            ):
                coerced.append(value)
                continue
            converted = coerce_to_declared(value, column.type_name, strict_types, boolean_accepts_integers)
            if converted is None and (column.not_null or column.primary_key):
                raise ConstraintViolationError(f"NOT NULL constraint failed: {self.name}.{column.name}")
            coerced.append(converted)
        self._check_primary_key(coerced)
        self.rows.append(coerced)
        self.version += 1
        self._note_insert(coerced, len(self.rows) - 1)

    def _constraint_sets_current(self) -> tuple:
        """Hashed key/value sets for PK and UNIQUE checks, built per version.

        Values that cannot stand in for the seed's linear ``==`` scan are left
        out of the sets: unhashable values (lists/dicts) force a scan via the
        ``TypeError`` fallback in :meth:`_check_primary_key`, and NaNs — which
        compare unequal to themselves, so the seed scan never matches them but
        a set *would* via the identity shortcut — are excluded on both sides
        (``value == value`` is False exactly for NaN-bearing values).
        """
        cached = self._constraint_sets
        if cached is not None and cached[0] == self.version:
            return cached[1]
        key_positions = [index for index, column in enumerate(self.columns) if column.primary_key]
        unique_positions = [index for index, column in enumerate(self.columns) if column.unique]
        data = self.column_data() if (key_positions or unique_positions) else []
        pk_keys: set[tuple] = set()
        if key_positions:
            for key in zip(*(data[position] for position in key_positions)):
                try:
                    if key == key:
                        pk_keys.add(key)
                except TypeError:  # pragma: no cover - defensive
                    pass
        unique_sets: dict[int, set] = {}
        for position in unique_positions:
            values: set = set()
            for value in data[position]:
                if value is None or value != value:
                    continue
                try:
                    values.add(value)
                except TypeError:
                    pass
            unique_sets[position] = values
        sets = (key_positions, pk_keys, unique_sets)
        self._constraint_sets = (self.version, sets)
        return sets

    def _check_primary_key(self, new_row: list[Any]) -> None:
        key_positions, pk_keys, unique_sets = self._constraint_sets_current()
        if key_positions:
            new_key = tuple(new_row[position] for position in key_positions)
            if all(part is not None for part in new_key):
                if new_key == new_key:
                    try:
                        present = new_key in pk_keys
                    except TypeError:
                        present = any(
                            tuple(row[position] for position in key_positions) == new_key for row in self.rows
                        )
                else:
                    # NaN component: tuple equality short-circuits on element
                    # identity, so the seed scan *can* match when the very same
                    # NaN object is stored (INSERT .. SELECT from the same
                    # table) — replicate the scan rather than guessing
                    present = any(
                        tuple(row[position] for position in key_positions) == new_key for row in self.rows
                    )
                if present:
                    raise ConstraintViolationError(f"PRIMARY KEY constraint failed: {self.name}")
        for position, value_set in unique_sets.items():
            value = new_row[position]
            if value is None:
                continue
            if value == value:
                try:
                    present = value in value_set
                except TypeError:
                    present = any(row[position] == value for row in self.rows)
            else:
                present = False
            if present:
                raise ConstraintViolationError(f"UNIQUE constraint failed: {self.name}.{self.columns[position].name}")

    def _note_insert(self, row: list[Any], row_index: int) -> None:
        """Extend the derived caches with one appended row (no rebuilds)."""
        cached = self._constraint_sets
        if cached is not None and cached[0] == self.version - 1:
            key_positions, pk_keys, unique_sets = cached[1]
            if key_positions:
                key = tuple(row[position] for position in key_positions)
                if key == key:
                    try:
                        pk_keys.add(key)
                    except TypeError:
                        pass
            for position, value_set in unique_sets.items():
                value = row[position]
                if value is not None and value == value:
                    try:
                        value_set.add(value)
                    except TypeError:
                        pass
            self._constraint_sets = (self.version, cached[1])
        data = self._column_data
        if data is not None and data[0] == self.version - 1:
            for column_values, value in zip(data[1], row):
                column_values.append(value)
            self._column_data = (self.version, data[1])
        for index in self.indexes.values():
            index.note_insert(self, row_index, row)

    def delete_rows(self, row_indexes: Iterable[int]) -> int:
        doomed = set(row_indexes)
        before = len(self.rows)
        self.rows = [row for index, row in enumerate(self.rows) if index not in doomed]
        self.version += 1
        # deletions compact row positions, so every index entry shifts: one
        # rebuild pass per index is the same complexity as remapping
        self._refresh_indexes()
        return before - len(self.rows)

    def _refresh_indexes(self) -> None:
        for index in self.indexes.values():
            index.rebuild(self)

    def copy(self) -> "Table":
        clone = Table(self.name, copy.deepcopy(self.columns))
        clone.rows = [list(row) for row in self.rows]
        clone.indexes = copy.deepcopy(self.indexes)
        # keep the copied indexes' cached schema_version consistent
        clone.version = self.version
        clone.schema_version = self.schema_version
        return clone


@dataclass
class View:
    """A named stored query."""

    name: str
    query: Any  # ast.SelectStatement; Any avoids an import cycle


class Database:
    """The catalog: tables, views, indexes, and schemas of one database."""

    def __init__(self, name: str = "main"):
        self.name = name
        self.tables: dict[str, Table] = {}
        self.views: dict[str, View] = {}
        self.schemas: dict[str, dict] = {"main": {}}

    # -- tables ---------------------------------------------------------------

    def create_table(self, table: Table, if_not_exists: bool = False) -> None:
        key = table.name.lower()
        if key in self.tables or key in self.views:
            if if_not_exists:
                return
            raise CatalogError(f"table {table.name} already exists")
        self.tables[key] = table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self.tables:
            if if_exists:
                return
            raise CatalogError(f"no such table: {name}")
        del self.tables[key]

    def get_table(self, name: str) -> Table:
        try:
            return self.tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no such table: {name}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self.tables

    def rename_table(self, old: str, new: str) -> None:
        table = self.get_table(old)
        if new.lower() in self.tables:
            raise CatalogError(f"table {new} already exists")
        del self.tables[old.lower()]
        table.name = new
        self.tables[new.lower()] = table

    # -- views ----------------------------------------------------------------

    def create_view(self, view: View, if_not_exists: bool = False, or_replace: bool = False) -> None:
        key = view.name.lower()
        if key in self.views and not or_replace:
            if if_not_exists:
                return
            raise CatalogError(f"view {view.name} already exists")
        if key in self.tables:
            raise CatalogError(f"table {view.name} already exists")
        self.views[key] = view

    def drop_view(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self.views:
            if if_exists:
                return
            raise CatalogError(f"no such view: {name}")
        del self.views[key]

    def get_view(self, name: str) -> View | None:
        return self.views.get(name.lower())

    # -- indexes ---------------------------------------------------------------

    def create_index(self, index: Index, if_not_exists: bool = False) -> None:
        table = self.get_table(index.table)
        for column in index.columns:
            table.column_position(column)  # raises CatalogError if missing
        existing = self.find_index(index.name)
        if existing is not None:
            if if_not_exists:
                return
            raise CatalogError(f"index {index.name} already exists")
        index.rebuild(table)
        index.check_unique(table)
        table.indexes[index.name.lower()] = index

    def drop_index(self, name: str, if_exists: bool = False) -> None:
        for table in self.tables.values():
            if name.lower() in table.indexes:
                del table.indexes[name.lower()]
                return
        if not if_exists:
            raise CatalogError(f"no such index: {name}")

    def find_index(self, name: str) -> Index | None:
        for table in self.tables.values():
            index = table.indexes.get(name.lower())
            if index is not None:
                return index
        return None

    # -- schemas ----------------------------------------------------------------

    def create_schema(self, name: str, if_not_exists: bool = False) -> None:
        key = name.lower()
        if key in self.schemas:
            if if_not_exists:
                return
            raise CatalogError(f"schema {name} already exists")
        self.schemas[key] = {}

    def drop_schema(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self.schemas:
            if if_exists:
                return
            raise CatalogError(f"no such schema: {name}")
        if key == "main":
            raise CatalogError("cannot drop schema main")
        del self.schemas[key]

    def rename_schema(self, old: str, new: str) -> None:
        key = old.lower()
        if key not in self.schemas:
            raise CatalogError(f"no such schema: {old}")
        self.schemas[new.lower()] = self.schemas.pop(key)

    # -- snapshots (used by the transaction manager) ------------------------------

    def snapshot(self) -> dict:
        """Deep-copy the whole catalog for transaction rollback."""
        return {
            "tables": {name: table.copy() for name, table in self.tables.items()},
            "views": dict(self.views),
            "schemas": copy.deepcopy(self.schemas),
        }

    def restore(self, snapshot: dict) -> None:
        self.tables = snapshot["tables"]
        self.views = snapshot["views"]
        self.schemas = snapshot["schemas"]
