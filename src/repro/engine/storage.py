"""In-memory storage layer: columns, tables, indexes, views, schemas, catalog.

The storage model is deliberately simple — row lists guarded by a catalog —
because the reproduction's experiments stress dialect semantics and test-suite
mechanics, not storage performance.  Indexes are maintained (and used for
point-lookups) so that ``CREATE INDEX``-heavy SLT files exercise a real code
path, which matters for the Table 8 coverage experiment.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import CatalogError, ConstraintViolationError
from repro.engine.values import coerce_to_declared


@dataclass
class Column:
    """Schema information for one table column."""

    name: str
    type_name: str | None = None
    not_null: bool = False
    primary_key: bool = False
    unique: bool = False
    default: Any = None
    has_default: bool = False


@dataclass
class Index:
    """A secondary index over one or more columns of a table."""

    name: str
    table: str
    columns: list[str]
    unique: bool = False
    entries: dict[tuple, list[int]] = field(default_factory=dict)

    def rebuild(self, table: "Table") -> None:
        """Recompute the key -> row-position mapping from the table's rows."""
        self.entries.clear()
        positions = [table.column_position(column) for column in self.columns]
        for row_index, row in enumerate(table.rows):
            key = tuple(row[position] for position in positions)
            self.entries.setdefault(key, []).append(row_index)

    def check_unique(self, table: "Table") -> None:
        if not self.unique:
            return
        for key, row_indexes in self.entries.items():
            if len(row_indexes) > 1 and all(part is not None for part in key):
                raise ConstraintViolationError(f"UNIQUE constraint failed on index {self.name} for key {key}")


class Table:
    """A base table: column schema plus a list of row tuples (as lists)."""

    def __init__(self, name: str, columns: list[Column]):
        self.name = name
        self.columns = columns
        self.rows: list[list[Any]] = []
        self.indexes: dict[str, Index] = {}

    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def column_position(self, name: str) -> int:
        lowered = name.lower()
        for position, column in enumerate(self.columns):
            if column.name.lower() == lowered:
                return position
        raise CatalogError(f"no such column: {self.name}.{name}")

    def has_column(self, name: str) -> bool:
        lowered = name.lower()
        return any(column.name.lower() == lowered for column in self.columns)

    def insert_row(self, values: list[Any], strict_types: bool, boolean_accepts_integers: bool = True) -> None:
        """Insert one row after applying column coercion and constraints."""
        if len(values) != len(self.columns):
            raise ConstraintViolationError(
                f"table {self.name} has {len(self.columns)} columns but {len(values)} values were supplied"
            )
        coerced: list[Any] = []
        for column, value in zip(self.columns, values):
            converted = coerce_to_declared(value, column.type_name, strict_types, boolean_accepts_integers)
            if converted is None and (column.not_null or column.primary_key):
                raise ConstraintViolationError(f"NOT NULL constraint failed: {self.name}.{column.name}")
            coerced.append(converted)
        self._check_primary_key(coerced)
        self.rows.append(coerced)
        self._refresh_indexes()

    def _check_primary_key(self, new_row: list[Any]) -> None:
        key_positions = [index for index, column in enumerate(self.columns) if column.primary_key]
        unique_positions = [index for index, column in enumerate(self.columns) if column.unique]
        if key_positions:
            new_key = tuple(new_row[position] for position in key_positions)
            if all(part is not None for part in new_key):
                for row in self.rows:
                    if tuple(row[position] for position in key_positions) == new_key:
                        raise ConstraintViolationError(f"PRIMARY KEY constraint failed: {self.name}")
        for position in unique_positions:
            value = new_row[position]
            if value is None:
                continue
            for row in self.rows:
                if row[position] == value:
                    raise ConstraintViolationError(f"UNIQUE constraint failed: {self.name}.{self.columns[position].name}")

    def delete_rows(self, row_indexes: Iterable[int]) -> int:
        doomed = set(row_indexes)
        before = len(self.rows)
        self.rows = [row for index, row in enumerate(self.rows) if index not in doomed]
        self._refresh_indexes()
        return before - len(self.rows)

    def _refresh_indexes(self) -> None:
        for index in self.indexes.values():
            index.rebuild(self)

    def copy(self) -> "Table":
        clone = Table(self.name, copy.deepcopy(self.columns))
        clone.rows = [list(row) for row in self.rows]
        clone.indexes = copy.deepcopy(self.indexes)
        return clone


@dataclass
class View:
    """A named stored query."""

    name: str
    query: Any  # ast.SelectStatement; Any avoids an import cycle


class Database:
    """The catalog: tables, views, indexes, and schemas of one database."""

    def __init__(self, name: str = "main"):
        self.name = name
        self.tables: dict[str, Table] = {}
        self.views: dict[str, View] = {}
        self.schemas: dict[str, dict] = {"main": {}}

    # -- tables ---------------------------------------------------------------

    def create_table(self, table: Table, if_not_exists: bool = False) -> None:
        key = table.name.lower()
        if key in self.tables or key in self.views:
            if if_not_exists:
                return
            raise CatalogError(f"table {table.name} already exists")
        self.tables[key] = table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self.tables:
            if if_exists:
                return
            raise CatalogError(f"no such table: {name}")
        del self.tables[key]

    def get_table(self, name: str) -> Table:
        try:
            return self.tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no such table: {name}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self.tables

    def rename_table(self, old: str, new: str) -> None:
        table = self.get_table(old)
        if new.lower() in self.tables:
            raise CatalogError(f"table {new} already exists")
        del self.tables[old.lower()]
        table.name = new
        self.tables[new.lower()] = table

    # -- views ----------------------------------------------------------------

    def create_view(self, view: View, if_not_exists: bool = False, or_replace: bool = False) -> None:
        key = view.name.lower()
        if key in self.views and not or_replace:
            if if_not_exists:
                return
            raise CatalogError(f"view {view.name} already exists")
        if key in self.tables:
            raise CatalogError(f"table {view.name} already exists")
        self.views[key] = view

    def drop_view(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self.views:
            if if_exists:
                return
            raise CatalogError(f"no such view: {name}")
        del self.views[key]

    def get_view(self, name: str) -> View | None:
        return self.views.get(name.lower())

    # -- indexes ---------------------------------------------------------------

    def create_index(self, index: Index, if_not_exists: bool = False) -> None:
        table = self.get_table(index.table)
        for column in index.columns:
            table.column_position(column)  # raises CatalogError if missing
        existing = self.find_index(index.name)
        if existing is not None:
            if if_not_exists:
                return
            raise CatalogError(f"index {index.name} already exists")
        index.rebuild(table)
        index.check_unique(table)
        table.indexes[index.name.lower()] = index

    def drop_index(self, name: str, if_exists: bool = False) -> None:
        for table in self.tables.values():
            if name.lower() in table.indexes:
                del table.indexes[name.lower()]
                return
        if not if_exists:
            raise CatalogError(f"no such index: {name}")

    def find_index(self, name: str) -> Index | None:
        for table in self.tables.values():
            index = table.indexes.get(name.lower())
            if index is not None:
                return index
        return None

    # -- schemas ----------------------------------------------------------------

    def create_schema(self, name: str, if_not_exists: bool = False) -> None:
        key = name.lower()
        if key in self.schemas:
            if if_not_exists:
                return
            raise CatalogError(f"schema {name} already exists")
        self.schemas[key] = {}

    def drop_schema(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self.schemas:
            if if_exists:
                return
            raise CatalogError(f"no such schema: {name}")
        if key == "main":
            raise CatalogError("cannot drop schema main")
        del self.schemas[key]

    def rename_schema(self, old: str, new: str) -> None:
        key = old.lower()
        if key not in self.schemas:
            raise CatalogError(f"no such schema: {old}")
        self.schemas[new.lower()] = self.schemas.pop(key)

    # -- snapshots (used by the transaction manager) ------------------------------

    def snapshot(self) -> dict:
        """Deep-copy the whole catalog for transaction rollback."""
        return {
            "tables": {name: table.copy() for name, table in self.tables.items()},
            "views": dict(self.views),
            "schemas": copy.deepcopy(self.schemas),
        }

    def restore(self, snapshot: dict) -> None:
        self.tables = snapshot["tables"]
        self.views = snapshot["views"]
        self.schemas = snapshot["schemas"]
