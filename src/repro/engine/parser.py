"""Recursive-descent SQL parser producing MiniDB AST nodes.

The parser accepts a superset of the four studied dialects' syntax; dialect
*support* decisions (is ``::`` allowed? does ``PRAGMA`` exist?) are made later
by the session using its :class:`~repro.dialects.base.DialectProfile`, because
the failure classifier needs "parsed fine but unsupported on this host" to be
distinguishable from "syntax error".
"""

from __future__ import annotations

from typing import Any

from repro.engine import ast_nodes as ast
from repro.errors import SQLSyntaxError
from repro.sqlparser.statements import statement_type
from repro.sqlparser.tokenizer import Token, TokenType, tokenize

_COMPOUND_OPERATORS = {"UNION", "INTERSECT", "EXCEPT"}

#: Keywords that may start a new clause and therefore terminate expressions.
_CLAUSE_KEYWORDS = {
    "FROM",
    "WHERE",
    "GROUP",
    "HAVING",
    "ORDER",
    "LIMIT",
    "OFFSET",
    "UNION",
    "INTERSECT",
    "EXCEPT",
    "ON",
    "USING",
    "JOIN",
    "INNER",
    "LEFT",
    "RIGHT",
    "FULL",
    "CROSS",
    "WHEN",
    "THEN",
    "ELSE",
    "END",
    "AS",
    "SET",
    "VALUES",
    "RETURNING",
    "FETCH",
    "WINDOW",
    "ASC",
    "DESC",
    "NULLS",
}


class Parser:
    """Parses a single SQL statement into an AST node."""

    def __init__(self, sql: str):
        self.sql = sql
        try:
            self.tokens: list[Token] = tokenize(sql)
        except SQLSyntaxError:
            raise
        self.position = 0

    # -- token-stream helpers -------------------------------------------------

    def _peek(self, offset: int = 0) -> Token | None:
        index = self.position + offset
        if index < len(self.tokens):
            return self.tokens[index]
        return None

    def _at_end(self) -> bool:
        token = self._peek()
        return token is None or (token.type is TokenType.PUNCTUATION and token.value == ";")

    def _advance(self) -> Token:
        token = self._peek()
        if token is None:
            raise SQLSyntaxError(f"unexpected end of input in: {self.sql!r}")
        self.position += 1
        return token

    def _check_keyword(self, *names: str) -> bool:
        token = self._peek()
        return token is not None and token.is_keyword(*names)

    def _match_keyword(self, *names: str) -> bool:
        if self._check_keyword(*names):
            self.position += 1
            return True
        return False

    def _expect_keyword(self, *names: str) -> Token:
        token = self._peek()
        if token is None or not token.is_keyword(*names):
            found = token.value if token else "end of input"
            raise SQLSyntaxError(f"expected {' or '.join(names)}, found {found!r}")
        return self._advance()

    def _check_punct(self, value: str) -> bool:
        token = self._peek()
        return token is not None and token.type is TokenType.PUNCTUATION and token.value == value

    def _match_punct(self, value: str) -> bool:
        if self._check_punct(value):
            self.position += 1
            return True
        return False

    def _expect_punct(self, value: str) -> Token:
        token = self._peek()
        if token is None or token.type is not TokenType.PUNCTUATION or token.value != value:
            found = token.value if token else "end of input"
            raise SQLSyntaxError(f"expected {value!r}, found {found!r}")
        return self._advance()

    def _check_operator(self, *values: str) -> bool:
        token = self._peek()
        return token is not None and token.type is TokenType.OPERATOR and token.value in values

    def _match_operator(self, *values: str) -> Token | None:
        if self._check_operator(*values):
            return self._advance()
        return None

    def _identifier(self, what: str = "identifier") -> str:
        token = self._peek()
        if token is None:
            raise SQLSyntaxError(f"expected {what}, found end of input")
        if token.type in (TokenType.IDENTIFIER, TokenType.QUOTED_IDENTIFIER):
            self._advance()
            return token.normalized
        # Non-reserved keywords can serve as identifiers in practice.
        if token.type is TokenType.KEYWORD:
            self._advance()
            return token.value.lower()
        raise SQLSyntaxError(f"expected {what}, found {token.value!r}")

    # -- entry point ----------------------------------------------------------

    def parse_statement(self) -> Any:
        token = self._peek()
        if token is None:
            raise SQLSyntaxError("empty statement")
        if token.is_keyword("SELECT") or token.is_keyword("VALUES") or token.is_keyword("WITH") or self._check_punct("("):
            return self.parse_select()
        if token.is_keyword("INSERT", "REPLACE"):
            return self.parse_insert()
        if token.is_keyword("UPDATE"):
            return self.parse_update()
        if token.is_keyword("DELETE"):
            return self.parse_delete()
        if token.is_keyword("CREATE"):
            return self.parse_create()
        if token.is_keyword("DROP"):
            return self.parse_drop()
        if token.is_keyword("ALTER"):
            return self.parse_alter()
        if token.is_keyword("BEGIN", "COMMIT", "ROLLBACK", "START", "SAVEPOINT", "RELEASE", "END", "ABORT"):
            return self.parse_transaction()
        if token.is_keyword("SET"):
            return self.parse_set(is_pragma=False)
        if token.is_keyword("PRAGMA"):
            return self.parse_set(is_pragma=True)
        if token.is_keyword("SHOW"):
            self._advance()
            name_parts = []
            while not self._at_end():
                name_parts.append(self._advance().value)
            return ast.ShowStatement(name=" ".join(name_parts).lower())
        if token.is_keyword("EXPLAIN"):
            return self.parse_explain()
        if token.is_keyword("USE"):
            self._advance()
            return ast.UseStatement(database=self._identifier("database name"))
        if token.is_keyword("COPY"):
            return self.parse_copy()
        stype = statement_type(self.sql)
        return ast.UnparsedStatement(text=self.sql, statement_type=stype)

    # -- SELECT ---------------------------------------------------------------

    def parse_select(self) -> ast.SelectStatement:
        ctes: list[ast.CommonTableExpression] = []
        recursive = False
        if self._match_keyword("WITH"):
            recursive = self._match_keyword("RECURSIVE")
            while True:
                name = self._identifier("CTE name")
                columns: list[str] = []
                if self._match_punct("("):
                    while not self._check_punct(")"):
                        columns.append(self._identifier("CTE column"))
                        if not self._match_punct(","):
                            break
                    self._expect_punct(")")
                self._expect_keyword("AS")
                self._expect_punct("(")
                query = self.parse_select()
                self._expect_punct(")")
                ctes.append(ast.CommonTableExpression(name=name, columns=columns, query=query))
                if not self._match_punct(","):
                    break

        statement = self._parse_compound_select()
        statement.ctes = ctes
        statement.recursive = recursive
        return statement

    def _parse_compound_select(self) -> ast.SelectStatement:
        core = self._parse_select_core()
        compound: list[tuple[str, ast.SelectCore]] = []
        while True:
            token = self._peek()
            if token is not None and token.type is TokenType.KEYWORD and token.normalized in _COMPOUND_OPERATORS:
                operator = self._advance().normalized
                if self._match_keyword("ALL"):
                    operator += " ALL"
                elif self._match_keyword("DISTINCT"):
                    pass
                wrapped = self._match_punct("(")
                next_core = self._parse_select_core()
                # nested compound inside parentheses gets flattened
                while wrapped and self._peek() is not None and self._peek().type is TokenType.KEYWORD and self._peek().normalized in _COMPOUND_OPERATORS:
                    inner_op = self._advance().normalized
                    if self._match_keyword("ALL"):
                        inner_op += " ALL"
                    compound.append((operator, next_core))
                    operator = inner_op
                    next_core = self._parse_select_core()
                if wrapped:
                    self._expect_punct(")")
                compound.append((operator, next_core))
            else:
                break

        order_by: list[ast.OrderItem] = []
        limit: ast.Expression | None = None
        offset: ast.Expression | None = None
        if self._match_keyword("ORDER"):
            self._expect_keyword("BY")
            while True:
                expression = self.parse_expression()
                descending = False
                if self._match_keyword("DESC"):
                    descending = True
                elif self._match_keyword("ASC"):
                    descending = False
                nulls = None
                if self._match_keyword("NULLS"):
                    nulls = "first" if self._match_keyword("FIRST") else "last"
                    if nulls == "last":
                        self._match_keyword("LAST")
                order_by.append(ast.OrderItem(expression=expression, descending=descending, nulls=nulls))
                if not self._match_punct(","):
                    break
        if self._match_keyword("LIMIT"):
            limit = self.parse_expression()
            if self._match_punct(","):
                # MySQL LIMIT offset, count
                offset = limit
                limit = self.parse_expression()
            elif self._match_keyword("OFFSET"):
                offset = self.parse_expression()
        elif self._match_keyword("OFFSET"):
            offset = self.parse_expression()
            if self._match_keyword("LIMIT"):
                limit = self.parse_expression()
        if self._match_keyword("FETCH"):
            # FETCH FIRST n ROWS ONLY
            self._match_keyword("FIRST")
            self._match_keyword("NEXT")
            limit = self.parse_expression()
            self._match_keyword("ROWS")
            self._match_keyword("ROW")
            self._match_keyword("ONLY")

        return ast.SelectStatement(core=core, compound=compound, order_by=order_by, limit=limit, offset=offset)

    def _parse_select_core(self) -> ast.SelectCore:
        if self._check_punct("("):
            # parenthesised select core: unwrap, the compound handling copes
            self._advance()
            inner = self._parse_compound_select()
            self._expect_punct(")")
            if inner.compound or inner.order_by or inner.limit is not None:
                # preserve the full statement by wrapping it as a derived table
                core = ast.SelectCore(items=[ast.SelectItem(expression=ast.Star())])
                core.from_tables = [ast.TableRef(subquery=inner, alias="__paren__")]
                return core
            return inner.core

        if self._match_keyword("VALUES"):
            rows: list[list[ast.Expression]] = []
            while True:
                self._expect_punct("(")
                row: list[ast.Expression] = []
                while not self._check_punct(")"):
                    row.append(self.parse_expression())
                    if not self._match_punct(","):
                        break
                self._expect_punct(")")
                rows.append(row)
                if not self._match_punct(","):
                    break
            return ast.SelectCore(values_rows=rows)

        self._expect_keyword("SELECT")
        core = ast.SelectCore()
        if self._match_keyword("DISTINCT"):
            core.distinct = True
        elif self._match_keyword("ALL"):
            core.distinct = False

        # projection list
        while True:
            item = self._parse_select_item()
            core.items.append(item)
            if not self._match_punct(","):
                break

        if self._match_keyword("FROM"):
            core.from_tables = self._parse_from_clause()
        if self._match_keyword("WHERE"):
            core.where = self.parse_expression()
        if self._match_keyword("GROUP"):
            self._expect_keyword("BY")
            while True:
                core.group_by.append(self.parse_expression())
                if not self._match_punct(","):
                    break
        if self._match_keyword("HAVING"):
            core.having = self.parse_expression()
        if self._match_keyword("WINDOW"):
            # consume and ignore window definitions
            depth = 0
            while not self._at_end():
                token = self._peek()
                if token.type is TokenType.PUNCTUATION:
                    if token.value == "(":
                        depth += 1
                    elif token.value == ")":
                        depth -= 1
                if depth == 0 and token.type is TokenType.KEYWORD and token.normalized in ("ORDER", "LIMIT", "UNION", "INTERSECT", "EXCEPT"):
                    break
                self._advance()
        return core

    def _parse_select_item(self) -> ast.SelectItem:
        token = self._peek()
        if token is not None and token.type is TokenType.OPERATOR and token.value == "*":
            self._advance()
            return ast.SelectItem(expression=ast.Star())
        # table.* form
        if (
            token is not None
            and token.type in (TokenType.IDENTIFIER, TokenType.QUOTED_IDENTIFIER)
            and self._peek(1) is not None
            and self._peek(1).value == "."
            and self._peek(2) is not None
            and self._peek(2).value == "*"
        ):
            table = self._advance().normalized
            self._advance()
            self._advance()
            return ast.SelectItem(expression=ast.Star(table=table))
        expression = self.parse_expression()
        alias = None
        if self._match_keyword("AS"):
            alias = self._identifier("alias")
        else:
            nxt = self._peek()
            if nxt is not None and nxt.type in (TokenType.IDENTIFIER, TokenType.QUOTED_IDENTIFIER):
                alias = self._advance().normalized
        return ast.SelectItem(expression=expression, alias=alias)

    def _parse_from_clause(self) -> list[ast.TableRef]:
        refs: list[ast.TableRef] = [self._parse_table_ref(first=True)]
        while True:
            if self._match_punct(","):
                ref = self._parse_table_ref(first=False)
                ref.is_comma_join = True
                refs.append(ref)
                continue
            join_type = self._parse_join_type()
            if join_type is None:
                break
            ref = self._parse_table_ref(first=False)
            ref.join_type = join_type
            if self._match_keyword("ON"):
                ref.join_condition = self.parse_expression()
            elif self._match_keyword("USING"):
                self._expect_punct("(")
                while not self._check_punct(")"):
                    ref.using_columns.append(self._identifier("USING column"))
                    if not self._match_punct(","):
                        break
                self._expect_punct(")")
            refs.append(ref)
        return refs

    def _parse_join_type(self) -> str | None:
        if self._match_keyword("CROSS"):
            self._expect_keyword("JOIN")
            return "cross"
        if self._match_keyword("INNER"):
            self._expect_keyword("JOIN")
            return "inner"
        if self._match_keyword("LEFT"):
            self._match_keyword("OUTER")
            self._expect_keyword("JOIN")
            return "left"
        if self._match_keyword("RIGHT"):
            self._match_keyword("OUTER")
            self._expect_keyword("JOIN")
            return "right"
        if self._match_keyword("FULL"):
            self._match_keyword("OUTER")
            self._expect_keyword("JOIN")
            return "full"
        if self._match_keyword("NATURAL"):
            self._match_keyword("INNER")
            self._expect_keyword("JOIN")
            return "natural"
        if self._match_keyword("ASOF"):
            self._expect_keyword("JOIN")
            return "asof"
        if self._match_keyword("JOIN"):
            return "inner"
        return None

    def _parse_table_ref(self, first: bool) -> ast.TableRef:
        if self._match_punct("("):
            token = self._peek()
            if token is not None and (token.is_keyword("SELECT", "VALUES", "WITH") or self._check_punct("(")):
                subquery = self.parse_select()
                self._expect_punct(")")
                alias = self._parse_optional_alias()
                return ast.TableRef(subquery=subquery, alias=alias)
            # parenthesised join group: parse inner refs, but only keep the list
            refs = self._parse_from_clause()
            self._expect_punct(")")
            alias = self._parse_optional_alias()
            # flatten by returning the first and re-queuing the rest is complex;
            # wrap as a subquery over the first table instead.
            if len(refs) == 1:
                refs[0].alias = alias or refs[0].alias
                return refs[0]
            return refs[0]
        token = self._peek()
        if token is None:
            raise SQLSyntaxError("expected table reference")
        # table-valued function: name(...)
        if token.type in (TokenType.IDENTIFIER, TokenType.QUOTED_IDENTIFIER) and self._peek(1) is not None and self._peek(1).value == "(":
            name = self._advance().normalized
            self._advance()  # (
            args: list[ast.Expression] = []
            while not self._check_punct(")"):
                args.append(self.parse_expression())
                if not self._match_punct(","):
                    break
            self._expect_punct(")")
            alias = self._parse_optional_alias()
            return ast.TableRef(function=ast.FunctionCall(name=name, args=args), alias=alias)
        name = self._identifier("table name")
        # schema-qualified names: keep only the final component
        while self._match_punct("."):
            name = self._identifier("table name")
        alias = self._parse_optional_alias()
        return ast.TableRef(name=name, alias=alias)

    def _parse_optional_alias(self) -> str | None:
        if self._match_keyword("AS"):
            alias = self._identifier("alias")
        else:
            token = self._peek()
            if token is not None and token.type in (TokenType.IDENTIFIER, TokenType.QUOTED_IDENTIFIER):
                alias = self._advance().normalized
            else:
                return None
        # optional column alias list: alias(a, b, c) — consumed and ignored
        if self._match_punct("("):
            while not self._check_punct(")"):
                self._advance()
            self._expect_punct(")")
        return alias

    # -- expressions ----------------------------------------------------------

    def parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self._match_keyword("OR") or self._match_operator("||") and False:
            right = self._parse_and()
            left = ast.BinaryOp(operator="OR", left=left, right=right)
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self._match_keyword("AND"):
            right = self._parse_not()
            left = ast.BinaryOp(operator="AND", left=left, right=right)
        return left

    def _parse_not(self) -> ast.Expression:
        if self._match_keyword("NOT"):
            if self._check_keyword("EXISTS"):
                expression = self._parse_comparison()
                if isinstance(expression, ast.ExistsExpression):
                    expression.negated = True
                    return expression
                return ast.UnaryOp(operator="NOT", operand=expression)
            return ast.UnaryOp(operator="NOT", operand=self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expression:
        left = self._parse_additive()
        while True:
            negated = False
            if self._check_keyword("NOT") and self._peek(1) is not None and self._peek(1).is_keyword("IN", "LIKE", "ILIKE", "BETWEEN", "GLOB", "REGEXP"):
                self._advance()
                negated = True
            if self._match_keyword("IN"):
                self._expect_punct("(")
                token = self._peek()
                if token is not None and (token.is_keyword("SELECT", "WITH", "VALUES")):
                    subquery = self.parse_select()
                    self._expect_punct(")")
                    left = ast.InExpression(operand=left, subquery=subquery, negated=negated)
                else:
                    items: list[ast.Expression] = []
                    while not self._check_punct(")"):
                        items.append(self.parse_expression())
                        if not self._match_punct(","):
                            break
                    self._expect_punct(")")
                    left = ast.InExpression(operand=left, items=items, negated=negated)
                continue
            if self._match_keyword("BETWEEN"):
                low = self._parse_additive()
                self._expect_keyword("AND")
                high = self._parse_additive()
                left = ast.BetweenExpression(operand=left, low=low, high=high, negated=negated)
                continue
            if self._match_keyword("LIKE"):
                pattern = self._parse_additive()
                left = ast.LikeExpression(operand=left, pattern=pattern, negated=negated)
                continue
            if self._match_keyword("ILIKE"):
                pattern = self._parse_additive()
                left = ast.LikeExpression(operand=left, pattern=pattern, negated=negated, case_insensitive=True)
                continue
            if self._match_keyword("GLOB") or self._match_keyword("REGEXP"):
                pattern = self._parse_additive()
                left = ast.LikeExpression(operand=left, pattern=pattern, negated=negated)
                continue
            if self._match_keyword("IS"):
                is_negated = self._match_keyword("NOT")
                if self._match_keyword("NULL"):
                    left = ast.IsNullExpression(operand=left, negated=is_negated)
                elif self._match_keyword("TRUE"):
                    comparison = ast.BinaryOp(operator="IS", left=left, right=ast.Literal(True))
                    left = ast.UnaryOp(operator="NOT", operand=comparison) if is_negated else comparison
                elif self._match_keyword("FALSE"):
                    comparison = ast.BinaryOp(operator="IS", left=left, right=ast.Literal(False))
                    left = ast.UnaryOp(operator="NOT", operand=comparison) if is_negated else comparison
                elif self._match_keyword("DISTINCT"):
                    self._expect_keyword("FROM")
                    right = self._parse_additive()
                    op = "IS NOT DISTINCT FROM" if is_negated else "IS DISTINCT FROM"
                    left = ast.BinaryOp(operator=op, left=left, right=right)
                else:
                    right = self._parse_additive()
                    op = "IS NOT" if is_negated else "IS"
                    left = ast.BinaryOp(operator=op, left=left, right=right)
                continue
            if self._match_keyword("ISNULL"):
                left = ast.IsNullExpression(operand=left)
                continue
            if self._match_keyword("NOTNULL"):
                left = ast.IsNullExpression(operand=left, negated=True)
                continue
            operator_token = self._match_operator("=", "==", "!=", "<>", "<", ">", "<=", ">=")
            if operator_token is not None:
                right = self._parse_additive()
                operator = {"==": "=", "<>": "!="}.get(operator_token.value, operator_token.value)
                left = ast.BinaryOp(operator=operator, left=left, right=right)
                continue
            break
        return left

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while True:
            if self._check_operator("+", "-", "||"):
                operator = self._advance().value
                right = self._parse_multiplicative()
                left = ast.BinaryOp(operator=operator, left=left, right=right)
            else:
                break
        return left

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while True:
            if self._check_operator("*", "/", "%"):
                operator = self._advance().value
                right = self._parse_unary()
                left = ast.BinaryOp(operator=operator, left=left, right=right)
            elif self._check_keyword("DIV"):
                self._advance()
                right = self._parse_unary()
                left = ast.BinaryOp(operator="DIV", left=left, right=right)
            else:
                break
        return left

    def _parse_unary(self) -> ast.Expression:
        if self._check_operator("-", "+"):
            operator = self._advance().value
            operand = self._parse_unary()
            if operator == "+":
                return operand
            return ast.UnaryOp(operator="-", operand=operand)
        if self._check_operator("~"):
            self._advance()
            return ast.UnaryOp(operator="~", operand=self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expression:
        expression = self._parse_primary()
        while True:
            if self._check_operator("::"):
                self._advance()
                type_name = self._parse_type_name()
                expression = ast.Cast(operand=expression, type_name=type_name, via_double_colon=True)
            else:
                break
        return expression

    def _parse_type_name(self) -> str:
        parts = [self._identifier("type name").upper()]
        # multi-word types: DOUBLE PRECISION, TIMESTAMP WITH TIME ZONE ...
        while self._check_keyword("PRECISION", "VARYING"):
            parts.append(self._advance().normalized)
        name = " ".join(parts)
        if self._match_punct("("):
            args = []
            while not self._check_punct(")"):
                args.append(self._advance().value)
                if not self._match_punct(","):
                    break
            self._expect_punct(")")
            name += "(" + ",".join(args) + ")"
        return name

    def _parse_primary(self) -> ast.Expression:
        token = self._peek()
        if token is None:
            raise SQLSyntaxError("unexpected end of expression")

        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.value
            if text.lower().startswith("0x"):
                return ast.Literal(int(text, 16))
            if "." in text or "e" in text.lower():
                return ast.Literal(float(text))
            return ast.Literal(int(text))

        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.normalized)

        if token.type is TokenType.PARAMETER:
            self._advance()
            return ast.Literal(None)

        if token.is_keyword("NULL"):
            self._advance()
            return ast.Literal(None)
        if token.is_keyword("TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return ast.Literal(False)
        if token.is_keyword("CURRENT_DATE", "CURRENT_TIME", "CURRENT_TIMESTAMP"):
            self._advance()
            return ast.FunctionCall(name=token.normalized.lower())
        if token.is_keyword("INTERVAL"):
            self._advance()
            value_token = self._peek()
            if value_token is not None and value_token.type in (TokenType.STRING, TokenType.NUMBER):
                self._advance()
                unit = ""
                unit_token = self._peek()
                if unit_token is not None and unit_token.type is TokenType.IDENTIFIER:
                    unit = self._advance().value
                text = f"{value_token.normalized} {unit}".strip()
                return ast.Literal(text)
            return ast.Literal("interval")

        if token.is_keyword("CASE"):
            return self._parse_case()

        if token.is_keyword("CAST"):
            self._advance()
            self._expect_punct("(")
            operand = self.parse_expression()
            self._expect_keyword("AS")
            type_name = self._parse_type_name()
            self._expect_punct(")")
            return ast.Cast(operand=operand, type_name=type_name)

        if token.is_keyword("EXISTS"):
            self._advance()
            self._expect_punct("(")
            subquery = self.parse_select()
            self._expect_punct(")")
            return ast.ExistsExpression(subquery=subquery)

        if token.is_keyword("NOT"):
            self._advance()
            return ast.UnaryOp(operator="NOT", operand=self._parse_primary())

        if self._check_punct("("):
            self._advance()
            inner_token = self._peek()
            if inner_token is not None and inner_token.is_keyword("SELECT", "WITH", "VALUES"):
                subquery = self.parse_select()
                self._expect_punct(")")
                return ast.ScalarSubquery(subquery=subquery)
            first = self.parse_expression()
            if self._match_punct(","):
                items = [first]
                while True:
                    items.append(self.parse_expression())
                    if not self._match_punct(","):
                        break
                self._expect_punct(")")
                return ast.RowValue(items=items)
            self._expect_punct(")")
            return first

        if self._check_punct("["):
            self._advance()
            items: list[ast.Expression] = []
            while not self._check_punct("]"):
                items.append(self.parse_expression())
                if not self._match_punct(","):
                    break
            self._expect_punct("]")
            return ast.ListLiteral(items=items)

        if self._check_punct("{"):
            self._advance()
            pairs: list[tuple[str, ast.Expression]] = []
            while not self._check_punct("}"):
                key_token = self._advance()
                key = key_token.normalized
                self._match_punct(":") or self._match_operator(":")
                # tokenizer emits ':' as parameter or operator depending on context
                if self._peek() is not None and self._peek().value == ":":
                    self._advance()
                value = self.parse_expression()
                pairs.append((key, value))
                if not self._match_punct(","):
                    break
            self._expect_punct("}")
            return ast.StructLiteral(items=pairs)

        if token.type in (TokenType.IDENTIFIER, TokenType.QUOTED_IDENTIFIER) or token.type is TokenType.KEYWORD:
            # Keywords that may act as function names or bare identifiers
            name = token.normalized if token.type is not TokenType.KEYWORD else token.value.lower()
            nxt = self._peek(1)
            if nxt is not None and nxt.type is TokenType.PUNCTUATION and nxt.value == "(":
                self._advance()
                self._advance()
                return self._parse_function_call(name)
            if token.type is TokenType.KEYWORD and token.normalized not in (
                "LEFT",
                "RIGHT",
                "REPLACE",
                "IF",
                "DATE",
                "TIME",
                "FIRST",
                "LAST",
                "ROW",
                "TYPE",
                "KEY",
                "LANGUAGE",
                "DO",
                "NO",
                "OF",
                "ONLY",
                "BOTH",
                "RANGE",
                "ANY",
                "SOME",
                "ALL",
                "VALUES",
            ):
                raise SQLSyntaxError(f"unexpected keyword {token.value!r} in expression")
            self._advance()
            table: str | None = None
            column = name
            while self._check_punct("."):
                self._advance()
                nxt = self._peek()
                if nxt is not None and nxt.type is TokenType.OPERATOR and nxt.value == "*":
                    self._advance()
                    return ast.Star(table=column)
                table = column
                column = self._identifier("column name")
            return ast.ColumnRef(name=column, table=table)

        if token.type is TokenType.OPERATOR and token.value == "*":
            self._advance()
            return ast.Star()

        raise SQLSyntaxError(f"unexpected token {token.value!r} in expression")

    def _parse_function_call(self, name: str) -> ast.Expression:
        call = ast.FunctionCall(name=name.lower())
        if self._check_operator("*"):
            self._advance()
            call.is_star = True
            self._expect_punct(")")
            return call
        if self._match_keyword("DISTINCT"):
            call.distinct = True
        while not self._check_punct(")"):
            if self._check_keyword("SELECT", "WITH"):
                call.args.append(ast.ScalarSubquery(subquery=self.parse_select()))
            else:
                call.args.append(self.parse_expression())
            if not self._match_punct(","):
                break
        self._expect_punct(")")
        # OVER (...) window clause: consume and ignore (window functions are
        # evaluated as their aggregate over the whole result in MiniDB).
        if self._match_keyword("OVER"):
            if self._match_punct("("):
                depth = 1
                while depth > 0 and self._peek() is not None:
                    value = self._advance().value
                    if value == "(":
                        depth += 1
                    elif value == ")":
                        depth -= 1
        # FILTER (WHERE ...) clause: consume and ignore.
        if self._check_keyword("FILTER"):
            self._advance()
            if self._match_punct("("):
                depth = 1
                while depth > 0 and self._peek() is not None:
                    value = self._advance().value
                    if value == "(":
                        depth += 1
                    elif value == ")":
                        depth -= 1
        return call

    def _parse_case(self) -> ast.Expression:
        self._expect_keyword("CASE")
        operand: ast.Expression | None = None
        if not self._check_keyword("WHEN"):
            operand = self.parse_expression()
        whens: list[tuple[ast.Expression, ast.Expression]] = []
        while self._match_keyword("WHEN"):
            condition = self.parse_expression()
            self._expect_keyword("THEN")
            result = self.parse_expression()
            whens.append((condition, result))
        default = None
        if self._match_keyword("ELSE"):
            default = self.parse_expression()
        self._expect_keyword("END")
        return ast.CaseExpression(operand=operand, whens=whens, default=default)

    # -- INSERT / UPDATE / DELETE --------------------------------------------

    def parse_insert(self) -> ast.InsertStatement:
        or_ignore = False
        if self._match_keyword("REPLACE"):
            pass
        else:
            self._expect_keyword("INSERT")
            if self._match_keyword("OR"):
                self._match_keyword("IGNORE")
                self._match_keyword("REPLACE")
                or_ignore = True
            self._match_keyword("IGNORE")
        self._expect_keyword("INTO")
        table = self._identifier("table name")
        while self._match_punct("."):
            table = self._identifier("table name")
        columns: list[str] = []
        if self._check_punct("(") and not self._peek_is_select_after_paren():
            self._advance()
            while not self._check_punct(")"):
                columns.append(self._identifier("column name"))
                if not self._match_punct(","):
                    break
            self._expect_punct(")")
        statement = ast.InsertStatement(table=table, columns=columns, or_ignore=or_ignore)
        if self._match_keyword("VALUES"):
            while True:
                self._expect_punct("(")
                row: list[ast.Expression] = []
                while not self._check_punct(")"):
                    row.append(self.parse_expression())
                    if not self._match_punct(","):
                        break
                self._expect_punct(")")
                statement.rows.append(row)
                if not self._match_punct(","):
                    break
        elif self._check_keyword("SELECT", "WITH") or self._check_punct("("):
            statement.select = self.parse_select()
        elif self._match_keyword("DEFAULT"):
            self._expect_keyword("VALUES")
            statement.rows.append([])
        return statement

    def _peek_is_select_after_paren(self) -> bool:
        token = self._peek(1)
        return token is not None and token.is_keyword("SELECT", "WITH", "VALUES")

    def parse_update(self) -> ast.UpdateStatement:
        self._expect_keyword("UPDATE")
        table = self._identifier("table name")
        while self._match_punct("."):
            table = self._identifier("table name")
        self._expect_keyword("SET")
        assignments: list[tuple[str, ast.Expression]] = []
        while True:
            column = self._identifier("column name")
            operator = self._match_operator("=")
            if operator is None:
                raise SQLSyntaxError("expected = in UPDATE assignment")
            assignments.append((column, self.parse_expression()))
            if not self._match_punct(","):
                break
        where = None
        if self._match_keyword("WHERE"):
            where = self.parse_expression()
        return ast.UpdateStatement(table=table, assignments=assignments, where=where)

    def parse_delete(self) -> ast.DeleteStatement:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._identifier("table name")
        while self._match_punct("."):
            table = self._identifier("table name")
        where = None
        if self._match_keyword("WHERE"):
            where = self.parse_expression()
        return ast.DeleteStatement(table=table, where=where)

    # -- DDL -------------------------------------------------------------------

    def parse_create(self) -> Any:
        self._expect_keyword("CREATE")
        temporary = bool(self._match_keyword("TEMP") or self._match_keyword("TEMPORARY"))
        or_replace = False
        if self._match_keyword("OR"):
            self._expect_keyword("REPLACE")
            or_replace = True
        unique = bool(self._match_keyword("UNIQUE"))
        self._match_keyword("MATERIALIZED")

        if self._match_keyword("TABLE"):
            return self._parse_create_table(temporary=temporary)
        if self._match_keyword("INDEX"):
            return self._parse_create_index(unique=unique)
        if self._match_keyword("VIEW"):
            return self._parse_create_view(or_replace=or_replace)
        if self._match_keyword("SCHEMA") or self._match_keyword("DATABASE"):
            if_not_exists = self._parse_if_not_exists()
            name = self._identifier("schema name")
            return ast.CreateSchemaStatement(name=name, if_not_exists=if_not_exists)
        # CREATE FUNCTION / TRIGGER / SEQUENCE / EXTENSION / TYPE / MACRO ...
        stype = statement_type(self.sql)
        return ast.UnparsedStatement(text=self.sql, statement_type=stype, reason=f"{stype} is not implemented by MiniDB")

    def _parse_if_not_exists(self) -> bool:
        if self._match_keyword("IF"):
            self._expect_keyword("NOT")
            self._expect_keyword("EXISTS")
            return True
        return False

    def _parse_create_table(self, temporary: bool) -> ast.CreateTableStatement:
        if_not_exists = self._parse_if_not_exists()
        name = self._identifier("table name")
        while self._match_punct("."):
            name = self._identifier("table name")
        statement = ast.CreateTableStatement(name=name, if_not_exists=if_not_exists, temporary=temporary)
        if self._match_keyword("AS"):
            statement.as_select = self.parse_select()
            return statement
        self._expect_punct("(")
        while not self._check_punct(")"):
            token = self._peek()
            if token is not None and token.is_keyword("PRIMARY"):
                self._advance()
                self._expect_keyword("KEY")
                self._expect_punct("(")
                while not self._check_punct(")"):
                    statement.primary_key_columns.append(self._identifier("column"))
                    if not self._match_punct(","):
                        break
                self._expect_punct(")")
            elif token is not None and token.is_keyword("UNIQUE", "CHECK", "FOREIGN", "CONSTRAINT"):
                # table constraints: consume until the matching close
                self._advance()
                depth = 0
                while self._peek() is not None:
                    if self._check_punct("(") :
                        depth += 1
                        self._advance()
                    elif self._check_punct(")"):
                        if depth == 0:
                            break
                        depth -= 1
                        self._advance()
                    elif self._check_punct(",") and depth == 0:
                        break
                    else:
                        self._advance()
            else:
                statement.columns.append(self._parse_column_definition())
            if not self._match_punct(","):
                break
        self._expect_punct(")")
        return statement

    def _parse_column_definition(self) -> ast.ColumnDefinition:
        name = self._identifier("column name")
        type_name: str | None = None
        token = self._peek()
        if token is not None and not token.is_keyword("PRIMARY", "NOT", "NULL", "UNIQUE", "DEFAULT", "CHECK", "REFERENCES") and not self._check_punct(",") and not self._check_punct(")"):
            type_name = self._parse_type_name()
        column = ast.ColumnDefinition(name=name, type_name=type_name)
        while True:
            if self._match_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                column.primary_key = True
                self._match_keyword("AUTOINCREMENT")
                self._match_keyword("ASC")
                self._match_keyword("DESC")
            elif self._match_keyword("NOT"):
                self._expect_keyword("NULL")
                column.not_null = True
            elif self._match_keyword("NULL"):
                pass
            elif self._match_keyword("UNIQUE"):
                column.unique = True
            elif self._match_keyword("DEFAULT"):
                column.default = self._parse_unary() if not self._check_punct("(") else self.parse_expression()
            elif self._match_keyword("CHECK"):
                self._expect_punct("(")
                column.check = self.parse_expression()
                self._expect_punct(")")
            elif self._match_keyword("REFERENCES"):
                self._identifier("referenced table")
                if self._match_punct("("):
                    while not self._check_punct(")"):
                        self._advance()
                    self._expect_punct(")")
            elif self._match_keyword("COLLATE"):
                self._identifier("collation")
            else:
                break
        return column

    def _parse_create_index(self, unique: bool) -> ast.CreateIndexStatement:
        if_not_exists = self._parse_if_not_exists()
        name = self._identifier("index name")
        self._expect_keyword("ON")
        table = self._identifier("table name")
        while self._match_punct("."):
            table = self._identifier("table name")
        columns: list[str] = []
        self._expect_punct("(")
        while not self._check_punct(")"):
            columns.append(self._identifier("column name"))
            self._match_keyword("ASC")
            self._match_keyword("DESC")
            if not self._match_punct(","):
                break
        self._expect_punct(")")
        return ast.CreateIndexStatement(name=name, table=table, columns=columns, unique=unique, if_not_exists=if_not_exists)

    def _parse_create_view(self, or_replace: bool) -> ast.CreateViewStatement:
        if_not_exists = self._parse_if_not_exists()
        name = self._identifier("view name")
        while self._match_punct("."):
            name = self._identifier("view name")
        if self._match_punct("("):
            while not self._check_punct(")"):
                self._advance()
            self._expect_punct(")")
        self._expect_keyword("AS")
        query = self.parse_select()
        return ast.CreateViewStatement(name=name, query=query, if_not_exists=if_not_exists, or_replace=or_replace)

    def parse_drop(self) -> ast.DropStatement:
        self._expect_keyword("DROP")
        kind_token = self._advance()
        kind = kind_token.normalized if kind_token.type is TokenType.KEYWORD else kind_token.value.upper()
        if_exists = False
        if self._match_keyword("IF"):
            self._expect_keyword("EXISTS")
            if_exists = True
        name = self._identifier("object name")
        while self._match_punct("."):
            name = self._identifier("object name")
        cascade = bool(self._match_keyword("CASCADE"))
        self._match_keyword("RESTRICT")
        return ast.DropStatement(object_kind=kind, name=name, if_exists=if_exists, cascade=cascade)

    def parse_alter(self) -> Any:
        self._expect_keyword("ALTER")
        if self._match_keyword("TABLE"):
            self._match_keyword("IF")
            self._match_keyword("EXISTS")
            self._match_keyword("ONLY")
            table = self._identifier("table name")
            while self._match_punct("."):
                table = self._identifier("table name")
            if self._match_keyword("ADD"):
                self._match_keyword("COLUMN")
                column = self._parse_column_definition()
                return ast.AlterTableStatement(table=table, action="add_column", column=column)
            if self._match_keyword("DROP"):
                self._match_keyword("COLUMN")
                name = self._identifier("column name")
                return ast.AlterTableStatement(table=table, action="drop_column", old_column=name)
            if self._match_keyword("RENAME"):
                if self._match_keyword("TO"):
                    return ast.AlterTableStatement(table=table, action="rename_to", new_name=self._identifier("new name"))
                self._match_keyword("COLUMN")
                old = self._identifier("column name")
                self._expect_keyword("TO")
                return ast.AlterTableStatement(table=table, action="rename_column", old_column=old, new_name=self._identifier("new name"))
            stype = statement_type(self.sql)
            return ast.UnparsedStatement(text=self.sql, statement_type=stype, reason="unsupported ALTER TABLE action")
        if self._match_keyword("SCHEMA"):
            name = self._identifier("schema name")
            self._expect_keyword("RENAME")
            self._expect_keyword("TO")
            return ast.AlterSchemaStatement(name=name, new_name=self._identifier("new schema name"))
        stype = statement_type(self.sql)
        return ast.UnparsedStatement(text=self.sql, statement_type=stype, reason="unsupported ALTER statement")

    # -- transactions / settings / utility -------------------------------------

    def parse_transaction(self) -> ast.TransactionStatement:
        token = self._advance()
        keyword = token.normalized
        if keyword == "BEGIN":
            self._match_keyword("TRANSACTION")
            self._match_keyword("WORK")
            self._match_keyword("DEFERRED")
            self._match_keyword("IMMEDIATE")
            self._match_keyword("EXCLUSIVE")
            return ast.TransactionStatement(action="begin")
        if keyword == "START":
            self._expect_keyword("TRANSACTION")
            return ast.TransactionStatement(action="start_transaction")
        if keyword in ("COMMIT", "END"):
            self._match_keyword("TRANSACTION")
            self._match_keyword("WORK")
            return ast.TransactionStatement(action="commit")
        if keyword in ("ROLLBACK", "ABORT"):
            self._match_keyword("TRANSACTION")
            self._match_keyword("WORK")
            if self._match_keyword("TO"):
                self._match_keyword("SAVEPOINT")
                return ast.TransactionStatement(action="rollback_to", name=self._identifier("savepoint"))
            return ast.TransactionStatement(action="rollback")
        if keyword == "SAVEPOINT":
            return ast.TransactionStatement(action="savepoint", name=self._identifier("savepoint"))
        if keyword == "RELEASE":
            self._match_keyword("SAVEPOINT")
            return ast.TransactionStatement(action="release", name=self._identifier("savepoint"))
        raise SQLSyntaxError(f"unsupported transaction statement: {keyword}")

    def parse_set(self, is_pragma: bool) -> ast.SetStatement:
        self._advance()  # SET or PRAGMA
        scope = None
        if not is_pragma:
            if self._match_keyword("LOCAL"):
                scope = "LOCAL"
            elif self._match_keyword("GLOBAL"):
                scope = "GLOBAL"
            elif self._match_keyword("SESSION"):
                scope = "SESSION"
        name = self._identifier("setting name")
        value: ast.Expression | None = None
        if self._match_operator("=") or self._match_keyword("TO"):
            value = self._parse_setting_value()
        elif self._match_punct("("):
            value = self.parse_expression()
            self._expect_punct(")")
        elif not self._at_end() and not is_pragma:
            value = self._parse_setting_value()
        return ast.SetStatement(name=name, value=value, is_pragma=is_pragma, scope=scope)

    def _parse_setting_value(self) -> ast.Expression:
        token = self._peek()
        if token is None:
            return ast.Literal(None)
        if token.is_keyword("DEFAULT"):
            self._advance()
            return ast.Literal("default")
        if token.type in (TokenType.IDENTIFIER, TokenType.QUOTED_IDENTIFIER, TokenType.KEYWORD):
            # bare-word values such as ``nulls_first`` or ``OPTIMIZED_ONLY``
            parts = [self._advance().value]
            while self._peek() is not None and not self._at_end() and self._peek().type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
                parts.append(self._advance().value)
            return ast.Literal(" ".join(parts))
        return self.parse_expression()

    def parse_explain(self) -> ast.ExplainStatement:
        self._expect_keyword("EXPLAIN")
        analyze = bool(self._match_keyword("ANALYZE"))
        self._match_keyword("QUERY")
        self._match_keyword("PLAN")
        if self._match_punct("("):
            # PostgreSQL option list: EXPLAIN (COSTS OFF, ...)
            while not self._check_punct(")"):
                self._advance()
            self._expect_punct(")")
        inner = self.parse_statement()
        return ast.ExplainStatement(statement=inner, analyze=analyze)

    def parse_copy(self) -> ast.CopyStatement:
        self._expect_keyword("COPY")
        table = self._identifier("table name")
        if self._match_punct("("):
            while not self._check_punct(")"):
                self._advance()
            self._expect_punct(")")
        direction = "from"
        if self._match_keyword("FROM"):
            direction = "from"
        elif self._match_keyword("TO"):
            direction = "to"
        source_token = self._peek()
        source = source_token.normalized if source_token is not None else ""
        while not self._at_end():
            self._advance()
        return ast.CopyStatement(table=table, source=source, direction=direction)


def parse_sql(sql: str) -> Any:
    """Parse one SQL statement into an AST node (convenience wrapper)."""
    parser = Parser(sql)
    statement = parser.parse_statement()
    return statement
