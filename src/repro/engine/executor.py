"""SELECT execution for MiniDB.

The executor materialises every intermediate relation — fine at test-suite
scale — and implements: base-table/view/subquery/table-function FROM items,
comma joins, INNER/LEFT/RIGHT/FULL/CROSS/NATURAL joins (ON and USING),
WHERE filtering, GROUP BY with aggregates and HAVING, DISTINCT, compound
operators (UNION [ALL], INTERSECT, EXCEPT), ORDER BY with dialect NULL
ordering, LIMIT/OFFSET, and (recursive) common table expressions with the
dialect-specific recursion policies the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from operator import itemgetter
from typing import Any, Callable

from repro.dialects.base import DialectProfile, NullOrder
from repro.engine import ast_nodes as ast
from repro.engine import columnar
from repro.engine.columnar import column_positions as _column_positions, ref_binding_key as _ref_binding_key
from repro.engine.expressions import ExpressionEvaluator, RowContext, _predicate_truth
from repro.engine.functions import evaluate_aggregate, is_aggregate
from repro.engine.storage import Database, Table
from repro.engine.values import compare_values, render_value
from repro.perf import cache as perf_cache
from repro.perf import vectorize
from repro.errors import CatalogError, DatabaseError, EngineHang, UnsupportedStatementError

#: Iteration budget for recursive CTEs before MiniDB declares a hang.
MAX_RECURSIVE_ITERATIONS = 2000
#: Row budget for any single relation.
MAX_RELATION_ROWS = 2_000_000


@dataclass
class Relation:
    """A materialised intermediate result: ordered columns plus row lists.

    ``source_columns``/``source_rows`` optionally keep the pre-projection rows
    aligned with ``rows`` so ORDER BY can reference columns that were not
    projected (``SELECT b FROM t ORDER BY a``).
    """

    columns: list[tuple[str | None, str]] = field(default_factory=list)  # (qualifier, name)
    rows: list[list[Any]] = field(default_factory=list)
    source_columns: list[tuple[str | None, str]] | None = None
    source_rows: list[list[Any]] | None = None

    def column_names(self) -> list[str]:
        return [name for _, name in self.columns]

    def rename(self, qualifier: str) -> "Relation":
        return Relation(columns=[(qualifier, name) for _, name in self.columns], rows=self.rows)

    def with_rows(self, rows: list[list[Any]]) -> "Relation":
        """Same shape, different rows — carries the vectorization layout over."""
        relation = Relation(columns=self.columns, rows=rows)
        layout = getattr(self, "_vec_layout", None)
        if layout is not None:
            relation._vec_layout = layout
        src_positions = getattr(self, "_src_positions", None)
        if src_positions is not None:
            relation._src_positions = src_positions
        return relation

    def column_values(self, index: int) -> list[Any]:
        """One column of the relation as a list (the lazy columnar view).

        Columns are extracted on first access and cached; only call this on
        relations that are fully materialised (the cache does not watch for
        later row appends).
        """
        cache = getattr(self, "_column_cache", None)
        if cache is None:
            cache = {}
            self._column_cache = cache
        values = cache.get(index)
        if values is None:
            values = [row[index] for row in self.rows]
            cache[index] = values
        return values

    @staticmethod
    def from_table(table: Table, qualifier: str | None = None) -> "Relation":
        name = qualifier or table.name
        if vectorize.vectorize_enabled():
            # Share the table's row lists instead of copying each one: no
            # executor path hands a base-table row object to a query result
            # (projection, aggregation, VALUES, and compounds all build fresh
            # lists; INSERT..SELECT and CREATE TABLE AS copy), and statement
            # handlers replace mutated rows wholesale rather than editing them
            # in place, so the shared lists are never observed changing.
            # The column list and its program layout are likewise fixed per
            # schema, so both are built once and reused across statements.
            template = getattr(table, "_relation_template", None)
            if template is None or template[0] != table.schema_version or template[1] != name:
                columns = [(name, column.name) for column in table.columns]
                layout = (tuple(columns), columnar.column_positions(columns))
                template = (table.schema_version, name, columns, layout)
                table._relation_template = template
            relation = Relation(columns=template[2], rows=table.rows)
            relation._vec_layout = template[3]
            return relation
        rows = [list(row) for row in table.rows]
        return Relation(columns=[(name, column.name) for column in table.columns], rows=rows)


def _binding_keys(columns: list[tuple[str | None, str]]) -> list[tuple[str, str | None]]:
    """Precomputed (bare key, qualified key) pairs for one column list."""
    return [
        (name.lower(), f"{qualifier}.{name}".lower() if qualifier else None)
        for qualifier, name in columns
    ]


def _bind_row(relation: Relation, row: list[Any], outer: RowContext | None = None) -> RowContext:
    if not perf_cache.caching_enabled():
        context = RowContext(outer=outer)
        for (qualifier, name), value in zip(relation.columns, row):
            context.bind(name, value)
            if qualifier:
                context.bind(f"{qualifier}.{name}", value)
        return context
    # binding keys are cached per relation: columns are fixed once a relation
    # is materialised, so the per-row cost is two dict stores per column
    keys = getattr(relation, "_bind_keys", None)
    if keys is None:
        keys = _binding_keys(relation.columns)
        relation._bind_keys = keys
    values: dict[str, Any] = {}
    for (bare, qualified), value in zip(keys, row):
        values[bare] = value
        if qualified:
            values[qualified] = value
    return RowContext(values, outer=outer)


#: Node types whose column references can be collected statically (for the
#: minimal-binding filter fast path).  Subqueries and Star are deliberately
#: absent: they may reference columns that cannot be enumerated here.
def _collect_column_refs(expression: ast.Expression) -> "list[ast.ColumnRef] | None":
    """All ColumnRefs in ``expression``, or None when they cannot be statically
    enumerated (subqueries, unknown node types).

    The result is memoized on the expression node: plans are shared through
    the statement cache, so the walk happens once per distinct statement.
    """
    cached = getattr(expression, "_column_refs", False)
    if cached is not False:
        return cached
    refs: list[ast.ColumnRef] = []
    stack: list[Any] = [expression]
    result: "list[ast.ColumnRef] | None" = refs
    while stack:
        node = stack.pop()
        if node is None:
            continue
        node_type = type(node)
        if node_type is ast.Literal:
            continue
        if node_type is ast.ColumnRef:
            refs.append(node)
        elif node_type is ast.UnaryOp:
            stack.append(node.operand)
        elif node_type is ast.BinaryOp:
            stack.extend((node.left, node.right))
        elif node_type is ast.Cast:
            stack.append(node.operand)
        elif node_type is ast.FunctionCall:
            stack.extend(node.args)
        elif node_type is ast.CaseExpression:
            stack.extend((node.operand, node.default))
            for condition, outcome in node.whens:
                stack.extend((condition, outcome))
        elif node_type is ast.InExpression:
            if node.subquery is not None:
                result = None
                break
            stack.append(node.operand)
            stack.extend(node.items)
        elif node_type is ast.BetweenExpression:
            stack.extend((node.operand, node.low, node.high))
        elif node_type is ast.LikeExpression:
            stack.extend((node.operand, node.pattern))
        elif node_type is ast.IsNullExpression:
            stack.append(node.operand)
        elif node_type is ast.RowValue or node_type is ast.ListLiteral:
            stack.extend(node.items)
        else:
            # unknown or row-set node (Exists, ScalarSubquery, Star, ...)
            result = None
            break
    try:
        expression._column_refs = result
    except AttributeError:  # pragma: no cover - frozen/slotted nodes
        pass
    return result


def _expression_name(expression: ast.Expression) -> str:
    if isinstance(expression, ast.ColumnRef):
        return expression.name
    if isinstance(expression, ast.FunctionCall):
        return expression.name
    if isinstance(expression, ast.Literal):
        return render_value(expression.value)
    if isinstance(expression, ast.Cast):
        return _expression_name(expression.operand)
    return "expr"


def _contains_aggregate(expression: ast.Expression) -> bool:
    if isinstance(expression, ast.FunctionCall):
        if is_aggregate(expression.name):
            return True
        return any(_contains_aggregate(arg) for arg in expression.args)
    if isinstance(expression, ast.BinaryOp):
        return _contains_aggregate(expression.left) or _contains_aggregate(expression.right)
    if isinstance(expression, ast.UnaryOp):
        return _contains_aggregate(expression.operand)
    if isinstance(expression, ast.Cast):
        return _contains_aggregate(expression.operand)
    if isinstance(expression, ast.CaseExpression):
        parts = [expression.operand, expression.default] if expression.operand or expression.default else []
        parts += [item for pair in expression.whens for item in pair]
        return any(_contains_aggregate(part) for part in parts if part is not None)
    return False


class SelectExecutor:
    """Executes SELECT statements against a :class:`Database`."""

    def __init__(
        self,
        database: Database,
        dialect: DialectProfile,
        evaluator: ExpressionEvaluator,
        feature_hook: Callable[[str], None] | None = None,
    ):
        self.database = database
        self.dialect = dialect
        self.evaluator = evaluator
        self._touch = feature_hook or (lambda name: None)
        self._cte_relations: dict[str, Relation] = {}

    # -- public API -----------------------------------------------------------------

    def execute(self, statement: ast.SelectStatement, outer: RowContext | None = None) -> Relation:
        self._touch("executor.select")
        saved_ctes = dict(self._cte_relations)
        try:
            for cte in statement.ctes:
                self._cte_relations[cte.name.lower()] = self._evaluate_cte(cte, statement.recursive, outer)
            relation = self._execute_core(statement.core, outer)
            for operator, core in statement.compound:
                right = self._execute_core(core, outer)
                relation = self._apply_compound(operator, relation, right)
            if statement.order_by:
                relation = self._apply_order_by(relation, statement.order_by, outer)
            relation = self._apply_limit(relation, statement, outer)
            return relation
        finally:
            self._cte_relations = saved_ctes

    def execute_rows(self, statement: ast.SelectStatement, outer: RowContext | None = None) -> list[list[Any]]:
        return self.execute(statement, outer).rows

    # -- CTEs -----------------------------------------------------------------------

    def _evaluate_cte(self, cte: ast.CommonTableExpression, recursive: bool, outer: RowContext | None) -> Relation:
        query = cte.query
        is_self_recursive = recursive and self._references_cte(query, cte.name)
        if not is_self_recursive:
            relation = self.execute(query, outer)
            return self._apply_cte_columns(relation, cte)

        self._touch("executor.recursive_cte")
        if self._recursive_reference_in_subquery(query, cte.name):
            # PostgreSQL/MySQL reject this pattern outright; DuckDB/SQLite run
            # it and never terminate (Listing 15).
            if self.dialect.limits_recursive_cte:
                raise DatabaseError(
                    f"recursive reference to query \"{cte.name}\" must not appear within a subquery"
                )
            raise EngineHang(
                f"recursive CTE {cte.name} with a self-reference inside a subquery does not terminate"
            )

        base_relation = self._execute_core(query.core, outer)
        base_relation = self._apply_cte_columns(base_relation, cte)
        accumulated = Relation(columns=list(base_relation.columns), rows=[list(row) for row in base_relation.rows])
        working = base_relation
        iterations = 0
        while working.rows:
            iterations += 1
            if iterations > MAX_RECURSIVE_ITERATIONS or len(accumulated.rows) > MAX_RELATION_ROWS:
                raise EngineHang(f"recursive CTE {cte.name} exceeded the iteration budget")
            self._cte_relations[cte.name.lower()] = working
            new_rows: list[list[Any]] = []
            for operator, core in query.compound:
                delta = self._execute_core(core, outer)
                candidate_rows = delta.rows
                if "ALL" not in operator:
                    seen = {tuple(map(render_value, row)) for row in accumulated.rows}
                    candidate_rows = [row for row in candidate_rows if tuple(map(render_value, row)) not in seen]
                new_rows.extend(candidate_rows)
            if not query.compound:
                break
            working = Relation(columns=list(base_relation.columns), rows=new_rows)
            accumulated.rows.extend(new_rows)
        self._cte_relations.pop(cte.name.lower(), None)
        return accumulated

    def _apply_cte_columns(self, relation: Relation, cte: ast.CommonTableExpression) -> Relation:
        if cte.columns:
            columns = [(cte.name, name) for name in cte.columns]
            while len(columns) < len(relation.columns):
                columns.append((cte.name, relation.columns[len(columns)][1]))
        else:
            columns = [(cte.name, name) for _, name in relation.columns]
        return Relation(columns=columns, rows=relation.rows)

    def _references_cte(self, statement: ast.SelectStatement, name: str) -> bool:
        cores = [statement.core] + [core for _, core in statement.compound]
        return any(self._core_references(core, name) for core in cores)

    def _core_references(self, core: ast.SelectCore, name: str) -> bool:
        lowered = name.lower()
        for ref in core.from_tables:
            if ref.name and ref.name.lower() == lowered:
                return True
            if ref.subquery is not None and self._references_cte(ref.subquery, name):
                return True
        if core.where is not None and self._expression_references(core.where, name):
            return True
        for item in core.items:
            if self._expression_references(item.expression, name):
                return True
        return False

    def _expression_references(self, expression: ast.Expression, name: str) -> bool:
        lowered = name.lower()
        stack: list[Any] = [expression]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.InExpression, ast.ExistsExpression, ast.ScalarSubquery)):
                subquery = getattr(node, "subquery", None)
                if subquery is not None and self._references_cte(subquery, name):
                    return True
                if isinstance(node, ast.InExpression):
                    stack.extend(node.items)
                    stack.append(node.operand)
            elif isinstance(node, ast.BinaryOp):
                stack.extend([node.left, node.right])
            elif isinstance(node, ast.UnaryOp):
                stack.append(node.operand)
            elif isinstance(node, ast.FunctionCall):
                stack.extend(node.args)
            elif isinstance(node, ast.Cast):
                stack.append(node.operand)
            elif isinstance(node, ast.ColumnRef) and node.table and node.table.lower() == lowered:
                return True
        return False

    def _recursive_reference_in_subquery(self, statement: ast.SelectStatement, name: str) -> bool:
        """Detect the Listing 15 pattern: the recursive term references the CTE inside a subquery."""
        for _, core in statement.compound:
            expressions: list[ast.Expression] = []
            if core.where is not None:
                expressions.append(core.where)
            expressions.extend(item.expression for item in core.items)
            for expression in expressions:
                stack: list[Any] = [expression]
                while stack:
                    node = stack.pop()
                    if isinstance(node, (ast.InExpression, ast.ExistsExpression, ast.ScalarSubquery)):
                        subquery = getattr(node, "subquery", None)
                        if subquery is not None and self._subquery_scans(subquery, name):
                            return True
                        if isinstance(node, ast.InExpression):
                            stack.append(node.operand)
                    elif isinstance(node, ast.BinaryOp):
                        stack.extend([node.left, node.right])
                    elif isinstance(node, ast.UnaryOp):
                        stack.append(node.operand)
        return False

    def _subquery_scans(self, statement: ast.SelectStatement, name: str) -> bool:
        lowered = name.lower()
        cores = [statement.core] + [core for _, core in statement.compound]
        for core in cores:
            for ref in core.from_tables:
                if ref.name and ref.name.lower() == lowered:
                    return True
                if ref.subquery is not None and self._subquery_scans(ref.subquery, name):
                    return True
        return False

    # -- SELECT core -------------------------------------------------------------------

    def _execute_core(self, core: ast.SelectCore, outer: RowContext | None) -> Relation:
        if core.values_rows is not None:
            self._touch("executor.values")
            rows = []
            width = 0
            for row_expressions in core.values_rows:
                context = RowContext(outer=outer)
                row = [self.evaluator.evaluate(expression, context) for expression in row_expressions]
                width = max(width, len(row))
                rows.append(row)
            columns = [(None, f"column{i}") for i in range(width)]
            return Relation(columns=columns, rows=rows)

        source = self._resolve_from(core.from_tables, outer)

        if core.where is not None:
            self._touch("executor.filter")
            kept = []
            program = self._program_for(core.where, source) if vectorize.vectorize_enabled() else None
            binding = None
            if program is None:
                binding = self._filter_binding(core.where, source) if perf_cache.caching_enabled() and outer is None else None
            if program is not None:
                # compiled column program: the whole predicate runs as a chain
                # of closures with direct row[index] column loads
                evaluator = self.evaluator
                if columnar.returns_boolean(core.where):
                    kept = [row for row in source.rows if program(row, evaluator) is True]
                else:
                    kept = [row for row in source.rows if _predicate_truth(program(row, evaluator))]
            elif binding is not None:
                # bind only the columns the predicate references
                evaluate_predicate = self.evaluator.evaluate_predicate
                where = core.where
                for row in source.rows:
                    context = RowContext({key: row[index] for key, index in binding})
                    if evaluate_predicate(where, context):
                        kept.append(row)
            else:
                for row in source.rows:
                    context = _bind_row(source, row, outer)
                    if self.evaluator.evaluate_predicate(core.where, context):
                        kept.append(row)
            source = source.with_rows(kept)

        has_aggregates = getattr(core, "_has_aggregates", None)
        if has_aggregates is None:
            # pure AST property; memoized on the shared plan node
            has_aggregates = bool(core.group_by) or any(_contains_aggregate(item.expression) for item in core.items)
            try:
                core._has_aggregates = has_aggregates
            except AttributeError:  # pragma: no cover - frozen/slotted nodes
                pass
        if has_aggregates:
            relation = self._execute_aggregation(core, source, outer)
        else:
            relation = self._project(core, source, outer)

        if core.distinct:
            self._touch("executor.distinct")
            seen: set[tuple] = set()
            unique_rows = []
            unique_sources = [] if relation.source_rows is not None else None
            for index, row in enumerate(relation.rows):
                key = tuple(render_value(value) for value in row)
                if key not in seen:
                    seen.add(key)
                    unique_rows.append(row)
                    if unique_sources is not None:
                        unique_sources.append(relation.source_rows[index])
            unique = relation.with_rows(unique_rows)
            unique.source_columns = relation.source_columns
            unique.source_rows = unique_sources
            relation = unique
        return relation

    # -- FROM ----------------------------------------------------------------------------

    def _resolve_from(self, refs: list[ast.TableRef], outer: RowContext | None) -> Relation:
        if not refs:
            # SELECT without FROM: a single empty row so expressions evaluate once.
            return Relation(columns=[], rows=[[]])
        relation = self._resolve_table_ref(refs[0], outer)
        for ref in refs[1:]:
            right = self._resolve_table_ref(ref, outer)
            join_type = ref.join_type or "cross"
            if ref.is_comma_join:
                join_type = "cross"
            self._touch(f"executor.join.{join_type}")
            relation = self._join(relation, right, join_type, ref, outer)
            if len(relation.rows) > MAX_RELATION_ROWS:
                raise EngineHang("join result exceeds the row budget")
        return relation

    def _resolve_table_ref(self, ref: ast.TableRef, outer: RowContext | None) -> Relation:
        if ref.subquery is not None:
            self._touch("executor.derived_table")
            relation = self.execute(ref.subquery, outer)
            qualifier = ref.alias or "subquery"
            return relation.rename(qualifier)
        if ref.function is not None:
            self._touch("executor.table_function")
            context = RowContext(outer=outer)
            values = self.evaluator.evaluate(ref.function, context)
            name = ref.alias or ref.function.name
            if not isinstance(values, list):
                values = [values]
            column_name = ref.function.name if ref.function.name in ("range", "generate_series") else "value"
            if ref.function.name == "generate_series":
                column_name = "generate_series"
            rows = [[value] for value in values]
            return Relation(columns=[(name, column_name), (name, name)] if False else [(name, column_name)], rows=rows)
        if ref.name is None:
            raise DatabaseError("invalid table reference")
        lowered = ref.name.lower()
        if lowered in self._cte_relations:
            self._touch("executor.cte_scan")
            relation = self._cte_relations[lowered]
            qualifier = ref.alias or ref.name
            return Relation(columns=[(qualifier, name) for _, name in relation.columns], rows=relation.rows)
        view = self.database.get_view(ref.name)
        if view is not None:
            self._touch("executor.view_scan")
            relation = self.execute(view.query, outer)
            qualifier = ref.alias or ref.name
            return relation.rename(qualifier)
        table = self.database.get_table(ref.name)
        self._touch("executor.table_scan")
        return Relation.from_table(table, ref.alias or ref.name)

    def _join(self, left: Relation, right: Relation, join_type: str, ref: ast.TableRef, outer: RowContext | None) -> Relation:
        columns = left.columns + right.columns
        combined = Relation(columns=columns, rows=[])

        condition = ref.join_condition
        using_columns = ref.using_columns
        if join_type == "natural":
            left_names = {name.lower() for _, name in left.columns}
            using_columns = [name for _, name in right.columns if name.lower() in left_names]
            join_type = "inner"

        using_pairs: list[tuple[int, int]] | None = None
        condition_program = None
        if vectorize.vectorize_enabled():
            if using_columns:
                # first-match column resolution, mirroring _value_of; a missing
                # column keeps the scalar path so its error surfaces lazily
                # (only when a row pair is actually compared)
                using_pairs = []
                for column in using_columns:
                    left_index = self._index_of(left, column)
                    right_index = self._index_of(right, column)
                    if left_index is None or right_index is None:
                        using_pairs = None
                        break
                    using_pairs.append((left_index, right_index))
            elif condition is not None:
                condition_program = self._program_for(condition, combined)

        def matches(left_row: list[Any], right_row: list[Any]) -> bool:
            if using_pairs is not None:
                for left_index, right_index in using_pairs:
                    if compare_values(left_row[left_index], right_row[right_index]) != 0:
                        return False
                return True
            if using_columns:
                for column in using_columns:
                    left_value = self._value_of(left, left_row, column)
                    right_value = self._value_of(right, right_row, column)
                    if compare_values(left_value, right_value) != 0:
                        return False
                return True
            if condition is None:
                return True
            if condition_program is not None:
                return _predicate_truth(condition_program(left_row + right_row, self.evaluator))
            context = _bind_row(combined, left_row + right_row, outer)
            return self.evaluator.evaluate_predicate(condition, context)

        if join_type in ("cross", "inner", "asof"):
            if not using_columns and condition is None:
                # pure cross product (implicit joins): every pair matches, so
                # skip the per-pair predicate call outright
                combined.rows = [
                    left_row + right_row for left_row in left.rows for right_row in right.rows
                ]
                return combined
            for left_row in left.rows:
                for right_row in right.rows:
                    if matches(left_row, right_row):
                        combined.rows.append(left_row + right_row)
            return combined
        if join_type == "left":
            for left_row in left.rows:
                matched = False
                for right_row in right.rows:
                    if matches(left_row, right_row):
                        combined.rows.append(left_row + right_row)
                        matched = True
                if not matched:
                    combined.rows.append(left_row + [None] * len(right.columns))
            return combined
        if join_type == "right":
            for right_row in right.rows:
                matched = False
                for left_row in left.rows:
                    if matches(left_row, right_row):
                        combined.rows.append(left_row + right_row)
                        matched = True
                if not matched:
                    combined.rows.append([None] * len(left.columns) + right_row)
            return combined
        if join_type == "full":
            matched_right: set[int] = set()
            for left_row in left.rows:
                matched = False
                for right_index, right_row in enumerate(right.rows):
                    if matches(left_row, right_row):
                        combined.rows.append(left_row + right_row)
                        matched = True
                        matched_right.add(right_index)
                if not matched:
                    combined.rows.append(left_row + [None] * len(right.columns))
            for right_index, right_row in enumerate(right.rows):
                if right_index not in matched_right:
                    combined.rows.append([None] * len(left.columns) + right_row)
            return combined
        raise UnsupportedStatementError(f"unsupported join type: {join_type}")

    def _value_of(self, relation: Relation, row: list[Any], column: str) -> Any:
        lowered = column.lower()
        for index, (_, name) in enumerate(relation.columns):
            if name.lower() == lowered:
                return row[index]
        raise CatalogError(f"no such column: {column}")

    @staticmethod
    def _index_of(relation: Relation, column: str) -> int | None:
        """First column index named ``column`` (the :meth:`_value_of` rule)."""
        lowered = column.lower()
        for index, (_, name) in enumerate(relation.columns):
            if name.lower() == lowered:
                return index
        return None

    # -- projection & aggregation -----------------------------------------------------------

    def _expand_items(self, items: list[ast.SelectItem], source: Relation) -> list[tuple[ast.Expression, str]]:
        expanded: list[tuple[ast.Expression, str]] = []
        for item in items:
            if isinstance(item.expression, ast.Star):
                qualifier = item.expression.table
                for (column_qualifier, name) in source.columns:
                    if qualifier is None or (column_qualifier and column_qualifier.lower() == qualifier.lower()):
                        expanded.append((ast.ColumnRef(name=name, table=column_qualifier), name))
            else:
                expanded.append((item.expression, item.alias or _expression_name(item.expression)))
        return expanded

    def _expanded_items(self, core: ast.SelectCore, source: Relation) -> tuple:
        """Memoized :meth:`_expand_items` plus the projected relation shell.

        Star expansion synthesises fresh ColumnRef nodes per call; memoizing
        the expansion per (core, source layout) keeps those nodes stable so
        their compiled programs are reused across executions of the shared
        plan.  Non-star items do not depend on the source at all.  The output
        column list and its vectorization layout ride along in the memo, so
        downstream clauses (ORDER BY, DISTINCT) compiling against the
        projected relation never recompute column positions.

        Returns ``(expanded, columns, layout)`` where ``layout`` is the
        ``(columns_key, positions)`` pair for the projected columns.
        """
        if not vectorize.vectorize_enabled():
            expanded = self._expand_items(core.items, source)
            columns = [(None, name) for _, name in expanded]
            return expanded, columns, None
        if not any(isinstance(item.expression, ast.Star) for item in core.items):
            cached = getattr(core, "_expanded_plain", None)
            if cached is None:
                cached = self._expanded_shell(core, source)
                try:
                    core._expanded_plain = cached
                except AttributeError:  # pragma: no cover - frozen/slotted nodes
                    pass
            return cached
        columns_key, _ = columnar.relation_layout(source)
        cache = getattr(core, "_expanded_by_layout", None)
        if cache is None:
            cache = {}
            try:
                core._expanded_by_layout = cache
            except AttributeError:  # pragma: no cover - frozen/slotted nodes
                return self._expanded_shell(core, source)
        cached = cache.get(columns_key)
        if cached is None:
            cached = self._expanded_shell(core, source)
            cache[columns_key] = cached
        return cached

    def _expanded_shell(self, core: ast.SelectCore, source: Relation) -> tuple:
        expanded = self._expand_items(core.items, source)
        columns = [(None, name) for _, name in expanded]
        layout = (tuple(columns), columnar.column_positions(columns))
        return expanded, columns, layout

    def _project(self, core: ast.SelectCore, source: Relation, outer: RowContext | None) -> Relation:
        self._touch("executor.projection")
        expanded, columns, layout = self._expanded_items(core, source)
        result = Relation(columns=columns, rows=[], source_columns=list(source.columns), source_rows=[])
        if layout is not None:
            result._vec_layout = layout
            source_layout = getattr(source, "_vec_layout", None)
            if source_layout is not None:
                # ORDER BY resolves unprojected columns against source_rows;
                # hand it the source positions instead of a recompute
                result._src_positions = source_layout[1]
        if (perf_cache.caching_enabled() or vectorize.vectorize_enabled()) and outer is None:
            # plain-column projections resolve to source positions once and
            # slice rows directly, skipping per-row binding and evaluation
            indices = self._projection_indices(expanded, source)
            if indices is not None:
                if len(indices) == 1:
                    index = indices[0]
                    result.rows = [[row[index]] for row in source.rows]
                else:
                    getter = itemgetter(*indices)
                    result.rows = [list(getter(row)) for row in source.rows]
                result.source_rows = list(source.rows)
                return result
        if vectorize.vectorize_enabled():
            programs = self._programs_for([expression for expression, _ in expanded], source)
            if programs is not None:
                evaluator = self.evaluator
                result.rows = [[program(row, evaluator) for program in programs] for row in source.rows]
                result.source_rows = list(source.rows)
                return result
        for row in source.rows:
            context = _bind_row(source, row, outer)
            result.rows.append([self.evaluator.evaluate(expression, context) for expression, _ in expanded])
            result.source_rows.append(row)
        return result

    @staticmethod
    def _projection_indices(expanded: list, source: Relation) -> list[int] | None:
        """Source-column positions when every projected item is a ColumnRef.

        Position resolution mirrors the binding-dict semantics of
        :func:`_bind_row` (a later column overwrites an earlier one of the
        same name); anything unresolvable falls back to the evaluator path.
        """
        if not all(type(expression) is ast.ColumnRef for expression, _ in expanded):
            return None
        positions = columnar.relation_layout(source)[1]
        indices: list[int] = []
        for expression, _ in expanded:
            position = positions.get(_ref_binding_key(expression))
            if position is None:
                return None
            indices.append(position)
        return indices

    def _program_for(self, expression: ast.Expression, source: Relation):
        """Compiled column program for ``expression`` over ``source``, or None."""
        columns_key, positions = columnar.relation_layout(source)
        return columnar.expression_program(expression, columns_key, positions, self.dialect)

    def _programs_for(self, expressions: list, source: Relation) -> "list | None":
        """Programs for every expression, or None when any fails to compile.

        All-or-nothing so a clause never mixes compiled and scalar evaluation
        (which could reorder errors and feature touches between items).
        """
        columns_key, positions = columnar.relation_layout(source)
        dialect = self.dialect
        programs = []
        for expression in expressions:
            program = columnar.expression_program(expression, columns_key, positions, dialect)
            if program is None:
                return None
            programs.append(program)
        return programs

    @staticmethod
    def _filter_binding(where: ast.Expression, source: Relation) -> "list[tuple[str, int]] | None":
        """(binding key, column index) pairs covering every column the
        predicate references, or None when the fast path does not apply."""
        refs = _collect_column_refs(where)
        if refs is None:
            return None
        positions = columnar.relation_layout(source)[1]
        binding: dict[str, int] = {}
        for ref in refs:
            key = _ref_binding_key(ref)
            index = positions.get(key)
            if index is None:
                return None
            binding[key] = index
        return list(binding.items())

    def _execute_aggregation(self, core: ast.SelectCore, source: Relation, outer: RowContext | None) -> Relation:
        self._touch("executor.aggregate")
        groups: dict[tuple, list[list[Any]]] = {}
        group_keys: dict[tuple, list[Any]] = {}
        if core.group_by:
            self._touch("executor.group_by")
            programs = self._programs_for(core.group_by, source) if vectorize.vectorize_enabled() else None
            if programs is not None:
                evaluator = self.evaluator
                for row in source.rows:
                    key_values = [program(row, evaluator) for program in programs]
                    key = tuple(render_value(value) for value in key_values)
                    groups.setdefault(key, []).append(row)
                    group_keys[key] = key_values
            else:
                for row in source.rows:
                    context = _bind_row(source, row, outer)
                    key_values = [self.evaluator.evaluate(expression, context) for expression in core.group_by]
                    key = tuple(render_value(value) for value in key_values)
                    groups.setdefault(key, []).append(row)
                    group_keys[key] = key_values
        else:
            groups[("__all__",)] = list(source.rows)
            group_keys[("__all__",)] = []

        expanded, columns, layout = self._expanded_items(core, source)
        result = Relation(columns=columns, rows=[])
        if layout is not None:
            result._vec_layout = layout

        for key, rows in groups.items():
            if not rows and not core.group_by:
                rows = []
            representative = rows[0] if rows else [None] * len(source.columns)
            context = _bind_row(source, representative, outer)
            output_row = [
                self._evaluate_with_aggregates(expression, rows, source, context, outer) for expression, _ in expanded
            ]
            if core.having is not None:
                having_value = self._evaluate_with_aggregates(core.having, rows, source, context, outer)
                if having_value in (None, False, 0):
                    continue
            result.rows.append(output_row)
        return result

    def _evaluate_with_aggregates(
        self,
        expression: ast.Expression,
        group_rows: list[list[Any]],
        source: Relation,
        representative: RowContext,
        outer: RowContext | None,
    ) -> Any:
        if isinstance(expression, ast.FunctionCall) and is_aggregate(expression.name):
            self._touch(f"aggregate.{expression.name}")
            if expression.is_star or not expression.args:
                values = [1] * len(group_rows)
                return evaluate_aggregate(expression.name, values, self.dialect, distinct=expression.distinct, is_star=True)
            program = self._program_for(expression.args[0], source) if vectorize.vectorize_enabled() else None
            if program is not None:
                evaluator = self.evaluator
                values = [program(row, evaluator) for row in group_rows]
            else:
                values = []
                for row in group_rows:
                    context = _bind_row(source, row, outer)
                    values.append(self.evaluator.evaluate(expression.args[0], context))
            return evaluate_aggregate(expression.name, values, self.dialect, distinct=expression.distinct)
        if isinstance(expression, ast.BinaryOp):
            left = self._evaluate_with_aggregates(expression.left, group_rows, source, representative, outer)
            right = self._evaluate_with_aggregates(expression.right, group_rows, source, representative, outer)
            synthetic = ast.BinaryOp(operator=expression.operator, left=ast.Literal(left), right=ast.Literal(right))
            return self.evaluator.evaluate(synthetic, representative)
        if isinstance(expression, ast.UnaryOp):
            operand = self._evaluate_with_aggregates(expression.operand, group_rows, source, representative, outer)
            return self.evaluator.evaluate(ast.UnaryOp(operator=expression.operator, operand=ast.Literal(operand)), representative)
        if isinstance(expression, ast.Cast):
            operand = self._evaluate_with_aggregates(expression.operand, group_rows, source, representative, outer)
            return self.evaluator.evaluate(
                ast.Cast(operand=ast.Literal(operand), type_name=expression.type_name, via_double_colon=expression.via_double_colon),
                representative,
            )
        if isinstance(expression, ast.FunctionCall):
            arguments = [
                ast.Literal(self._evaluate_with_aggregates(argument, group_rows, source, representative, outer))
                for argument in expression.args
            ]
            return self.evaluator.evaluate(ast.FunctionCall(name=expression.name, args=arguments), representative)
        return self.evaluator.evaluate(expression, representative)

    # -- compound / order / limit ---------------------------------------------------------------

    def _apply_compound(self, operator: str, left: Relation, right: Relation) -> Relation:
        self._touch(f"executor.compound.{operator.replace(' ', '_').lower()}")
        if left.columns and right.columns and len(left.columns) != len(right.columns):
            raise DatabaseError("SELECTs to the left and right of a set operation do not have the same number of result columns")
        columns = left.columns or right.columns
        if operator == "UNION ALL":
            return Relation(columns=columns, rows=left.rows + right.rows)
        left_keys = [tuple(render_value(value) for value in row) for row in left.rows]
        right_keys = {tuple(render_value(value) for value in row) for row in right.rows}
        if operator == "UNION":
            seen: set[tuple] = set()
            rows = []
            for row in left.rows + right.rows:
                key = tuple(render_value(value) for value in row)
                if key not in seen:
                    seen.add(key)
                    rows.append(row)
            return Relation(columns=columns, rows=rows)
        if operator in ("INTERSECT", "INTERSECT ALL"):
            rows = []
            seen = set()
            for key, row in zip(left_keys, left.rows):
                if key in right_keys and (operator == "INTERSECT ALL" or key not in seen):
                    seen.add(key)
                    rows.append(row)
            return Relation(columns=columns, rows=rows)
        if operator in ("EXCEPT", "EXCEPT ALL"):
            rows = []
            seen = set()
            for key, row in zip(left_keys, left.rows):
                if key not in right_keys and (operator == "EXCEPT ALL" or key not in seen):
                    seen.add(key)
                    rows.append(row)
            return Relation(columns=columns, rows=rows)
        raise UnsupportedStatementError(f"unsupported compound operator: {operator}")

    def _order_by_plan(
        self, relation: Relation, order_by: list[ast.OrderItem], source_rows
    ) -> "list[tuple[str, int]] | None":
        """Per-item (where, index) value extractors when every ORDER BY item is
        a plain column reference or output position; None otherwise.

        ``where`` is ``"row"`` (output row) or ``"src"`` (pre-projection source
        row).  Output columns are resolved after source columns and therefore
        win on name clashes, mirroring the binding order of the general path.
        """
        positions: dict[str, tuple[str, int]] = {}
        if source_rows is not None and relation.source_columns is not None:
            src_positions = getattr(relation, "_src_positions", None)
            if src_positions is None:
                src_positions = _column_positions(relation.source_columns)
            for where, index in src_positions.items():
                positions[where] = ("src", index)
        for where, index in columnar.relation_layout(relation)[1].items():
            positions[where] = ("row", index)
        plan: list[tuple[str, int]] = []
        for item in order_by:
            expression = item.expression
            if isinstance(expression, ast.Literal) and isinstance(expression.value, int):
                plan.append(("pos", expression.value - 1))
                continue
            if type(expression) is ast.ColumnRef:
                extractor = positions.get(_ref_binding_key(expression))
                if extractor is not None:
                    plan.append(extractor)
                    continue
            return None
        return plan

    def _apply_order_by(self, relation: Relation, order_by: list[ast.OrderItem], outer: RowContext | None) -> Relation:
        self._touch("executor.order_by")
        source_rows = relation.source_rows if relation.source_rows is not None and len(relation.source_rows) == len(relation.rows) else None
        fast = (perf_cache.caching_enabled() or vectorize.vectorize_enabled()) and outer is None
        plan = self._order_by_plan(relation, order_by, source_rows) if fast else None
        if plan is not None and vectorize.vectorize_enabled():
            return self._apply_order_by_columnar(relation, order_by, plan, source_rows)
        if plan is None:
            # binding keys are computed once per ORDER BY instead of once per row
            output_keys = _binding_keys(relation.columns)
            source_keys = _binding_keys(relation.source_columns) if source_rows is not None and relation.source_columns is not None else None

        def sort_key_for(indexed_row: tuple[int, list[Any]]) -> list[tuple]:
            index, row = indexed_row
            if plan is not None:
                context = None
            else:
                values: dict[str, Any] = {}
                # bind the pre-projection source columns first so ORDER BY can
                # reference columns that were not selected; output columns are
                # bound afterwards and therefore win on name clashes.
                if source_keys is not None:
                    for (bare, qualified), value in zip(source_keys, source_rows[index]):
                        values[bare] = value
                        if qualified:
                            values[qualified] = value
                for (bare, qualified), value in zip(output_keys, row):
                    values[bare] = value
                    if qualified:
                        values[qualified] = value
                context = RowContext(values, outer=outer)
            keys: list[tuple] = []
            for item_index, item in enumerate(order_by):
                if plan is not None:
                    where, position = plan[item_index]
                    if where == "row":
                        value = row[position]
                    elif where == "src":
                        value = source_rows[index][position]
                    else:
                        value = row[position] if 0 <= position < len(row) else None
                elif isinstance(item.expression, ast.Literal) and isinstance(item.expression.value, int):
                    position = item.expression.value - 1
                    value = row[position] if 0 <= position < len(row) else None
                else:
                    value = self.evaluator.evaluate(item.expression, context)
                nulls = item.nulls
                if nulls is None:
                    default_first = self.dialect.null_order is NullOrder.NULLS_FIRST
                    if item.descending:
                        default_first = not default_first
                    nulls = "first" if default_first else "last"
                is_null = value is None
                null_rank = 0 if (is_null and nulls == "first") else (2 if is_null else 1)
                if isinstance(value, bool):
                    sortable: Any = (0, float(value))
                elif isinstance(value, (int, float)):
                    sortable = (0, float(value))
                elif value is None:
                    sortable = (0, 0.0)
                elif isinstance(value, (list, dict)):
                    sortable = (1, render_value(value))
                else:
                    sortable = (1, str(value))
                if item.descending and not is_null:
                    if isinstance(sortable[1], float):
                        sortable = (-sortable[0], -sortable[1])
                    else:
                        sortable = (-sortable[0], _Reversed(sortable[1]))
                keys.append((null_rank, sortable))
            return keys

        ordered = [row for _index, row in sorted(enumerate(relation.rows), key=sort_key_for)]
        return relation.with_rows(ordered)

    def _apply_order_by_columnar(
        self,
        relation: Relation,
        order_by: list[ast.OrderItem],
        plan: list[tuple[str, int]],
        source_rows,
    ) -> Relation:
        """ORDER BY as whole-column passes over the planned key columns.

        The per-item decisions (null placement, descending) are hoisted out of
        the row loop; each item's sort keys are built over one column slice,
        then rows are reordered once via an index sort.  Key construction is
        identical to :meth:`_apply_order_by`'s ``sort_key_for`` so the ordering
        is byte-identical to the scalar path.
        """
        rows = relation.rows
        if len(plan) == 1 and rows:
            ordered = self._order_by_single_key(relation, order_by[0], plan[0], source_rows)
            if ordered is not None:
                return ordered
        key_columns: list[list[tuple]] = []
        for (where, position), item in zip(plan, order_by):
            if where == "row":
                values = relation.column_values(position)
            elif where == "src":
                values = [source_row[position] for source_row in source_rows]
            else:
                values = [row[position] if 0 <= position < len(row) else None for row in rows]
            nulls = item.nulls
            if nulls is None:
                default_first = self.dialect.null_order is NullOrder.NULLS_FIRST
                if item.descending:
                    default_first = not default_first
                nulls = "first" if default_first else "last"
            descending = item.descending
            # the null-rank and direction decisions are per item, the type
            # dispatch is exact (engine values are plain int/float/bool/str/
            # list/dict), and the two loop variants keep the per-value work to
            # one type check and one tuple build — key for key identical to
            # the scalar ``sort_key_for``
            null_key = (0 if nulls == "first" else 2, (0, 0.0))
            keys: list[tuple] = []
            append = keys.append
            if descending:
                for value in values:
                    if value is None:
                        append(null_key)
                        continue
                    kind = type(value)
                    if kind is int or kind is float or kind is bool:
                        append((1, (0, -float(value))))
                    elif kind is list or kind is dict:
                        append((1, (-1, _Reversed(render_value(value)))))
                    else:
                        append((1, (-1, _Reversed(str(value)))))
            else:
                for value in values:
                    if value is None:
                        append(null_key)
                        continue
                    kind = type(value)
                    if kind is int or kind is float or kind is bool:
                        append((1, (0, float(value))))
                    elif kind is list or kind is dict:
                        append((1, (1, render_value(value))))
                    else:
                        append((1, (1, str(value))))
            key_columns.append(keys)
        if len(key_columns) == 1:
            # single key: sort on the bare keys (same order as 1-tuples)
            order = sorted(range(len(rows)), key=key_columns[0].__getitem__)
        else:
            row_keys = list(zip(*key_columns))
            order = sorted(range(len(rows)), key=row_keys.__getitem__)
        return relation.with_rows([rows[index] for index in order])

    def _order_by_single_key(
        self,
        relation: Relation,
        item: ast.OrderItem,
        placement: tuple[str, int],
        source_rows,
    ) -> Relation | None:
        """Single-key ORDER BY over a uniformly-typed column, or None.

        When every non-null key value is exactly ``int`` (so floats and their
        NaNs, and ``bool``, fall back) or exactly ``str``, the nested tuple
        keys of the generic pass collapse to the bare float/str keys — same
        ordering, since all non-null keys share one rank and one kind.  Ints
        still sort by their ``float()`` image (ties between distinct huge
        ints included) and nulls keep their first/last block placement, so
        the order stays byte-identical to the scalar path.
        """
        rows = relation.rows
        where, position = placement
        if where == "row":
            values = relation.column_values(position)
        elif where == "src":
            values = [source_row[position] for source_row in source_rows]
        else:
            values = [row[position] if 0 <= position < len(row) else None for row in rows]
        uniform: Any = None
        for value in values:
            kind = type(value)
            if kind is int or kind is str:
                if uniform is None:
                    uniform = kind
                elif kind is not uniform:
                    return None
            elif value is not None:
                return None
        if uniform is None:  # all-null column: nothing to reorder cheaply
            return None
        if uniform is int:
            keys = [0.0 if value is None else float(value) for value in values]
        else:
            keys = values
        descending = item.descending
        if None not in values:
            order = sorted(range(len(rows)), key=keys.__getitem__, reverse=descending)
        else:
            nulls = item.nulls
            if nulls is None:
                default_first = self.dialect.null_order is NullOrder.NULLS_FIRST
                if descending:
                    default_first = not default_first
                nulls = "first" if default_first else "last"
            null_positions = []
            non_null = []
            for index, value in enumerate(values):
                (null_positions if value is None else non_null).append(index)
            non_null.sort(key=keys.__getitem__, reverse=descending)
            order = null_positions + non_null if nulls == "first" else non_null + null_positions
        return relation.with_rows([rows[index] for index in order])

    def _apply_limit(self, relation: Relation, statement: ast.SelectStatement, outer: RowContext | None) -> Relation:
        if statement.limit is None and statement.offset is None:
            return relation
        self._touch("executor.limit")
        context = RowContext(outer=outer)
        offset = 0
        if statement.offset is not None:
            offset_value = self.evaluator.evaluate(statement.offset, context)
            offset = int(offset_value) if offset_value is not None else 0
        rows = relation.rows[offset:]
        if statement.limit is not None:
            limit_value = self.evaluator.evaluate(statement.limit, context)
            if limit_value is not None:
                rows = rows[: int(limit_value)]
        return relation.with_rows(rows)


class _Reversed:
    """Wrapper inverting comparison order for DESC sorts over strings."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return self.value > other.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and self.value == other.value
