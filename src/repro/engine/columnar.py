"""Compiled column programs: the engine's vectorized expression path.

The scalar evaluator (:mod:`repro.engine.expressions`) resolves every column
reference through a per-row ``RowContext`` dict and dispatches per AST node on
every row.  For the executor's whole-column passes — WHERE filtering,
projection, DISTINCT keys, aggregation grouping, ORDER-BY key extraction, and
JOIN conditions — all of that work is invariant across rows: the column an
expression references sits at the same index in every row of a materialised
relation, and the dialect-dependent decisions (division semantics, ``||``
meaning, LIKE case folding, cast strictness) are fixed per plan.

:func:`compile_expression` therefore walks an expression once per
``(dialect, relation layout)`` and produces a chain of plain closures — a
*column program* ``fn(row, ev) -> value`` — in which each ``ColumnRef`` has
become a direct ``row[index]`` load.  The per-row cost collapses to the
closure calls themselves; no context dict is built and no dispatch happens.

Byte-identity with the scalar path is the contract (the differential harness
pins it; see ``tests/test_differential.py`` and ``tests/test_property_based.py``):

* programs replicate the evaluator's semantics *verbatim*, including the
  feature-coverage touches (``ev._touch(...)``) in the same order and under
  the same conditions, and the same operand evaluation order — so errors
  raised mid-expression surface identically;
* data-dependent semantics (arithmetic, ``||``, row-value comparison, IS
  equality) run through the shared evaluator helpers rather than re-derived
  logic;
* any construct a program cannot cover — subqueries, ``Star``, unresolvable
  column references, unsupported operators/types — makes compilation return
  ``None`` and the *whole clause* falls back to the scalar path, so evaluation
  order never mixes.

Programs are memoized on the AST node (plans are shared process-wide through
the statement cache, so one compile serves every execution of a statement
against relations with the same column layout).
"""

from __future__ import annotations

import operator as operator_module
from typing import Any, Callable

from repro.engine import ast_nodes as ast
from repro.engine import expressions as expr
from repro.engine.values import cast_value, compare_values
from repro.errors import ConversionError, UnsupportedTypeError

#: A compiled column program: ``fn(row, ev) -> value`` where ``row`` is one
#: row list of the relation the program was compiled against and ``ev`` is the
#: session's :class:`~repro.engine.expressions.ExpressionEvaluator` (passed
#: per call so programs hold no session state and stay shareable).
Program = Callable[[list, Any], Any]

#: Memo entry marking an expression that cannot be compiled for a layout.
_UNSUPPORTED = object()

#: Native Python comparators for the exact-type fast paths in compiled
#: comparison programs.  Valid only for int/int and str/str operands, where
#: ``compare_values`` itself reduces to the native comparison (floats are
#: excluded: NaN ordering differs between Python operators and the three-way
#: compare's fallthrough).
_PY_COMPARE: dict[str, Callable[[Any, Any], bool]] = {
    "=": operator_module.eq,
    "!=": operator_module.ne,
    "<": operator_module.lt,
    ">": operator_module.gt,
    "<=": operator_module.le,
    ">=": operator_module.ge,
}


def column_positions(columns: list[tuple[str | None, str]]) -> dict[str, int]:
    """Binding-key -> column index, with ``_bind_row``'s overwrite order."""
    positions: dict[str, int] = {}
    for index, (qualifier, name) in enumerate(columns):
        positions[name.lower()] = index
        if qualifier:
            positions[f"{qualifier}.{name}".lower()] = index
    return positions


def ref_binding_key(ref: ast.ColumnRef) -> str:
    return f"{ref.table}.{ref.name}".lower() if ref.table else ref.name.lower()


def relation_layout(relation: Any) -> tuple[tuple, dict[str, int]]:
    """``(columns key, positions)`` for a relation, cached on the instance.

    A relation's columns are fixed once it is materialised, so the layout is
    computed once; relations with equal column lists share program memo
    entries (the key is the column tuple, not the relation identity).
    """
    layout = getattr(relation, "_vec_layout", None)
    if layout is None:
        columns = relation.columns
        layout = (tuple(columns), column_positions(columns))
        relation._vec_layout = layout
    return layout


# -- compilation ------------------------------------------------------------------


def compile_expression(
    node: ast.Expression, positions: dict[str, int], dialect: Any
) -> Program | None:
    """Compile ``node`` against a column layout, or None when not coverable."""
    node_type = type(node)

    if node_type is ast.Literal:
        value = node.value
        return lambda row, ev: value

    if node_type is ast.ColumnRef:
        index = positions.get(ref_binding_key(node))
        if index is None:
            # unresolvable here (correlated/outer reference, typo): the scalar
            # path owns the lookup chain and its error messages
            return None
        return lambda row, ev, _i=index: row[_i]

    if node_type is ast.BinaryOp:
        return _compile_binaryop(node, positions, dialect)

    if node_type is ast.UnaryOp:
        operand = compile_expression(node.operand, positions, dialect)
        if operand is None:
            return None
        operator = node.operator
        if operator == "NOT":

            def negate(row: list, ev: Any, _operand=operand) -> Any:
                value = _operand(row, ev)
                if value is None:
                    return None
                return not bool(value)

            return negate
        if operator == "-":

            def minus(row: list, ev: Any, _operand=operand) -> Any:
                number = ev._numeric(_operand(row, ev))
                return None if number is None else -number

            return minus
        if operator == "~":

            def invert(row: list, ev: Any, _operand=operand) -> Any:
                number = ev._numeric(_operand(row, ev))
                return None if number is None else ~int(number)

            return invert
        return None  # scalar path raises UnsupportedOperatorError

    if node_type is ast.FunctionCall:
        name = node.name
        feature = expr._FUNCTION_FEATURES.get(name)
        if feature is None:
            feature = expr._FUNCTION_FEATURES[name] = "function." + name
        args = [compile_expression(arg, positions, dialect) for arg in node.args]
        if any(arg is None for arg in args):
            return None

        def call(row: list, ev: Any, _args=args, _name=name, _feature=feature) -> Any:
            ev._touch(_feature)
            return ev.functions.call_scalar(_name, [arg(row, ev) for arg in _args])

        return call

    if node_type is ast.Cast:
        # the scalar path raises for :: where unsupported (before evaluating
        # the operand) and for unknown types (after); bail on both so the
        # whole clause keeps the scalar error ordering
        if node.via_double_colon and not dialect.supports_double_colon_cast:
            return None
        base = node.type_name.split("(")[0].strip().upper()
        if not dialect.supports_type(base) and base not in ("INTEGER", "TEXT", "REAL"):
            return None
        operand = compile_expression(node.operand, positions, dialect)
        if operand is None:
            return None
        type_name = node.type_name
        strict = dialect.strict_types
        accepts_integers = dialect.boolean_accepts_integers

        def cast(row: list, ev: Any, _operand=operand) -> Any:
            ev._touch("operator.cast")
            value = _operand(row, ev)
            try:
                return cast_value(value, type_name, strict=strict, boolean_accepts_integers=accepts_integers)
            except UnsupportedTypeError:
                raise
            except ConversionError:
                if strict:
                    raise
                return value

        return cast

    if node_type is ast.CaseExpression:
        operand = None
        if node.operand is not None:
            operand = compile_expression(node.operand, positions, dialect)
            if operand is None:
                return None
        whens = []
        for condition, result in node.whens:
            compiled_condition = compile_expression(condition, positions, dialect)
            compiled_result = compile_expression(result, positions, dialect)
            if compiled_condition is None or compiled_result is None:
                return None
            whens.append((compiled_condition, compiled_result))
        default = None
        if node.default is not None:
            default = compile_expression(node.default, positions, dialect)
            if default is None:
                return None
        truth = expr._predicate_truth

        def case(row: list, ev: Any, _operand=operand, _whens=whens, _default=default) -> Any:
            ev._touch("expression.case")
            if _operand is not None:
                subject = _operand(row, ev)
                for condition, result in _whens:
                    if compare_values(subject, condition(row, ev)) == 0:
                        return result(row, ev)
            else:
                for condition, result in _whens:
                    if truth(condition(row, ev)):
                        return result(row, ev)
            if _default is not None:
                return _default(row, ev)
            return None

        return case

    if node_type is ast.InExpression:
        if node.subquery is not None:
            return None
        operand = compile_expression(node.operand, positions, dialect)
        if operand is None:
            return None
        items = [compile_expression(item, positions, dialect) for item in node.items]
        if any(item is None for item in items):
            return None
        negated = node.negated

        def contains(row: list, ev: Any, _operand=operand, _items=items) -> Any:
            ev._touch("expression.in")
            value = _operand(row, ev)
            candidates = [item(row, ev) for item in _items]
            if value is None:
                return None
            saw_null = False
            for candidate in candidates:
                if candidate is None:
                    saw_null = True
                    continue
                if compare_values(value, candidate) == 0:
                    return not negated
            if saw_null:
                return None
            return negated

        return contains

    if node_type is ast.BetweenExpression:
        operand = compile_expression(node.operand, positions, dialect)
        low = compile_expression(node.low, positions, dialect)
        high = compile_expression(node.high, positions, dialect)
        if operand is None or low is None or high is None:
            return None
        negated = node.negated

        def between(row: list, ev: Any, _operand=operand, _low=low, _high=high) -> Any:
            ev._touch("expression.between")
            value = _operand(row, ev)
            low_value = _low(row, ev)
            high_value = _high(row, ev)
            if value is None or low_value is None or high_value is None:
                return None
            inside = compare_values(value, low_value) >= 0 and compare_values(value, high_value) <= 0
            return inside != negated

        return between

    if node_type is ast.LikeExpression:
        operand = compile_expression(node.operand, positions, dialect)
        pattern = compile_expression(node.pattern, positions, dialect)
        if operand is None or pattern is None:
            return None
        case_insensitive = node.case_insensitive or dialect.name in ("mysql", "sqlite")
        negated = node.negated
        like_regex = expr._like_regex

        def like(row: list, ev: Any, _operand=operand, _pattern=pattern) -> Any:
            ev._touch("expression.like")
            value = _operand(row, ev)
            pattern_value = _pattern(row, ev)
            if value is None or pattern_value is None:
                return None
            matched = like_regex(str(pattern_value), case_insensitive).match(str(value)) is not None
            return matched != negated

        return like

    if node_type is ast.IsNullExpression:
        operand = compile_expression(node.operand, positions, dialect)
        if operand is None:
            return None
        negated = node.negated
        return lambda row, ev, _operand=operand: (_operand(row, ev) is None) != negated

    if node_type is ast.RowValue:
        items = [compile_expression(item, positions, dialect) for item in node.items]
        if any(item is None for item in items):
            return None
        return lambda row, ev, _items=items: tuple(item(row, ev) for item in _items)

    if node_type is ast.ListLiteral:
        items = [compile_expression(item, positions, dialect) for item in node.items]
        if any(item is None for item in items):
            return None

        def list_literal(row: list, ev: Any, _items=items) -> Any:
            ev._touch("type.list")
            return [item(row, ev) for item in _items]

        return list_literal

    if node_type is ast.StructLiteral:
        pairs = [(key, compile_expression(value, positions, dialect)) for key, value in node.items]
        if any(value is None for _, value in pairs):
            return None

        def struct_literal(row: list, ev: Any, _pairs=pairs) -> Any:
            ev._touch("type.struct")
            return {key: value(row, ev) for key, value in _pairs}

        return struct_literal

    # Star, Exists, ScalarSubquery, unknown node types: scalar path only
    return None


def _compile_binaryop(node: ast.BinaryOp, positions: dict[str, int], dialect: Any) -> Program | None:
    left = compile_expression(node.left, positions, dialect)
    right = compile_expression(node.right, positions, dialect)
    if left is None or right is None:
        return None
    operator = node.operator
    feature = expr._OPERATOR_FEATURES.get(operator)
    if feature is None:
        feature = expr._OPERATOR_FEATURES[operator] = "operator." + operator

    verdict = expr._COMPARISON_VERDICTS.get(operator)
    if verdict is not None:
        # exact-type int/int and str/str comparisons dominate predicates; for
        # those ``compare_values`` reduces to the native Python comparison
        # (its own fast paths), so the closure answers directly and only falls
        # through to the general three-way compare for mixed or exotic types
        py_compare = _PY_COMPARE.get(operator)

        if (
            py_compare is not None
            and type(node.left) is ast.ColumnRef
            and type(node.right) is ast.Literal
            and type(node.right.value) in (int, str)
        ):
            # `column <op> literal` with an int/str literal: inline the column
            # load and pin the literal, so the common predicate shape runs
            # without the two operand-closure calls.  Same touch, same
            # fallback chain — the literal is never a tuple, and ``bool`` row
            # values miss the exact-type check just like the generic closure.
            index = positions.get(ref_binding_key(node.left))
            if index is not None:
                literal = node.right.value

                def column_literal_comparison(
                    row: list,
                    ev: Any,
                    _index=index,
                    _literal=literal,
                    _literal_type=type(literal),
                    _feature=feature,
                    _operator=operator,
                    _py=py_compare,
                    _verdict=verdict,
                    _compare=compare_values,
                ) -> Any:
                    ev._touch(_feature)
                    left_value = row[_index]
                    if type(left_value) is _literal_type:
                        return _py(left_value, _literal)
                    if isinstance(left_value, tuple):
                        return ev._row_value_comparison(_operator, left_value, _literal)
                    result = _compare(left_value, _literal)
                    if result is None:
                        return None
                    return _verdict(result)

                return column_literal_comparison

        if (
            py_compare is not None
            and type(node.left) is ast.ColumnRef
            and type(node.right) is ast.ColumnRef
        ):
            # `column <op> column` — the shape implicit-join predicates take
            # after the cross product.  Both loads inline; exact-type int/int
            # and str/str pairs answer natively (bool misses the check, same
            # as the generic closure), everything else re-joins the generic
            # fallback chain.
            left_index = positions.get(ref_binding_key(node.left))
            right_index = positions.get(ref_binding_key(node.right))
            if left_index is not None and right_index is not None:

                def column_column_comparison(
                    row: list,
                    ev: Any,
                    _li=left_index,
                    _ri=right_index,
                    _feature=feature,
                    _operator=operator,
                    _py=py_compare,
                    _verdict=verdict,
                    _compare=compare_values,
                ) -> Any:
                    ev._touch(_feature)
                    left_value = row[_li]
                    right_value = row[_ri]
                    left_type = type(left_value)
                    if left_type is type(right_value) and (left_type is int or left_type is str):
                        return _py(left_value, right_value)
                    if isinstance(left_value, tuple) or isinstance(right_value, tuple):
                        return ev._row_value_comparison(_operator, left_value, right_value)
                    result = _compare(left_value, right_value)
                    if result is None:
                        return None
                    return _verdict(result)

                return column_column_comparison

        def comparison(
            row: list,
            ev: Any,
            _left=left,
            _right=right,
            _feature=feature,
            _operator=operator,
            _py=py_compare,
            _verdict=verdict,
            _compare=compare_values,
        ) -> Any:
            ev._touch(_feature)
            left_value = _left(row, ev)
            right_value = _right(row, ev)
            left_type = type(left_value)
            right_type = type(right_value)
            if _py is not None and (
                (left_type is int and right_type is int) or (left_type is str and right_type is str)
            ):
                return _py(left_value, right_value)
            if isinstance(left_value, tuple) or isinstance(right_value, tuple):
                return ev._row_value_comparison(_operator, left_value, right_value)
            result = _compare(left_value, right_value)
            if result is None:
                return None
            return _verdict(result)

        return comparison

    if operator in expr._LOGICAL_OPERATORS:
        as_bool = expr._as_bool
        if operator == "AND":

            def logical_and(row: list, ev: Any, _left=left, _right=right) -> Any:
                ev._touch(feature)
                left_bool = as_bool(_left(row, ev))
                right_bool = as_bool(_right(row, ev))
                if left_bool is False or right_bool is False:
                    return False
                if left_bool is None or right_bool is None:
                    return None
                return True

            return logical_and

        def logical_or(row: list, ev: Any, _left=left, _right=right) -> Any:
            ev._touch(feature)
            left_bool = as_bool(_left(row, ev))
            right_bool = as_bool(_right(row, ev))
            if left_bool is True or right_bool is True:
                return True
            if left_bool is None or right_bool is None:
                return None
            return False

        return logical_or

    if operator in expr._ARITHMETIC_OPERATORS:

        def arithmetic(row: list, ev: Any, _left=left, _right=right) -> Any:
            ev._touch(feature)
            return ev._arithmetic(operator, _left(row, ev), _right(row, ev))

        return arithmetic

    if operator == "||":

        def concat(row: list, ev: Any, _left=left, _right=right) -> Any:
            ev._touch(feature)
            return ev._concat_or_or(_left(row, ev), _right(row, ev))

        return concat

    if operator in ("IS", "IS NOT"):
        want_equal = operator == "IS"

        def is_op(row: list, ev: Any, _left=left, _right=right) -> Any:
            ev._touch(feature)
            equal = ev._is_equal(_left(row, ev), _right(row, ev))
            return equal if want_equal else not equal

        return is_op

    if operator in ("IS DISTINCT FROM", "IS NOT DISTINCT FROM"):
        want_distinct = operator == "IS DISTINCT FROM"

        def distinct_op(row: list, ev: Any, _left=left, _right=right) -> Any:
            ev._touch(feature)
            equal = ev._is_equal(_left(row, ev), _right(row, ev))
            return (not equal) if want_distinct else equal

        return distinct_op

    return None  # scalar path raises UnsupportedOperatorError


#: Root node types whose programs yield only True/False/None, so WHERE can
#: test ``result is True`` instead of calling ``_predicate_truth`` per row.
_BOOLEAN_NODE_TYPES = (
    ast.LikeExpression,
    ast.BetweenExpression,
    ast.InExpression,
    ast.IsNullExpression,
)

_BOOLEAN_OPERATORS = frozenset(
    set(expr._COMPARISON_VERDICTS)
    | expr._LOGICAL_OPERATORS
    | {"IS", "IS NOT", "IS DISTINCT FROM", "IS NOT DISTINCT FROM"}
)


def returns_boolean(node: ast.Expression) -> bool:
    node_type = type(node)
    if node_type in _BOOLEAN_NODE_TYPES:
        return True
    if node_type is ast.BinaryOp:
        return node.operator in _BOOLEAN_OPERATORS
    if node_type is ast.UnaryOp:
        return node.operator == "NOT"
    return False


# -- memoized entry points --------------------------------------------------------


def expression_program(
    node: ast.Expression, columns_key: tuple, positions: dict[str, int], dialect: Any
) -> Program | None:
    """Memoized :func:`compile_expression` — one compile per (dialect, layout).

    The memo lives on the AST node because plans are shared process-wide
    through the statement cache; concurrent workers may race on the dict set,
    which is benign (both compute the same program).
    """
    cache = getattr(node, "_vec_programs", None)
    if cache is None:
        cache = {}
        try:
            node._vec_programs = cache
        except AttributeError:  # pragma: no cover - frozen/slotted nodes
            return compile_expression(node, positions, dialect)
    key = (dialect.name, columns_key)
    program = cache.get(key)
    if program is None:
        program = compile_expression(node, positions, dialect)
        cache[key] = program if program is not None else _UNSUPPORTED
        return program
    return None if program is _UNSUPPORTED else program
