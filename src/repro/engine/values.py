"""SQL value model: types, coercion, comparison, and rendering.

MiniDB represents SQL values with plain Python objects (``None`` for NULL,
``bool``, ``int``, ``float``, ``str``, ``list`` for DuckDB-style LIST values,
``dict`` for STRUCT values).  This module centralises the type rules so the
expression evaluator, the storage layer, and the result renderer agree:

* :func:`sql_type_of` maps a Python value onto a :class:`SQLType`,
* :func:`coerce_to_declared` applies declared-column-type coercion (strict
  dialects) or passes values through unchanged (SQLite dynamic typing),
* :func:`compare_values` implements SQL comparison including NULL propagation
  and mixed numeric/text ordering,
* :func:`render_value` renders a value the way the Python DB connectors the
  paper used do (which is what SQuaLity compares against).
"""

from __future__ import annotations

import enum
import math
from typing import Any

from repro.errors import ConversionError, UnsupportedTypeError


class SQLType(enum.Enum):
    """Runtime SQL types distinguished by MiniDB."""

    NULL = "NULL"
    INTEGER = "INTEGER"
    FLOAT = "FLOAT"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"
    LIST = "LIST"
    STRUCT = "STRUCT"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Declared type name -> canonical runtime type.  Used when coercing inserted
#: values on strict-typing dialects and by ``typeof``/``pg_typeof``.
_DECLARED_TYPE_MAP: dict[str, SQLType] = {
    "INT": SQLType.INTEGER,
    "INTEGER": SQLType.INTEGER,
    "SMALLINT": SQLType.INTEGER,
    "BIGINT": SQLType.INTEGER,
    "TINYINT": SQLType.INTEGER,
    "MEDIUMINT": SQLType.INTEGER,
    "HUGEINT": SQLType.INTEGER,
    "INT2": SQLType.INTEGER,
    "INT4": SQLType.INTEGER,
    "INT8": SQLType.INTEGER,
    "UTINYINT": SQLType.INTEGER,
    "USMALLINT": SQLType.INTEGER,
    "UINTEGER": SQLType.INTEGER,
    "UBIGINT": SQLType.INTEGER,
    "SERIAL": SQLType.INTEGER,
    "BIGSERIAL": SQLType.INTEGER,
    "REAL": SQLType.FLOAT,
    "FLOAT": SQLType.FLOAT,
    "FLOAT4": SQLType.FLOAT,
    "FLOAT8": SQLType.FLOAT,
    "DOUBLE": SQLType.FLOAT,
    "NUMERIC": SQLType.FLOAT,
    "DECIMAL": SQLType.FLOAT,
    "CHAR": SQLType.TEXT,
    "VARCHAR": SQLType.TEXT,
    "TEXT": SQLType.TEXT,
    "CLOB": SQLType.TEXT,
    "STRING": SQLType.TEXT,
    "NAME": SQLType.TEXT,
    "TINYTEXT": SQLType.TEXT,
    "MEDIUMTEXT": SQLType.TEXT,
    "LONGTEXT": SQLType.TEXT,
    "DATE": SQLType.TEXT,
    "TIME": SQLType.TEXT,
    "DATETIME": SQLType.TEXT,
    "TIMESTAMP": SQLType.TEXT,
    "TIMESTAMPTZ": SQLType.TEXT,
    "INTERVAL": SQLType.TEXT,
    "UUID": SQLType.TEXT,
    "JSON": SQLType.TEXT,
    "JSONB": SQLType.TEXT,
    "BLOB": SQLType.TEXT,
    "BYTEA": SQLType.TEXT,
    "BOOLEAN": SQLType.BOOLEAN,
    "BOOL": SQLType.BOOLEAN,
    "LIST": SQLType.LIST,
    "STRUCT": SQLType.STRUCT,
    "UNION": SQLType.STRUCT,
    "MAP": SQLType.STRUCT,
}


def base_type_name(declared: str) -> str:
    """Strip length/precision arguments: ``VARCHAR(20)`` -> ``VARCHAR``."""
    return declared.split("(")[0].strip().upper()


#: declared-string -> SQLType memo: every INSERT/CAST re-derives the same few
#: declared type names, so the split/strip/upper normalisation runs once each.
_RUNTIME_TYPE_MEMO: dict[str, SQLType] = {}


def declared_runtime_type(declared: str) -> SQLType:
    """Map a declared column type name onto a runtime :class:`SQLType`."""
    resolved = _RUNTIME_TYPE_MEMO.get(declared)
    if resolved is not None:
        return resolved
    base = base_type_name(declared)
    try:
        resolved = _DECLARED_TYPE_MAP[base]
    except KeyError:
        raise UnsupportedTypeError(f"unknown data type: {declared}") from None
    _RUNTIME_TYPE_MEMO[declared] = resolved
    return resolved


def is_known_type(declared: str) -> bool:
    """Whether MiniDB knows how to store the declared type at all."""
    return base_type_name(declared) in _DECLARED_TYPE_MAP


def sql_type_of(value: Any) -> SQLType:
    """Runtime type of a Python value under MiniDB's value model."""
    if value is None:
        return SQLType.NULL
    if isinstance(value, bool):
        return SQLType.BOOLEAN
    if isinstance(value, int):
        return SQLType.INTEGER
    if isinstance(value, float):
        return SQLType.FLOAT
    if isinstance(value, str):
        return SQLType.TEXT
    if isinstance(value, list):
        return SQLType.LIST
    if isinstance(value, dict):
        return SQLType.STRUCT
    raise ConversionError(f"unsupported Python value of type {type(value).__name__}")


def is_numeric(value: Any) -> bool:
    """True for INTEGER/FLOAT/BOOLEAN values (booleans act as 0/1 in arithmetic)."""
    return isinstance(value, (int, float)) and not isinstance(value, bool) or isinstance(value, bool)


def to_number(value: Any, strict: bool = True) -> int | float | None:
    """Convert ``value`` to a number.

    With ``strict=False`` (SQLite-style weak typing) strings are parsed as far
    as possible and fall back to 0; with ``strict=True`` a non-numeric string
    raises :class:`ConversionError`.
    """
    if value is None:
        return None
    kind = type(value)
    if kind is int or kind is float:  # exact types: bool (int subclass) falls through
        return value
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, str):
        text = value.strip()
        try:
            if "." in text or "e" in text.lower():
                return float(text)
            return int(text)
        except ValueError:
            if strict:
                raise ConversionError(f"could not convert {value!r} to a number") from None
            # SQLite-style prefix parse: take the leading numeric prefix or 0.
            prefix = ""
            for ch in text:
                if ch.isdigit() or (ch in "+-." and not prefix.rstrip("+-")):
                    prefix += ch
                else:
                    break
            try:
                return float(prefix) if "." in prefix else int(prefix)
            except ValueError:
                return 0
    raise ConversionError(f"could not convert {type(value).__name__} to a number")


def to_text(value: Any) -> str | None:
    """Convert a value to its TEXT form (NULL stays NULL)."""
    if value is None:
        return None
    return render_value(value)


def to_boolean(value: Any, accepts_integers: bool = True) -> bool | None:
    """Convert a value to BOOLEAN.

    ``accepts_integers=False`` models PostgreSQL's refusal to treat bare
    integers as booleans outside of literal TRUE/FALSE contexts.
    """
    if value is None:
        return None
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        if not accepts_integers:
            raise ConversionError("cannot cast numeric value to boolean in this dialect")
        return value != 0
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("t", "true", "yes", "on", "1"):
            return True
        if lowered in ("f", "false", "no", "off", "0"):
            return False
        raise ConversionError(f"invalid boolean literal: {value!r}")
    raise ConversionError(f"cannot convert {type(value).__name__} to boolean")


def cast_value(value: Any, declared: str, strict: bool = True, boolean_accepts_integers: bool = True) -> Any:
    """CAST ``value`` to the declared SQL type."""
    if value is None:
        return None
    target = declared_runtime_type(declared)
    if target is SQLType.INTEGER:
        number = to_number(value, strict=strict)
        if number is None:
            return None
        return int(number)
    if target is SQLType.FLOAT:
        number = to_number(value, strict=strict)
        if number is None:
            return None
        return float(number)
    if target is SQLType.TEXT:
        return to_text(value)
    if target is SQLType.BOOLEAN:
        return to_boolean(value, accepts_integers=boolean_accepts_integers)
    if target in (SQLType.LIST, SQLType.STRUCT):
        return value
    return value


def coerce_to_declared(value: Any, declared: str | None, strict: bool, boolean_accepts_integers: bool = True) -> Any:
    """Coerce an inserted value to its column's declared type.

    Strict dialects (PostgreSQL, MySQL, DuckDB) convert values and raise on
    impossible conversions; SQLite's dynamic typing stores the value as-is but
    still applies *numeric affinity* (a numeric-looking string inserted into an
    INTEGER column becomes a number), mirroring SQLite's documented behaviour.
    """
    if value is None or declared is None:
        return value
    if strict:
        return cast_value(value, declared, strict=True, boolean_accepts_integers=boolean_accepts_integers)
    # Dynamic typing: apply affinity but never fail.
    target = declared_runtime_type(declared) if is_known_type(declared) else SQLType.TEXT
    if target in (SQLType.INTEGER, SQLType.FLOAT) and isinstance(value, str):
        try:
            return cast_value(value, declared, strict=True)
        except ConversionError:
            return value
    if target is SQLType.INTEGER and isinstance(value, float) and value.is_integer():
        return int(value)
    return value


def compare_values(left: Any, right: Any) -> int | None:
    """Three-way compare two SQL values; ``None`` when either side is NULL.

    Mixed numeric comparison works across int/float/bool; text compares
    lexicographically; comparing text against numbers uses SQLite's type
    ordering (numbers sort before text) so ORDER BY over mixed columns is
    deterministic everywhere.
    """
    if left is None or right is None:
        return None
    # exact-type fast paths for the two dominant comparisons (int vs int in
    # predicates and ORDER BY, str vs str in text columns); ``type`` keeps
    # bools out (bool is an int subclass but must compare numerically below),
    # and native int comparison is also exact beyond 2**53 where the float
    # route rounds
    left_type = type(left)
    right_type = type(right)
    if left_type is int and right_type is int:
        if left == right:
            return 0
        return -1 if left < right else 1
    if left_type is str and right_type is str:
        if left == right:
            return 0
        return -1 if left < right else 1
    left_num = isinstance(left, (int, float, bool))
    right_num = isinstance(right, (int, float, bool))
    if left_num and right_num:
        left_value = float(left)
        right_value = float(right)
        if math.isclose(left_value, right_value, rel_tol=0.0, abs_tol=0.0):
            return 0
        return -1 if left_value < right_value else 1
    if left_num != right_num:
        # numbers order before text (SQLite's cross-type ordering)
        return -1 if left_num else 1
    if isinstance(left, list) and isinstance(right, list):
        for left_item, right_item in zip(left, right):
            item_cmp = compare_values(left_item, right_item)
            if item_cmp is None or item_cmp != 0:
                return item_cmp
        return (len(left) > len(right)) - (len(left) < len(right))
    left_text = str(left)
    right_text = str(right)
    if left_text == right_text:
        return 0
    return -1 if left_text < right_text else 1


def values_equal(left: Any, right: Any) -> bool | None:
    """SQL equality with NULL propagation."""
    result = compare_values(left, right)
    if result is None:
        return None
    return result == 0


def render_value(value: Any, style: str = "python") -> str:
    """Render a value as the Python connector string the runner compares.

    * NULL renders as ``NULL``,
    * booleans render as ``True``/``False`` (Python connector style) or
      ``t``/``f`` with ``style="psql"``,
    * floats strip a trailing ``.0`` only when the value is integral and the
      style asks for it (SLT's integer columns),
    * lists and structs render in the DuckDB Python client style
      (``[1, 2, 3]`` / ``{'k': v}``) — Listing 8's discrepancy between clients
      is reproduced by the ``style="psql"`` alternative (``{1,2,3}``).
    """
    if value is None:
        return "NULL"
    # exact-type fast paths first (TEXT and INTEGER dominate rendered results);
    # isinstance re-checks below keep subclasses on the seed behaviour
    kind = type(value)
    if kind is str:
        return value
    if kind is int:
        return str(value)
    if kind is float:
        # Python's repr: integral floats keep their .0 (10.0 -> '10.0')
        return repr(value)
    if isinstance(value, bool):
        if style == "psql":
            return "t" if value else "f"
        return "True" if value else "False"
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, list):
        if style == "psql":
            return "{" + ",".join(render_value(item, style) for item in value) + "}"
        return "[" + ", ".join(render_value(item, style) for item in value) + "]"
    if isinstance(value, dict):
        inner = ", ".join(f"'{key}': {render_value(item, style)}" for key, item in value.items())
        return "{" + inner + "}"
    return str(value)
