"""Abstract syntax tree node definitions for MiniDB's SQL parser.

The AST is intentionally small and flat: expression nodes plus one dataclass
per statement kind.  The executor dispatches on the node class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expression:
    """Marker base class for expression nodes."""


@dataclass
class Literal(Expression):
    value: Any


@dataclass
class ColumnRef(Expression):
    name: str
    table: str | None = None

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass
class Star(Expression):
    table: str | None = None


@dataclass
class UnaryOp(Expression):
    operator: str
    operand: Expression


@dataclass
class BinaryOp(Expression):
    operator: str
    left: Expression
    right: Expression


@dataclass
class FunctionCall(Expression):
    name: str
    args: list[Expression] = field(default_factory=list)
    distinct: bool = False
    is_star: bool = False  # COUNT(*)


@dataclass
class Cast(Expression):
    operand: Expression
    type_name: str
    via_double_colon: bool = False


@dataclass
class CaseExpression(Expression):
    operand: Optional[Expression]
    whens: list[tuple[Expression, Expression]] = field(default_factory=list)
    default: Optional[Expression] = None


@dataclass
class InExpression(Expression):
    operand: Expression
    items: list[Expression] = field(default_factory=list)
    subquery: Optional["SelectStatement"] = None
    negated: bool = False


@dataclass
class BetweenExpression(Expression):
    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False


@dataclass
class LikeExpression(Expression):
    operand: Expression
    pattern: Expression
    negated: bool = False
    case_insensitive: bool = False


@dataclass
class IsNullExpression(Expression):
    operand: Expression
    negated: bool = False


@dataclass
class ExistsExpression(Expression):
    subquery: "SelectStatement"
    negated: bool = False


@dataclass
class ScalarSubquery(Expression):
    subquery: "SelectStatement"


@dataclass
class RowValue(Expression):
    items: list[Expression] = field(default_factory=list)


@dataclass
class ListLiteral(Expression):
    items: list[Expression] = field(default_factory=list)


@dataclass
class StructLiteral(Expression):
    items: list[tuple[str, Expression]] = field(default_factory=list)


# ---------------------------------------------------------------------------
# SELECT and friends
# ---------------------------------------------------------------------------


@dataclass
class SelectItem:
    expression: Expression
    alias: str | None = None


@dataclass
class TableRef:
    """A FROM-clause item: base table, subquery, or table function."""

    name: str | None = None
    alias: str | None = None
    subquery: Optional["SelectStatement"] = None
    function: Optional[FunctionCall] = None
    join_type: str | None = None  # None for the first item / comma joins
    join_condition: Optional[Expression] = None
    using_columns: list[str] = field(default_factory=list)
    is_comma_join: bool = False


@dataclass
class OrderItem:
    expression: Expression
    descending: bool = False
    nulls: str | None = None  # "first" | "last" | None (dialect default)


@dataclass
class CommonTableExpression:
    name: str
    columns: list[str]
    query: "SelectStatement"


@dataclass
class SelectCore:
    items: list[SelectItem] = field(default_factory=list)
    from_tables: list[TableRef] = field(default_factory=list)
    where: Optional[Expression] = None
    group_by: list[Expression] = field(default_factory=list)
    having: Optional[Expression] = None
    distinct: bool = False
    values_rows: list[list[Expression]] | None = None  # for VALUES (...) cores


@dataclass
class SelectStatement:
    core: SelectCore
    compound: list[tuple[str, SelectCore]] = field(default_factory=list)  # (op, core)
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[Expression] = None
    offset: Optional[Expression] = None
    ctes: list[CommonTableExpression] = field(default_factory=list)
    recursive: bool = False


# ---------------------------------------------------------------------------
# DML
# ---------------------------------------------------------------------------


@dataclass
class InsertStatement:
    table: str
    columns: list[str] = field(default_factory=list)
    rows: list[list[Expression]] = field(default_factory=list)
    select: Optional[SelectStatement] = None
    or_ignore: bool = False


@dataclass
class UpdateStatement:
    table: str
    assignments: list[tuple[str, Expression]] = field(default_factory=list)
    where: Optional[Expression] = None


@dataclass
class DeleteStatement:
    table: str
    where: Optional[Expression] = None


# ---------------------------------------------------------------------------
# DDL
# ---------------------------------------------------------------------------


@dataclass
class ColumnDefinition:
    name: str
    type_name: str | None
    not_null: bool = False
    primary_key: bool = False
    unique: bool = False
    default: Optional[Expression] = None
    check: Optional[Expression] = None


@dataclass
class CreateTableStatement:
    name: str
    columns: list[ColumnDefinition] = field(default_factory=list)
    if_not_exists: bool = False
    temporary: bool = False
    as_select: Optional[SelectStatement] = None
    primary_key_columns: list[str] = field(default_factory=list)


@dataclass
class DropStatement:
    object_kind: str  # TABLE | VIEW | INDEX | SCHEMA
    name: str
    if_exists: bool = False
    cascade: bool = False


@dataclass
class AlterTableStatement:
    table: str
    action: str  # add_column | drop_column | rename_to | rename_column
    column: Optional[ColumnDefinition] = None
    new_name: str | None = None
    old_column: str | None = None


@dataclass
class CreateIndexStatement:
    name: str
    table: str
    columns: list[str] = field(default_factory=list)
    unique: bool = False
    if_not_exists: bool = False


@dataclass
class CreateViewStatement:
    name: str
    query: SelectStatement
    if_not_exists: bool = False
    or_replace: bool = False


@dataclass
class CreateSchemaStatement:
    name: str
    if_not_exists: bool = False


@dataclass
class AlterSchemaStatement:
    name: str
    new_name: str


# ---------------------------------------------------------------------------
# Transactions, settings, utility statements
# ---------------------------------------------------------------------------


@dataclass
class TransactionStatement:
    action: str  # begin | commit | rollback | savepoint | release
    name: str | None = None


@dataclass
class SetStatement:
    name: str
    value: Optional[Expression]
    is_pragma: bool = False
    scope: str | None = None  # LOCAL | SESSION | GLOBAL


@dataclass
class ShowStatement:
    name: str


@dataclass
class ExplainStatement:
    statement: Any
    analyze: bool = False


@dataclass
class UseStatement:
    database: str


@dataclass
class CopyStatement:
    table: str
    source: str
    direction: str = "from"  # from | to


@dataclass
class UnparsedStatement:
    """A statement MiniDB recognises as SQL but cannot execute.

    The executor converts these into :class:`UnsupportedStatementError`
    carrying the statement type, which is exactly what the failure classifier
    needs for the RQ4 ``Statements`` category.
    """

    text: str
    statement_type: str
    reason: str = "unsupported statement"
