"""MiniDB: an in-process relational SQL engine with dialect profiles.

MiniDB substitutes for the real PostgreSQL / MySQL / DuckDB servers the paper
executed test suites on (which cannot be installed in this offline
environment).  A :class:`~repro.engine.session.Session` is created with a
:class:`~repro.dialects.base.DialectProfile`, and the profile drives every
dialect-sensitive decision: division semantics, operator support, function
availability, type strictness, configuration handling, NULL ordering, row-value
comparison, recursive-CTE policy, and EXPLAIN output format.

The public entry point is :class:`Session` (plus :func:`connect`), which
mimics a minimal DB-API: ``execute(sql)`` returns a :class:`QueryResult` with
``rows`` and ``columns``.
"""

from repro.engine.values import SQLType, render_value, sql_type_of
from repro.engine.storage import Column, Database, Table
from repro.engine.session import QueryResult, Session, connect

__all__ = [
    "SQLType",
    "render_value",
    "sql_type_of",
    "Column",
    "Database",
    "Table",
    "QueryResult",
    "Session",
    "connect",
]
