"""Built-in SQL functions (scalar, aggregate, table-valued) for MiniDB.

Function availability is governed by the dialect profile's ``functions`` set
(checked in the evaluator); the *implementations* here are shared, with
dialect-sensitive behaviour (e.g. ``has_column_privilege`` returning TRUE on
DuckDB even for invalid arguments — Listing 18) parameterised by the profile.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Any, Callable

from repro.dialects.base import DialectProfile
from repro.errors import EngineHang, UnsupportedFunctionError
from repro.engine.values import SQLType, compare_values, render_value, sql_type_of, to_number, to_text


class FunctionRegistry:
    """Resolves scalar and aggregate function implementations for a dialect."""

    def __init__(self, dialect: DialectProfile, seed: int = 0):
        self.dialect = dialect
        self._random = random.Random(seed)
        self._scalar: dict[str, Callable[..., Any]] = self._build_scalar_table()

    # -- scalar ----------------------------------------------------------------

    def is_scalar(self, name: str) -> bool:
        return name in self._scalar

    def call_scalar(self, name: str, args: list[Any]) -> Any:
        """Invoke scalar function ``name`` with already-evaluated ``args``."""
        if not self.dialect.supports_function(name):
            raise UnsupportedFunctionError(f"no such function: {name}")
        implementation = self._scalar.get(name)
        if implementation is None:
            raise UnsupportedFunctionError(f"function {name} is recognised but not implemented by MiniDB")
        return implementation(*args)

    def reseed(self, seed: int) -> None:
        self._random.seed(seed)

    # -- implementations -------------------------------------------------------

    def _build_scalar_table(self) -> dict[str, Callable[..., Any]]:
        strict = self.dialect.strict_types

        def _num(value: Any) -> int | float | None:
            return to_number(value, strict=strict)

        def fn_abs(value: Any = None) -> Any:
            number = _num(value)
            return None if number is None else abs(number)

        def fn_length(value: Any = None) -> Any:
            if value is None:
                return None
            return len(str(value))

        def fn_upper(value: Any = None) -> Any:
            return None if value is None else str(value).upper()

        def fn_lower(value: Any = None) -> Any:
            return None if value is None else str(value).lower()

        def fn_coalesce(*args: Any) -> Any:
            first_nonnull = next((arg for arg in args if arg is not None), None)
            if first_nonnull is None:
                return None
            if self.dialect.coalesce_promotes and any(isinstance(arg, float) for arg in args if arg is not None):
                # PostgreSQL/MySQL/DuckDB promote to the common numeric super-type.
                if isinstance(first_nonnull, (int, float)) and not isinstance(first_nonnull, bool):
                    return float(first_nonnull)
            return first_nonnull

        def fn_nullif(first: Any = None, second: Any = None) -> Any:
            return None if compare_values(first, second) == 0 else first

        def fn_ifnull(first: Any = None, second: Any = None) -> Any:
            return second if first is None else first

        def fn_iif(condition: Any = None, then: Any = None, otherwise: Any = None) -> Any:
            return then if condition not in (None, False, 0) else otherwise

        def fn_round(value: Any = None, digits: Any = 0) -> Any:
            number = _num(value)
            if number is None:
                return None
            places = int(_num(digits) or 0)
            result = round(float(number), places)
            return result if places > 0 else float(result)

        def fn_floor(value: Any = None) -> Any:
            number = _num(value)
            return None if number is None else math.floor(number)

        def fn_ceil(value: Any = None) -> Any:
            number = _num(value)
            return None if number is None else math.ceil(number)

        def fn_sqrt(value: Any = None) -> Any:
            number = _num(value)
            return None if number is None else math.sqrt(number)

        def fn_power(base: Any = None, exponent: Any = None) -> Any:
            left, right = _num(base), _num(exponent)
            if left is None or right is None:
                return None
            return float(left) ** float(right)

        def fn_exp(value: Any = None) -> Any:
            number = _num(value)
            return None if number is None else math.exp(number)

        def fn_ln(value: Any = None) -> Any:
            number = _num(value)
            return None if number is None else math.log(number)

        def fn_log(value: Any = None, base: Any = None) -> Any:
            number = _num(value)
            if number is None:
                return None
            if base is None:
                return math.log10(number)
            return math.log(_num(base)) / math.log(number) if number else None

        def fn_mod(left: Any = None, right: Any = None) -> Any:
            a, b = _num(left), _num(right)
            if a is None or b is None:
                return None
            if b == 0:
                return None
            return a % b

        def fn_sign(value: Any = None) -> Any:
            number = _num(value)
            if number is None:
                return None
            return 0 if number == 0 else (1 if number > 0 else -1)

        def fn_trunc(value: Any = None, digits: Any = 0) -> Any:
            number = _num(value)
            if number is None:
                return None
            places = int(_num(digits) or 0)
            factor = 10 ** places
            return math.trunc(float(number) * factor) / factor if places else float(math.trunc(number))

        def fn_substr(value: Any = None, start: Any = 1, length: Any = None) -> Any:
            if value is None:
                return None
            text = str(value)
            begin = int(_num(start) or 1)
            index = begin - 1 if begin > 0 else max(len(text) + begin, 0)
            if length is None:
                return text[index:]
            return text[index : index + int(_num(length) or 0)]

        def fn_instr(haystack: Any = None, needle: Any = None) -> Any:
            if haystack is None or needle is None:
                return None
            return str(haystack).find(str(needle)) + 1

        def fn_replace(value: Any = None, old: Any = None, new: Any = None) -> Any:
            if value is None or old is None or new is None:
                return None
            return str(value).replace(str(old), str(new))

        def fn_trim(value: Any = None, chars: Any = None) -> Any:
            if value is None:
                return None
            return str(value).strip(str(chars)) if chars is not None else str(value).strip()

        def fn_ltrim(value: Any = None, chars: Any = None) -> Any:
            if value is None:
                return None
            return str(value).lstrip(str(chars)) if chars is not None else str(value).lstrip()

        def fn_rtrim(value: Any = None, chars: Any = None) -> Any:
            if value is None:
                return None
            return str(value).rstrip(str(chars)) if chars is not None else str(value).rstrip()

        def fn_concat(*args: Any) -> Any:
            return "".join("" if arg is None else str(to_text(arg)) for arg in args)

        def fn_concat_ws(separator: Any = "", *args: Any) -> Any:
            if separator is None:
                return None
            return str(separator).join(str(to_text(arg)) for arg in args if arg is not None)

        def fn_left(value: Any = None, count: Any = 0) -> Any:
            if value is None:
                return None
            return str(value)[: int(_num(count) or 0)]

        def fn_right(value: Any = None, count: Any = 0) -> Any:
            if value is None:
                return None
            amount = int(_num(count) or 0)
            return str(value)[-amount:] if amount else ""

        def fn_lpad(value: Any = None, width: Any = 0, fill: Any = " ") -> Any:
            if value is None:
                return None
            return str(value).rjust(int(_num(width) or 0), str(fill)[:1] or " ")

        def fn_rpad(value: Any = None, width: Any = 0, fill: Any = " ") -> Any:
            if value is None:
                return None
            return str(value).ljust(int(_num(width) or 0), str(fill)[:1] or " ")

        def fn_split_part(value: Any = None, separator: Any = None, index: Any = 1) -> Any:
            if value is None or separator is None:
                return None
            parts = str(value).split(str(separator))
            position = int(_num(index) or 1)
            return parts[position - 1] if 0 < position <= len(parts) else ""

        def fn_hex(value: Any = None) -> Any:
            if value is None:
                return None
            return str(value).encode().hex().upper()

        def fn_md5(value: Any = None) -> Any:
            if value is None:
                return None
            return hashlib.md5(str(value).encode()).hexdigest()

        def fn_typeof(value: Any = None) -> str:
            mapping = {
                SQLType.NULL: "null",
                SQLType.INTEGER: "integer",
                SQLType.FLOAT: "real",
                SQLType.TEXT: "text",
                SQLType.BOOLEAN: "integer",
                SQLType.LIST: "list",
                SQLType.STRUCT: "struct",
            }
            return mapping[sql_type_of(value)]

        def fn_pg_typeof(value: Any = None) -> str:
            mapping = {
                SQLType.NULL: "unknown",
                SQLType.INTEGER: "integer",
                SQLType.FLOAT: "numeric",
                SQLType.TEXT: "text",
                SQLType.BOOLEAN: "boolean",
                SQLType.LIST: "anyarray",
                SQLType.STRUCT: "record",
            }
            return mapping[sql_type_of(value)]

        def fn_greatest(*args: Any) -> Any:
            present = [arg for arg in args if arg is not None]
            if not present:
                return None
            best = present[0]
            for candidate in present[1:]:
                if compare_values(candidate, best) == 1:
                    best = candidate
            return best

        def fn_least(*args: Any) -> Any:
            present = [arg for arg in args if arg is not None]
            if not present:
                return None
            best = present[0]
            for candidate in present[1:]:
                if compare_values(candidate, best) == -1:
                    best = candidate
            return best

        def fn_random() -> float:
            if self.dialect.name == "sqlite":
                return self._random.randint(-(2 ** 63), 2 ** 63 - 1)
            return self._random.random()

        def fn_rand() -> float:
            return self._random.random()

        def fn_setseed(seed: Any = 0) -> None:
            self._random.seed(_num(seed))
            return None

        def fn_range(*args: Any) -> list:
            return _series(args, start_default=0, inclusive=False)

        def fn_generate_series(*args: Any) -> list:
            return _series(args, start_default=1, inclusive=True)

        def _series(args: tuple, start_default: int, inclusive: bool) -> list:
            numbers = [int(_num(arg) or 0) for arg in args]
            if len(numbers) == 1:
                start, stop, step = start_default, numbers[0], 1
                if inclusive:
                    stop += 1
            elif len(numbers) >= 2:
                start, stop = numbers[0], numbers[1]
                step = numbers[2] if len(numbers) > 2 else 1
                if inclusive:
                    stop = stop + (1 if step > 0 else -1)
            else:
                return []
            if step == 0:
                return []
            span = abs(stop - start)
            if span > 10_000_000:
                raise EngineHang(f"series of {span} rows exceeds the execution budget")
            return list(range(start, stop, step))

        def fn_has_column_privilege(*args: Any) -> Any:
            # Listing 18: DuckDB always returns TRUE even for invalid
            # arguments; PostgreSQL raises an error for them.
            if self.dialect.name == "duckdb":
                return True
            if any(isinstance(arg, (int, float)) and not isinstance(arg, bool) for arg in args):
                raise UnsupportedFunctionError("has_column_privilege: invalid argument types")
            return True

        def fn_version() -> str:
            return f"{self.dialect.display_name} (MiniDB emulation)"

        def fn_current_database() -> str:
            return "main"

        def fn_format(template: Any = "", *args: Any) -> Any:
            if template is None:
                return None
            text = str(template)
            for arg in args:
                for marker in ("%s", "%d", "%g", "{}"):
                    if marker in text:
                        text = text.replace(marker, render_value(arg), 1)
                        break
            return text

        def fn_printf(template: Any = "", *args: Any) -> Any:
            return fn_format(template, *args)

        def fn_if(condition: Any = None, then: Any = None, otherwise: Any = None) -> Any:
            return then if condition not in (None, False, 0) else otherwise

        def fn_to_json(value: Any = None) -> Any:
            return render_value(value)

        def fn_json_extract(document: Any = None, path: Any = None) -> Any:
            return None

        def fn_list_value(*args: Any) -> list:
            return list(args)

        def fn_list_extract(values: Any = None, index: Any = 1) -> Any:
            if not isinstance(values, list):
                return None
            position = int(_num(index) or 1)
            return values[position - 1] if 0 < position <= len(values) else None

        def fn_list_contains(values: Any = None, item: Any = None) -> Any:
            if not isinstance(values, list):
                return None
            return item in values

        def fn_struct_pack(*args: Any) -> dict:
            return {f"f{i}": arg for i, arg in enumerate(args)}

        def fn_struct_extract(struct: Any = None, key: Any = None) -> Any:
            if isinstance(struct, dict) and key is not None:
                return struct.get(str(key))
            return None

        def fn_nop(*_args: Any) -> None:
            return None

        table: dict[str, Callable[..., Any]] = {
            "abs": fn_abs,
            "length": fn_length,
            "char_length": fn_length,
            "character_length": fn_length,
            "upper": fn_upper,
            "lower": fn_lower,
            "initcap": lambda value=None: None if value is None else str(value).title(),
            "coalesce": fn_coalesce,
            "nullif": fn_nullif,
            "ifnull": fn_ifnull,
            "iif": fn_iif,
            "if": fn_if,
            "round": fn_round,
            "floor": fn_floor,
            "ceil": fn_ceil,
            "ceiling": fn_ceil,
            "sqrt": fn_sqrt,
            "power": fn_power,
            "pow": fn_power,
            "exp": fn_exp,
            "ln": fn_ln,
            "log": fn_log,
            "log10": lambda value=None: None if _num(value) is None else math.log10(_num(value)),
            "log2": lambda value=None: None if _num(value) is None else math.log2(_num(value)),
            "mod": fn_mod,
            "sign": fn_sign,
            "trunc": fn_trunc,
            "truncate": fn_trunc,
            "substr": fn_substr,
            "substring": fn_substr,
            "instr": fn_instr,
            "locate": lambda needle=None, haystack=None: fn_instr(haystack, needle),
            "strpos": lambda haystack=None, needle=None: fn_instr(haystack, needle),
            "replace": fn_replace,
            "trim": fn_trim,
            "ltrim": fn_ltrim,
            "rtrim": fn_rtrim,
            "concat": fn_concat,
            "concat_ws": fn_concat_ws,
            "left": fn_left,
            "right": fn_right,
            "lpad": fn_lpad,
            "rpad": fn_rpad,
            "split_part": fn_split_part,
            "hex": fn_hex,
            "md5": fn_md5,
            "sha1": lambda value=None: None if value is None else hashlib.sha1(str(value).encode()).hexdigest(),
            "sha2": lambda value=None, bits=256: None if value is None else hashlib.sha256(str(value).encode()).hexdigest(),
            "typeof": fn_typeof,
            "pg_typeof": fn_pg_typeof,
            "greatest": fn_greatest,
            "least": fn_least,
            "random": fn_random,
            "rand": fn_rand,
            "setseed": fn_setseed,
            "range": fn_range,
            "generate_series": fn_generate_series,
            "has_column_privilege": fn_has_column_privilege,
            "has_table_privilege": lambda *args: True,
            "version": fn_version,
            "current_database": fn_current_database,
            "current_schema": lambda: "main",
            "current_user": lambda: "squality",
            "user": lambda: "squality",
            "database": fn_current_database,
            "format": fn_format,
            "printf": fn_printf,
            "quote": lambda value=None: "NULL" if value is None else f"'{value}'",
            "unicode": lambda value=None: None if not value else ord(str(value)[0]),
            "to_json": fn_to_json,
            "to_jsonb": fn_to_json,
            "to_char": lambda value=None, fmt=None: to_text(value),
            "to_number": lambda value=None, fmt=None: _num(value),
            "json_extract": fn_json_extract,
            "json": fn_to_json,
            "json_array": lambda *args: list(args),
            "json_object": lambda *args: {str(args[i]): args[i + 1] for i in range(0, len(args) - 1, 2)},
            "json_build_object": lambda *args: {str(args[i]): args[i + 1] for i in range(0, len(args) - 1, 2)},
            "jsonb_build_object": lambda *args: {str(args[i]): args[i + 1] for i in range(0, len(args) - 1, 2)},
            "list_value": fn_list_value,
            "list_extract": fn_list_extract,
            "list_contains": fn_list_contains,
            "struct_pack": fn_struct_pack,
            "struct_extract": fn_struct_extract,
            "unnest": lambda values=None: values,
            "pg_backend_pid": lambda: 4242,
            "pg_sleep": fn_nop,
            "pg_table_size": lambda *args: 8192,
            "pg_total_relation_size": lambda *args: 8192,
            "pg_column_size": lambda value=None: None if value is None else len(render_value(value)),
            "pg_get_viewdef": lambda *args: "",
            "pg_get_expr": lambda *args: "",
            "current_date": lambda: "2024-01-01",
            "current_time": lambda: "00:00:00",
            "current_timestamp": lambda: "2024-01-01 00:00:00",
            "now": lambda: "2024-01-01 00:00:00",
            "curdate": lambda: "2024-01-01",
            "curtime": lambda: "00:00:00",
            "date": lambda value=None: None if value is None else str(value)[:10],
            "time": lambda value=None: None if value is None else str(value)[-8:],
            "datetime": lambda value=None, *mods: None if value is None else str(value),
            "strftime": lambda fmt=None, value=None, *mods: None if value is None else str(value),
            "date_trunc": lambda part=None, value=None: None if value is None else str(value),
            "date_part": lambda part=None, value=None: 2024,
            "extract": lambda part=None, value=None: 2024,
            "julianday": lambda value=None: 2460310.5,
            "unixepoch": lambda value=None: 1704067200,
            "unix_timestamp": lambda value=None: 1704067200,
            "from_unixtime": lambda value=None: "2024-01-01 00:00:00",
            "date_format": lambda value=None, fmt=None: None if value is None else str(value),
            "date_add": lambda value=None, interval=None: value,
            "date_sub": lambda value=None, interval=None: value,
            "datediff": lambda left=None, right=None: 0,
            "str_to_date": lambda value=None, fmt=None: value,
            "age": lambda *args: "0 years",
            "justify_days": lambda value=None: value,
            "justify_hours": lambda value=None: value,
            "last_insert_rowid": lambda: 0,
            "last_insert_id": lambda: 0,
            "changes": lambda: 0,
            "total_changes": lambda: 0,
            "connection_id": lambda: 1,
            "pi": lambda: math.pi,
            "gcd": lambda a=0, b=0: math.gcd(int(_num(a) or 0), int(_num(b) or 0)),
            "lcm": lambda a=0, b=0: abs(int(_num(a) or 0) * int(_num(b) or 0)) // (math.gcd(int(_num(a) or 0), int(_num(b) or 0)) or 1),
            "width_bucket": lambda value=None, low=0, high=1, buckets=1: 1,
            "regexp_replace": lambda value=None, pattern=None, replacement="": value,
            "regexp_matches": lambda value=None, pattern=None: [],
            "glob": lambda pattern=None, value=None: False,
            "like": lambda pattern=None, value=None: False,
            "likelihood": lambda value=None, probability=None: value,
            "zeroblob": lambda size=0: "",
            "randomblob": lambda size=0: "00" * int(_num(size) or 0),
            "hash": lambda value=None: int(hashlib.md5(render_value(value).encode()).hexdigest()[:8], 16),
            "test_opclass_options_func": fn_nop,
            "div": lambda a=None, b=None: None if _num(a) is None or _num(b) is None or _num(b) == 0 else int(_num(a) // _num(b)),
        }
        return table


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------

AGGREGATE_FUNCTIONS = frozenset(
    {
        "count",
        "sum",
        "total",
        "avg",
        "min",
        "max",
        "median",
        "quantile",
        "quantile_cont",
        "quantile_disc",
        "mode",
        "group_concat",
        "string_agg",
        "array_agg",
        "bool_and",
        "bool_or",
        "every",
        "stddev",
        "std",
        "stddev_pop",
        "stddev_samp",
        "var_pop",
        "var_samp",
        "bit_and",
        "bit_or",
        "bit_xor",
        "approx_count_distinct",
        "first_value",
        "last_value",
        "row_number",
        "rank",
        "dense_rank",
    }
)


def is_aggregate(name: str) -> bool:
    """Whether ``name`` is an aggregate function name."""
    return name.lower() in AGGREGATE_FUNCTIONS


def evaluate_aggregate(name: str, values: list[Any], dialect: DialectProfile, distinct: bool = False, is_star: bool = False) -> Any:
    """Compute aggregate ``name`` over ``values`` (one value per input row)."""
    lowered = name.lower()
    if lowered == "count":
        if is_star:
            return len(values)
        present = [value for value in values if value is not None]
        return len(set(map(render_value, present))) if distinct else len(present)
    present = [value for value in values if value is not None]
    if distinct:
        unique: list[Any] = []
        seen: set[str] = set()
        for value in present:
            key = render_value(value)
            if key not in seen:
                seen.add(key)
                unique.append(value)
        present = unique
    if lowered in ("sum", "total"):
        if not present:
            return 0.0 if lowered == "total" else None
        numbers = [to_number(value, strict=False) for value in present]
        total = sum(numbers)
        if lowered == "total":
            return float(total)
        if all(isinstance(number, int) for number in numbers):
            return int(total)
        return float(total)
    if lowered == "avg":
        if not present:
            return None
        numbers = [float(to_number(value, strict=False)) for value in present]
        return sum(numbers) / len(numbers)
    if lowered == "min":
        if not present:
            return None
        best = present[0]
        for value in present[1:]:
            if compare_values(value, best) == -1:
                best = value
        return best
    if lowered == "max":
        if not present:
            return None
        best = present[0]
        for value in present[1:]:
            if compare_values(value, best) == 1:
                best = value
        return best
    if lowered in ("median", "quantile", "quantile_cont", "quantile_disc"):
        if not present:
            return None
        numbers = sorted(float(to_number(value, strict=False)) for value in present)
        middle = len(numbers) // 2
        if len(numbers) % 2 == 1:
            result = numbers[middle]
        elif lowered == "quantile_disc":
            result = numbers[middle - 1]
        else:
            result = (numbers[middle - 1] + numbers[middle]) / 2.0
        return result
    if lowered == "mode":
        if not present:
            return None
        counts: dict[str, tuple[int, Any]] = {}
        for value in present:
            key = render_value(value)
            count, _ = counts.get(key, (0, value))
            counts[key] = (count + 1, value)
        return max(counts.values(), key=lambda pair: pair[0])[1]
    if lowered in ("group_concat", "string_agg"):
        if not present:
            return None
        return ",".join(str(value) for value in present)
    if lowered == "array_agg":
        return list(present) if present else None
    if lowered in ("bool_and", "every"):
        if not present:
            return None
        return all(bool(value) for value in present)
    if lowered == "bool_or":
        if not present:
            return None
        return any(bool(value) for value in present)
    if lowered in ("stddev", "std", "stddev_samp", "stddev_pop", "var_pop", "var_samp"):
        if len(present) < 2 and lowered in ("stddev", "std", "stddev_samp", "var_samp"):
            return None
        numbers = [float(to_number(value, strict=False)) for value in present]
        if not numbers:
            return None
        mean = sum(numbers) / len(numbers)
        denominator = len(numbers) if lowered.endswith("pop") else max(len(numbers) - 1, 1)
        variance = sum((number - mean) ** 2 for number in numbers) / denominator
        if lowered.startswith("var"):
            return variance
        return math.sqrt(variance)
    if lowered in ("bit_and", "bit_or", "bit_xor"):
        if not present:
            return None
        numbers = [int(to_number(value, strict=False)) for value in present]
        result = numbers[0]
        for number in numbers[1:]:
            if lowered == "bit_and":
                result &= number
            elif lowered == "bit_or":
                result |= number
            else:
                result ^= number
        return result
    if lowered == "approx_count_distinct":
        return len({render_value(value) for value in present})
    if lowered == "first_value":
        return present[0] if present else None
    if lowered == "last_value":
        return present[-1] if present else None
    if lowered in ("row_number", "rank", "dense_rank"):
        return len(values)
    raise UnsupportedFunctionError(f"no such aggregate function: {name}")
