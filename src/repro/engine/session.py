"""MiniDB session: the engine's public, connection-like entry point.

A :class:`Session` owns one in-memory :class:`~repro.engine.storage.Database`,
a dialect profile, the expression evaluator, and the SELECT executor.  Its
``execute`` method parses a statement, enforces dialect support rules, applies
fault emulation (the known crash/hang signatures of the studied DBMSs), and
dispatches to the appropriate handler.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any

from repro.dialects.base import DialectProfile, get_dialect
from repro.engine import ast_nodes as ast
from repro.engine import columnar
from repro.engine.executor import Relation, SelectExecutor
from repro.engine.expressions import ExpressionEvaluator, RowContext, _predicate_truth
from repro.engine.functions import FunctionRegistry
from repro.engine.parser import parse_sql
from repro.engine.storage import Column, Database, Index, Table, View
from repro.engine.values import coerce_to_declared, render_value
from repro.perf import cache as perf_cache
from repro.perf import vectorize
from repro.errors import (
    CatalogError,
    ConfigurationError,
    DatabaseError,
    EngineCrash,
    EngineHang,
    SQLSyntaxError,
    TransactionError,
    UnsupportedStatementError,
    UnsupportedTypeError,
)


@dataclass
class QueryResult:
    """Result of executing one statement."""

    columns: list[str] = field(default_factory=list)
    rows: list[list[Any]] = field(default_factory=list)
    rowcount: int = 0
    status: str = "OK"
    statement_type: str = ""

    @property
    def is_query(self) -> bool:
        return bool(self.columns)

    def scalar(self) -> Any:
        """First column of the first row, or None for empty results."""
        if self.rows and self.rows[0]:
            return self.rows[0][0]
        return None

    def rendered_rows(self, style: str = "python") -> list[list[str]]:
        """Rows rendered to strings the way the Python connectors present them."""
        return [[render_value(value, style) for value in row] for row in self.rows]


#: Prepared-plan cache: SQL text -> parsed statement (or the syntax error it
#: raises).  Parsing accepts a superset of every studied dialect and makes no
#: dialect- or state-dependent decisions, and execution never mutates the AST,
#: so plans are shared process-wide: replaying one suite on four hosts parses
#: each distinct statement once instead of four times.
_PLAN_CACHE = perf_cache.LRUCache("plan", maxsize=16384)

#: Marks an InsertStatement whose VALUES rows contain non-literal expressions
#: (so the literal-row memo is skipped without re-scanning the AST).
_NOT_ALL_LITERALS = object()

#: Fault-signature screening cache: ``(dialect, sql)`` -> tuple of signatures
#: whose *pattern* matches the normalized statement.  Pattern matching is a
#: pure function of the statement text; the state-dependent parts of fault
#: emulation (transaction state, settings) are evaluated on every call.
_FAULT_MATCH_CACHE = perf_cache.LRUCache("fault_match", maxsize=16384)


class Session:
    """One connection to a MiniDB database instance."""

    def __init__(self, dialect: DialectProfile | str = "sqlite", enable_faults: bool = True, seed: int = 0):
        self.dialect = get_dialect(dialect) if isinstance(dialect, str) else dialect
        self.database = Database()
        self.enable_faults = enable_faults
        self.settings: dict[str, Any] = {}
        self.features: set[str] = set()
        self._touch = self.features.add
        self.statement_count = 0
        self.crashed = False
        self._functions = FunctionRegistry(self.dialect, seed=seed)
        self._evaluator = ExpressionEvaluator(
            self.dialect,
            self._functions,
            subquery_executor=self._execute_subquery,
            feature_hook=self._touch,
        )
        self._executor = SelectExecutor(self.database, self.dialect, self._evaluator, feature_hook=self._touch)
        self._in_transaction = False
        self._snapshot: dict | None = None
        self._savepoints: list[tuple[str, dict]] = []
        # tables UPDATEd inside the most recently committed transaction; used by
        # the DuckDB UPDATE-after-COMMIT crash signature (Listing 13).
        self._recently_committed_updates: set[str] = set()
        self._transaction_updates: set[str] = set()

    # -- infrastructure -----------------------------------------------------------
    #
    # ``_touch`` is bound in ``__init__`` straight to ``self.features.add``
    # (the set object lives for the session — ``reset`` never replaces it),
    # so the executor and evaluator hooks record features without an extra
    # call frame on the hot path.

    def _execute_subquery(self, statement: ast.SelectStatement, outer: RowContext | None) -> list[list[Any]]:
        return self._executor.execute_rows(statement, outer)

    def close(self) -> None:
        """Release the database (drops everything)."""
        self.database = Database()
        self._executor.database = self.database

    def reset(self) -> None:
        """Reset to a pristine database and session state (used between test files)."""
        self.database = Database()
        self._executor.database = self.database
        self.settings.clear()
        self._in_transaction = False
        self._snapshot = None
        self._savepoints.clear()
        self._recently_committed_updates.clear()
        self._transaction_updates.clear()
        self.crashed = False

    # -- fault emulation ------------------------------------------------------------

    def _match_fault_signatures(self, sql: str) -> tuple:
        normalized = " ".join(sql.split())
        return tuple(
            signature
            for signature in self.dialect.fault_signatures
            if re.search(signature.pattern, normalized, flags=re.IGNORECASE | re.DOTALL)
        )

    def _matching_fault_signatures(self, sql: str) -> tuple:
        """Signatures whose pattern matches ``sql`` (state checks happen later)."""
        if not perf_cache.caching_enabled():
            return self._match_fault_signatures(sql)
        key = (self.dialect.name, sql)
        matched = _FAULT_MATCH_CACHE.peek(key)
        if matched is None:
            matched = self._match_fault_signatures(sql)
            _FAULT_MATCH_CACHE.put(key, matched)
        return matched

    def _check_faults(self, sql: str) -> None:
        if not self.enable_faults or not self.dialect.fault_signatures:
            return
        matched = self._matching_fault_signatures(sql)
        if not matched:
            return
        normalized = " ".join(sql.split())
        for signature in matched:
            if signature.condition == "update_after_commit":
                table_match = re.match(r"UPDATE\s+(\w+)", normalized, flags=re.IGNORECASE)
                table = table_match.group(1).lower() if table_match else ""
                if self._in_transaction or table not in self._recently_committed_updates:
                    continue
            if signature.condition == "default_search_depth":
                depth = self.settings.get("optimizer_search_depth")
                if depth is not None and int(depth) == 0:
                    continue
            if signature.kind == "crash":
                self.crashed = True
                raise EngineCrash(f"{self.dialect.display_name} crashed: {signature.description} ({signature.reference})")
            raise EngineHang(f"{self.dialect.display_name} hang: {signature.description} ({signature.reference})")

    # -- public API -------------------------------------------------------------------

    def execute(self, sql: str) -> QueryResult:
        """Parse and execute a single SQL statement."""
        if self.crashed:
            raise EngineCrash(f"{self.dialect.display_name} connection is gone (previous crash)")
        sql = sql.strip().rstrip(";").strip()
        if not sql:
            return QueryResult(status="EMPTY")
        self.statement_count += 1
        self._check_faults(sql)
        statement = self._prepare_plan(sql)
        return self._dispatch(statement, sql)

    def _prepare_plan(self, sql: str) -> Any:
        """Parse ``sql``, memoizing the plan (and syntax errors) process-wide."""
        if not perf_cache.caching_enabled():
            return parse_sql(sql)
        entry = _PLAN_CACHE.peek(sql)
        if entry is None:
            try:
                entry = (True, parse_sql(sql))
            except SQLSyntaxError as error:
                entry = (False, error)
            _PLAN_CACHE.put(sql, entry)
        ok, payload = entry
        if ok:
            return payload
        # raise a fresh instance so concurrent workers never share tracebacks
        raise type(payload)(*payload.args)

    def execute_script(self, sql: str) -> list[QueryResult]:
        """Execute a multi-statement script, stopping at the first error."""
        from repro.sqlparser.statements import split_statements

        return [self.execute(statement) for statement in split_statements(sql)]

    # -- dispatch ---------------------------------------------------------------------

    def _dispatch(self, statement: Any, sql: str) -> QueryResult:
        if isinstance(statement, ast.SelectStatement):
            return self._run_select(statement)
        if isinstance(statement, ast.InsertStatement):
            return self._run_insert(statement)
        if isinstance(statement, ast.UpdateStatement):
            return self._run_update(statement)
        if isinstance(statement, ast.DeleteStatement):
            return self._run_delete(statement)
        if isinstance(statement, ast.CreateTableStatement):
            return self._run_create_table(statement)
        if isinstance(statement, ast.CreateIndexStatement):
            return self._run_create_index(statement)
        if isinstance(statement, ast.CreateViewStatement):
            return self._run_create_view(statement)
        if isinstance(statement, ast.CreateSchemaStatement):
            return self._run_create_schema(statement)
        if isinstance(statement, ast.AlterSchemaStatement):
            return self._run_alter_schema(statement)
        if isinstance(statement, ast.DropStatement):
            return self._run_drop(statement)
        if isinstance(statement, ast.AlterTableStatement):
            return self._run_alter_table(statement)
        if isinstance(statement, ast.TransactionStatement):
            return self._run_transaction(statement)
        if isinstance(statement, ast.SetStatement):
            return self._run_set(statement)
        if isinstance(statement, ast.ShowStatement):
            return self._run_show(statement)
        if isinstance(statement, ast.ExplainStatement):
            return self._run_explain(statement)
        if isinstance(statement, ast.UseStatement):
            self._touch("statement.use")
            return QueryResult(status="OK", statement_type="USE")
        if isinstance(statement, ast.CopyStatement):
            return self._run_copy(statement)
        if isinstance(statement, ast.UnparsedStatement):
            raise UnsupportedStatementError(
                f"{self.dialect.display_name} (MiniDB) does not support {statement.statement_type} statements: {statement.reason}"
            )
        raise UnsupportedStatementError(f"unsupported statement: {type(statement).__name__}")

    # -- SELECT ---------------------------------------------------------------------------

    def _run_select(self, statement: ast.SelectStatement) -> QueryResult:
        relation = self._executor.execute(statement)
        return QueryResult(
            columns=relation.column_names() or ["result"],
            rows=relation.rows,
            rowcount=len(relation.rows),
            statement_type="SELECT",
        )

    # -- DML -------------------------------------------------------------------------------

    def _run_insert(self, statement: ast.InsertStatement) -> QueryResult:
        self._touch("statement.insert")
        table = self.database.get_table(statement.table)
        rows_to_insert: list[list[Any]] = []
        if statement.select is not None:
            relation = self._executor.execute(statement.select)
            rows_to_insert = [list(row) for row in relation.rows]
        else:
            rows_to_insert = self._insert_values(statement)

        inserted = 0
        for row in rows_to_insert:
            full_row = self._arrange_insert_row(table, statement.columns, row)
            table.insert_row(
                full_row,
                strict_types=self.dialect.strict_types,
                boolean_accepts_integers=self.dialect.boolean_accepts_integers,
            )
            inserted += 1
        return QueryResult(rowcount=inserted, status=f"INSERT {inserted}", statement_type="INSERT")

    def _insert_values(self, statement: ast.InsertStatement) -> list[list[Any]]:
        """Evaluate an INSERT's VALUES rows.

        All-literal rows (the overwhelmingly common case in recorded suites)
        are memoized on the statement AST: literal evaluation is dialect- and
        state-independent, and plans are shared process-wide, so replaying a
        suite on another host reuses the evaluated rows.  Values are immutable
        scalars and downstream code (row arrangement, coercion) never mutates
        the row lists, so sharing them is safe.
        """
        if perf_cache.caching_enabled():
            cached = getattr(statement, "_literal_rows", None)
            if cached is not None:
                return cached if cached is not _NOT_ALL_LITERALS else self._evaluate_insert_rows(statement)
            if all(type(expression) is ast.Literal for row in statement.rows for expression in row):
                rows = [[expression.value for expression in row] for row in statement.rows]
                statement._literal_rows = rows
                return rows
            statement._literal_rows = _NOT_ALL_LITERALS
        return self._evaluate_insert_rows(statement)

    def _evaluate_insert_rows(self, statement: ast.InsertStatement) -> list[list[Any]]:
        context = RowContext()
        return [
            [self._evaluator.evaluate(expression, context) for expression in row_expressions]
            for row_expressions in statement.rows
        ]

    def _arrange_insert_row(self, table: Table, columns: list[str], values: list[Any]) -> list[Any]:
        if not columns:
            if len(values) < len(table.columns):
                values = values + [None] * (len(table.columns) - len(values))
            return values
        positions = {name.lower(): index for index, name in enumerate(columns)}
        row: list[Any] = []
        for column in table.columns:
            index = positions.get(column.name.lower())
            if index is not None and index < len(values):
                row.append(values[index])
            elif column.has_default:
                row.append(column.default)
            else:
                row.append(None)
        unknown = set(positions) - {column.name.lower() for column in table.columns}
        if unknown:
            raise CatalogError(f"no such column: {sorted(unknown)[0]}")
        return row

    def _run_update(self, statement: ast.UpdateStatement) -> QueryResult:
        self._touch("statement.update")
        table = self.database.get_table(statement.table)
        relation = Relation.from_table(table, table.name)
        updated = self._update_rows_columnar(statement, table, relation)
        if updated is None:
            updated = 0
            for row_index, row in enumerate(table.rows):
                context = RowContext()
                for (qualifier, name), value in zip(relation.columns, row):
                    context.bind(name, value)
                    context.bind(f"{qualifier}.{name}", value)
                if statement.where is not None and not self._evaluator.evaluate_predicate(
                    statement.where, context
                ):
                    continue
                for column_name, expression in statement.assignments:
                    position = table.column_position(column_name)
                    new_value = self._evaluator.evaluate(expression, context)
                    table.rows[row_index][position] = coerce_to_declared(
                        new_value,
                        table.columns[position].type_name,
                        self.dialect.strict_types,
                        self.dialect.boolean_accepts_integers,
                    )
                updated += 1
        if updated:
            table.note_rows_mutated()
        if self._in_transaction:
            self._transaction_updates.add(table.name.lower())
        return QueryResult(rowcount=updated, status=f"UPDATE {updated}", statement_type="UPDATE")

    def _update_rows_columnar(
        self, statement: ast.UpdateStatement, table: Table, relation: Relation
    ) -> int | None:
        """Apply an UPDATE through compiled column programs.

        Returns the updated-row count, or None when any clause cannot be
        compiled — the caller then runs the scalar row-at-a-time pass, which
        preserves lazy error ordering (e.g. an unknown assignment column only
        raises once a row matches the WHERE clause).
        """
        if not vectorize.vectorize_enabled():
            return None
        columns_key, positions = columnar.relation_layout(relation)
        where_program = None
        if statement.where is not None:
            where_program = columnar.expression_program(statement.where, columns_key, positions, self.dialect)
            if where_program is None:
                return None
        compiled: list[tuple[int, Any]] = []
        try:
            for column_name, expression in statement.assignments:
                program = columnar.expression_program(expression, columns_key, positions, self.dialect)
                if program is None:
                    return None
                compiled.append((table.column_position(column_name), program))
        except CatalogError:
            return None
        evaluator = self._evaluator
        strict = self.dialect.strict_types
        bool_ints = self.dialect.boolean_accepts_integers
        updated = 0
        for row_index, row in enumerate(table.rows):
            if where_program is not None and not _predicate_truth(where_program(row, evaluator)):
                continue
            # evaluate every assignment against the *old* row (the scalar path
            # snapshots values into a RowContext before mutating), then swap in
            # the new row wholesale
            new_row = list(row)
            for position, program in compiled:
                new_row[position] = coerce_to_declared(
                    program(row, evaluator),
                    table.columns[position].type_name,
                    strict,
                    bool_ints,
                )
            table.rows[row_index] = new_row
            updated += 1
        return updated

    def _run_delete(self, statement: ast.DeleteStatement) -> QueryResult:
        self._touch("statement.delete")
        table = self.database.get_table(statement.table)
        relation = Relation.from_table(table, table.name)
        doomed = self._doomed_rows_columnar(statement, table, relation)
        if doomed is None:
            doomed = []
            for row_index, row in enumerate(table.rows):
                context = RowContext()
                for (qualifier, name), value in zip(relation.columns, row):
                    context.bind(name, value)
                    context.bind(f"{qualifier}.{name}", value)
                if statement.where is None or self._evaluator.evaluate_predicate(statement.where, context):
                    doomed.append(row_index)
        deleted = table.delete_rows(doomed)
        return QueryResult(rowcount=deleted, status=f"DELETE {deleted}", statement_type="DELETE")

    def _doomed_rows_columnar(
        self, statement: ast.DeleteStatement, table: Table, relation: Relation
    ) -> list[int] | None:
        """Collect DELETE row indexes through a compiled WHERE program."""
        if not vectorize.vectorize_enabled():
            return None
        if statement.where is None:
            return list(range(len(table.rows)))
        columns_key, positions = columnar.relation_layout(relation)
        program = columnar.expression_program(statement.where, columns_key, positions, self.dialect)
        if program is None:
            return None
        evaluator = self._evaluator
        return [
            row_index
            for row_index, row in enumerate(table.rows)
            if _predicate_truth(program(row, evaluator))
        ]

    # -- DDL --------------------------------------------------------------------------------

    def _run_create_table(self, statement: ast.CreateTableStatement) -> QueryResult:
        self._touch("statement.create_table")
        columns: list[Column] = []
        if statement.as_select is not None:
            relation = self._executor.execute(statement.as_select)
            columns = [Column(name=name) for name in relation.column_names()]
            table = Table(statement.name, columns)
            table.rows = [list(row) for row in relation.rows]
            self.database.create_table(table, if_not_exists=statement.if_not_exists)
            return QueryResult(status="CREATE TABLE", statement_type="CREATE TABLE")
        for definition in statement.columns:
            self._validate_column_type(definition)
            default_value = None
            has_default = definition.default is not None
            if has_default:
                default_value = self._evaluator.evaluate(definition.default, RowContext())
            columns.append(
                Column(
                    name=definition.name,
                    type_name=definition.type_name,
                    not_null=definition.not_null,
                    primary_key=definition.primary_key or definition.name in statement.primary_key_columns,
                    unique=definition.unique,
                    default=default_value,
                    has_default=has_default,
                )
            )
        self.database.create_table(Table(statement.name, columns), if_not_exists=statement.if_not_exists)
        return QueryResult(status="CREATE TABLE", statement_type="CREATE TABLE")

    def _validate_column_type(self, definition: ast.ColumnDefinition) -> None:
        if definition.type_name is None:
            return
        type_name = definition.type_name
        base = type_name.split("(")[0].strip().upper()
        self._touch(f"type.{base.lower()}")
        if self.dialect.requires_varchar_length and base == "VARCHAR" and "(" not in type_name:
            raise UnsupportedTypeError("VARCHAR requires a length in this dialect")
        if not self.dialect.supports_type(base):
            from repro.engine.values import is_known_type

            if self.dialect.strict_types or not is_known_type(type_name):
                raise UnsupportedTypeError(f"unknown data type: {type_name}")

    def _run_create_index(self, statement: ast.CreateIndexStatement) -> QueryResult:
        self._touch("statement.create_index")
        index = Index(name=statement.name, table=statement.table, columns=statement.columns, unique=statement.unique)
        self.database.create_index(index, if_not_exists=statement.if_not_exists)
        return QueryResult(status="CREATE INDEX", statement_type="CREATE INDEX")

    def _run_create_view(self, statement: ast.CreateViewStatement) -> QueryResult:
        self._touch("statement.create_view")
        self.database.create_view(
            View(name=statement.name, query=statement.query),
            if_not_exists=statement.if_not_exists,
            or_replace=statement.or_replace,
        )
        return QueryResult(status="CREATE VIEW", statement_type="CREATE VIEW")

    def _run_create_schema(self, statement: ast.CreateSchemaStatement) -> QueryResult:
        if "CREATE SCHEMA" in self.dialect.unsupported_statements:
            raise UnsupportedStatementError(f"{self.dialect.display_name} does not support CREATE SCHEMA")
        self._touch("statement.create_schema")
        self.database.create_schema(statement.name, if_not_exists=statement.if_not_exists)
        return QueryResult(status="CREATE SCHEMA", statement_type="CREATE SCHEMA")

    def _run_alter_schema(self, statement: ast.AlterSchemaStatement) -> QueryResult:
        if "ALTER SCHEMA" in self.dialect.unsupported_statements:
            raise UnsupportedStatementError(f"{self.dialect.display_name} does not support ALTER SCHEMA")
        self._touch("statement.alter_schema")
        self.database.rename_schema(statement.name, statement.new_name)
        return QueryResult(status="ALTER SCHEMA", statement_type="ALTER SCHEMA")

    def _run_drop(self, statement: ast.DropStatement) -> QueryResult:
        self._touch(f"statement.drop_{statement.object_kind.lower()}")
        kind = statement.object_kind
        if kind == "TABLE":
            self.database.drop_table(statement.name, if_exists=statement.if_exists)
        elif kind == "VIEW":
            self.database.drop_view(statement.name, if_exists=statement.if_exists)
        elif kind == "INDEX":
            self.database.drop_index(statement.name, if_exists=statement.if_exists)
        elif kind in ("SCHEMA", "DATABASE"):
            self.database.drop_schema(statement.name, if_exists=statement.if_exists)
        else:
            raise UnsupportedStatementError(f"DROP {kind} is not supported")
        return QueryResult(status=f"DROP {kind}", statement_type=f"DROP {kind}")

    def _run_alter_table(self, statement: ast.AlterTableStatement) -> QueryResult:
        self._touch("statement.alter_table")
        table = self.database.get_table(statement.table)
        if statement.action == "add_column" and statement.column is not None:
            self._validate_column_type(statement.column)
            default_value = None
            has_default = statement.column.default is not None
            if has_default:
                default_value = self._evaluator.evaluate(statement.column.default, RowContext())
            table.columns.append(
                Column(
                    name=statement.column.name,
                    type_name=statement.column.type_name,
                    not_null=statement.column.not_null,
                    default=default_value,
                    has_default=has_default,
                )
            )
            for row in table.rows:
                row.append(default_value)
            table.note_schema_changed()
        elif statement.action == "drop_column" and statement.old_column:
            position = table.column_position(statement.old_column)
            del table.columns[position]
            for row in table.rows:
                del row[position]
            table.note_schema_changed()
        elif statement.action == "rename_to" and statement.new_name:
            self.database.rename_table(statement.table, statement.new_name)
        elif statement.action == "rename_column" and statement.old_column and statement.new_name:
            position = table.column_position(statement.old_column)
            table.columns[position].name = statement.new_name
            table.note_schema_changed()
        else:
            raise UnsupportedStatementError(f"unsupported ALTER TABLE action: {statement.action}")
        return QueryResult(status="ALTER TABLE", statement_type="ALTER TABLE")

    # -- transactions ---------------------------------------------------------------------------

    def _run_transaction(self, statement: ast.TransactionStatement) -> QueryResult:
        action = statement.action
        self._touch(f"transaction.{action}")
        if action == "start_transaction" and not self.dialect.supports_start_transaction:
            raise UnsupportedStatementError(f"{self.dialect.display_name} does not support START TRANSACTION syntax")
        if action in ("begin", "start_transaction"):
            if self._in_transaction:
                if self.dialect.name == "sqlite":
                    raise TransactionError("cannot start a transaction within a transaction")
                # PostgreSQL and friends emit a warning and continue.
                return QueryResult(status="BEGIN", statement_type="BEGIN")
            self._in_transaction = True
            self._transaction_updates.clear()
            self._snapshot = self.database.snapshot()
            return QueryResult(status="BEGIN", statement_type="BEGIN")
        if action == "commit":
            if not self._in_transaction:
                if self.dialect.name in ("sqlite",):
                    raise TransactionError("cannot commit - no transaction is active")
                return QueryResult(status="COMMIT", statement_type="COMMIT")
            self._in_transaction = False
            self._snapshot = None
            self._savepoints.clear()
            self._recently_committed_updates = set(self._transaction_updates)
            self._transaction_updates.clear()
            return QueryResult(status="COMMIT", statement_type="COMMIT")
        if action == "rollback":
            if not self._in_transaction:
                if self.dialect.name in ("sqlite",):
                    raise TransactionError("cannot rollback - no transaction is active")
                return QueryResult(status="ROLLBACK", statement_type="ROLLBACK")
            if self._snapshot is not None:
                self.database.restore(self._snapshot)
                self._executor.database = self.database
            self._in_transaction = False
            self._snapshot = None
            self._savepoints.clear()
            self._transaction_updates.clear()
            return QueryResult(status="ROLLBACK", statement_type="ROLLBACK")
        if action == "savepoint":
            self._savepoints.append((statement.name or "", self.database.snapshot()))
            return QueryResult(status="SAVEPOINT", statement_type="SAVEPOINT")
        if action == "rollback_to":
            for name, snapshot in reversed(self._savepoints):
                if name == (statement.name or ""):
                    self.database.restore(snapshot)
                    self._executor.database = self.database
                    return QueryResult(status="ROLLBACK", statement_type="ROLLBACK")
            raise TransactionError(f"no such savepoint: {statement.name}")
        if action == "release":
            self._savepoints = [entry for entry in self._savepoints if entry[0] != (statement.name or "")]
            return QueryResult(status="RELEASE", statement_type="RELEASE SAVEPOINT")
        raise UnsupportedStatementError(f"unsupported transaction action: {action}")

    # -- settings -----------------------------------------------------------------------------------

    def _run_set(self, statement: ast.SetStatement) -> QueryResult:
        name = statement.name.lower()
        if statement.is_pragma:
            if not self.dialect.supports_pragma:
                raise UnsupportedStatementError(f"{self.dialect.display_name} does not support PRAGMA statements")
            self._touch("statement.pragma")
            if not self.dialect.supports_setting(name):
                if self.dialect.ignores_unknown_pragma:
                    return QueryResult(status="PRAGMA", statement_type="PRAGMA")
                raise ConfigurationError(f"unrecognized pragma: {name}")
        else:
            if not self.dialect.supports_set:
                raise UnsupportedStatementError(f"{self.dialect.display_name} does not support SET statements")
            self._touch("statement.set")
            if not self.dialect.supports_setting(name) and self.dialect.rejects_unknown_setting:
                raise ConfigurationError(f'unrecognized configuration parameter "{name}"')
        value: Any = None
        if statement.value is not None:
            value = self._evaluator.evaluate(statement.value, RowContext())
        self.settings[name] = value
        if name == "seed" and value is not None:
            try:
                self._functions.reseed(int(float(value)))
            except (TypeError, ValueError):
                pass
        result_type = "PRAGMA" if statement.is_pragma else "SET"
        if statement.is_pragma and statement.value is None and self.dialect.supports_setting(name):
            # PRAGMA used as a query returns the current value.
            current = self.settings.get(name)
            return QueryResult(columns=[name], rows=[[current]], rowcount=1, statement_type="PRAGMA")
        return QueryResult(status=result_type, statement_type=result_type)

    def _run_show(self, statement: ast.ShowStatement) -> QueryResult:
        if "SHOW" not in self.dialect.extra_statements:
            raise UnsupportedStatementError(f"{self.dialect.display_name} does not support SHOW statements")
        self._touch("statement.show")
        name = statement.name.lower()
        if name in ("tables", "all tables"):
            rows = [[table] for table in sorted(self.database.tables)]
            return QueryResult(columns=["name"], rows=rows, rowcount=len(rows), statement_type="SHOW")
        value = self.settings.get(name)
        if value is None and not self.dialect.supports_setting(name):
            raise ConfigurationError(f'unrecognized configuration parameter "{name}"')
        return QueryResult(columns=[name], rows=[[value]], rowcount=1, statement_type="SHOW")

    # -- EXPLAIN / COPY -------------------------------------------------------------------------------

    def _run_explain(self, statement: ast.ExplainStatement) -> QueryResult:
        if "EXPLAIN" not in self.dialect.extra_statements and self.dialect.name != "sqlite":
            raise UnsupportedStatementError(f"{self.dialect.display_name} does not support EXPLAIN")
        self._touch("statement.explain")
        inner = statement.statement
        target = "unknown"
        if isinstance(inner, ast.SelectStatement):
            tables = [ref.name for ref in inner.core.from_tables if ref.name]
            target = ", ".join(tables) if tables else "expression"
        plan_lines = self._format_plan(target)
        return QueryResult(columns=["plan"], rows=[[line] for line in plan_lines], rowcount=len(plan_lines), statement_type="EXPLAIN")

    def _format_plan(self, target: str) -> list[str]:
        style = self.dialect.explain_style
        output_mode = str(self.settings.get("explain_output", "physical")).lower()
        if style == "postgres":
            return [f"Seq Scan on {target}  (cost=0.00..1.00 rows=1 width=4)"]
        if style == "duckdb":
            if "optimized" in output_mode:
                return ["┌───────────────────────────┐", f"│      OPTIMIZED PLAN: {target}     │", "└───────────────────────────┘"]
            return ["┌───────────────────────────┐", f"│      SEQ_SCAN {target}        │", "└───────────────────────────┘"]
        if style == "mysql":
            return [f"-> Table scan on {target}  (cost=0.35 rows=1)"]
        return [f"SCAN {target}"]

    def _run_copy(self, statement: ast.CopyStatement) -> QueryResult:
        if "COPY" in self.dialect.unsupported_statements or "COPY" not in self.dialect.extra_statements:
            raise UnsupportedStatementError(f"{self.dialect.display_name} does not support COPY")
        self._touch("statement.copy")
        # File access is environment-dependent; the paper's RQ3 classifies these
        # failures as File Paths.  MiniDB has no filesystem, so loading fails.
        raise DatabaseError(f"could not open file {statement.source!r} for {statement.direction.upper()}: no such file or directory")


def connect(dialect: DialectProfile | str = "sqlite", enable_faults: bool = True, seed: int = 0) -> Session:
    """Create a new MiniDB session for the given dialect."""
    return Session(dialect=dialect, enable_faults=enable_faults, seed=seed)
