"""Deprecated import shim — the PostgreSQL parser now lives in :mod:`repro.formats.postgres`.

Kept so seed-era imports keep working; new code should go through the format
registry (:func:`repro.formats.get_format`).  Importing it warns with
:class:`DeprecationWarning`; the shim is scheduled for removal two release
cycles after the streaming-engine release (see docs/ARCHITECTURE.md,
"Deprecations").
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.core.parser_postgres is deprecated; import from repro.formats.postgres "
    "or use repro.formats.get_format('postgres')",
    DeprecationWarning,
    stacklevel=2,
)

from repro.formats.postgres import (
    _ERROR_LINE,
    _ROW_COUNT,
    PostgresFormat,
    _Expectation,
    _Fragment,
    _interpret_block,
    _looks_like_result_line,
    _looks_like_statement_echo,
    _parse_out_file,
    _split_script,
    parse_postgres_file,
    parse_postgres_text,
)

__all__ = [
    "parse_postgres_text",
    "parse_postgres_file",
    "PostgresFormat",
    "_split_script",
    "_parse_out_file",
    "_interpret_block",
    "_looks_like_statement_echo",
    "_looks_like_result_line",
    "_Expectation",
    "_Fragment",
    "_ROW_COUNT",
    "_ERROR_LINE",
]
