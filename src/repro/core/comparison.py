"""Result comparison: validating actual query results against expectations.

The comparison rules implement both the SLT conventions (value-wise results,
``I``/``R``/``T`` type strings, ``rowsort``/``valuesort`` sort modes, hashed
results, NULL rendered as ``NULL`` and the empty string as ``(empty)``) and
row-wise comparison for the DuckDB / MySQL / PostgreSQL formats.

Two float-comparison modes exist because of the paper's Listing 10 finding:
SQuaLity demands exact matches (``float_tolerance=0``), whereas DuckDB's own
runner accepts a 1% relative deviation.  The ablation benchmark quantifies the
difference.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

from repro.adapters.base import ExecutionOutcome
from repro.core.records import QueryRecord, ResultFormat, SortMode
from repro.perf import cache as perf_cache


@dataclass
class ComparisonResult:
    """Outcome of comparing one query's actual result against its expectation."""

    matches: bool
    reason: str = ""
    expected_preview: list[str] = field(default_factory=list)
    actual_preview: list[str] = field(default_factory=list)
    mismatch_kind: str = ""  # "row_count" | "value" | "hash" | "format"


def normalize_value(value: Any, type_code: str = "T") -> str:
    """Render one actual result value the way SQuaLity's connector-based runner does.

    Integer-typed (``I``) columns render integers as integers — but a *float*
    coming back from the connector stays a float (``-31.0``), exactly like the
    Python connectors the paper uses.  This is deliberate: it is what makes
    every ``/`` query of SLT fail on DuckDB/MySQL (the paper's 104K semantic
    failures), because those dialects return decimal results for integer
    division.  ``R`` columns are formatted to three decimals (the SLT
    convention) and empty text renders as ``(empty)``.
    """
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        value = int(value)
    if type_code == "I":
        if isinstance(value, int):
            return str(value)
        if isinstance(value, float):
            return repr(value)
        try:
            return str(int(str(value)))
        except (TypeError, ValueError):
            return str(value)
    if type_code == "R":
        try:
            return f"{float(value):.3f}"
        except (TypeError, ValueError):
            return str(value)
    if isinstance(value, float):
        return repr(value)
    text = str(value)
    if text == "":
        return "(empty)"
    return text


def _actual_values(outcome: ExecutionOutcome, type_string: str) -> list[list[str]]:
    """Canonicalise the actual rows using the record's type string.

    The per-position type code is resolved once per row *shape* instead of per
    cell (the seed re-indexed ``type_string`` with two bounds checks for every
    value of every row).
    """
    state = outcome.__dict__
    normalize = normalize_value
    default_code = type_string[-1] if type_string else "T"
    typed = len(type_string)
    if "rows" not in state:
        # codec v2 backing state: normalise whole columns (one type code per
        # column) and only then zip into rows — no row reassembly beforehand
        count = state.get("_row_count")
        if count is not None:
            columns = state.get("_row_columns")
            if columns is None or not count:
                return [[] for _ in range(count)]
            normalized_columns = [
                [normalize(value, type_string[position] if position < typed else default_code) for value in column]
                for position, column in enumerate(columns)
            ]
            return [list(row) for row in zip(*normalized_columns)]
    rows = outcome.rows
    if not rows:
        return []
    codes: list[str] = []
    normalized_rows: list[list[str]] = []
    for row in rows:
        if len(row) != len(codes):
            codes = [type_string[position] if position < typed else default_code for position in range(len(row))]
        normalized_rows.append([normalize(value, code) for value, code in zip(row, codes)])
    return normalized_rows


def _expected_values_str(record: QueryRecord) -> list[str]:
    """``str()`` of every expected value, memoized on the record.

    Every record is compared once per host per campaign flavour (8+ times in
    a full matrix), and the expectation never changes after parsing.  The memo
    rides on the record object itself (a non-field attribute: invisible to
    dataclass equality, ``canonical_bytes``, and the store keys) and is
    bypassed — not just cold — when caching is globally disabled, keeping the
    seed-equivalent path honest.
    """
    if not perf_cache.caching_enabled():
        return [str(value) for value in record.expected_values]
    cached = getattr(record, "_expected_values_str", None)
    if cached is None:
        cached = [str(value) for value in record.expected_values]
        record._expected_values_str = cached
    return cached


def _expected_rows_str(record: QueryRecord, rowsort: bool) -> list[list[str]]:
    """Stringified (optionally row-sorted) expected rows, memoized per record."""
    if not perf_cache.caching_enabled():
        rows = [[str(cell) for cell in row] for row in record.expected_rows]
        return sorted(rows) if rowsort else rows
    attribute = "_expected_rows_sorted" if rowsort else "_expected_rows_str"
    cached = getattr(record, attribute, None)
    if cached is None:
        cached = [[str(cell) for cell in row] for row in record.expected_rows]
        if rowsort:
            cached = sorted(cached)
        setattr(record, attribute, cached)
    return cached


def _apply_sort(rows: list[list[str]], sort_mode: SortMode) -> list[str]:
    """Flatten rows to a value list after applying the SLT sort mode."""
    if sort_mode is SortMode.ROWSORT:
        rows = sorted(rows, key=lambda row: [str(cell) for cell in row])
        return [value for row in rows for value in row]
    values = [value for row in rows for value in row]
    if sort_mode is SortMode.VALUESORT:
        return sorted(values, key=str)
    return values


def result_hash(values: list[str]) -> str:
    """MD5 over the canonical value list, newline-terminated (SLT convention)."""
    payload = "\n".join(values) + "\n"
    return hashlib.md5(payload.encode()).hexdigest()


def _floats_close(expected: str, actual: str, tolerance: float) -> bool:
    """Numeric comparison used only when a tolerance is configured.

    With ``tolerance=0`` (SQuaLity's exact mode) this never fires: values must
    match as strings, so ``31`` vs ``31.0`` is a failure — reproducing the
    client/semantic discrepancies the paper reports.  A positive tolerance
    models DuckDB's native runner (1% relative deviation accepted).
    """
    if tolerance <= 0:
        return False
    try:
        expected_number = float(expected)
        actual_number = float(actual)
    except ValueError:
        return False
    if expected_number == actual_number:
        return True
    scale = max(abs(expected_number), abs(actual_number), 1e-12)
    return abs(expected_number - actual_number) / scale <= tolerance


def compare_query_result(
    record: QueryRecord,
    outcome: ExecutionOutcome,
    float_tolerance: float = 0.0,
) -> ComparisonResult:
    """Compare the actual ``outcome`` of a query against ``record``'s expectation."""
    actual_rows = _actual_values(outcome, record.type_string)

    if record.result_format is ResultFormat.HASH:
        values = _apply_sort(actual_rows, record.sort_mode)
        if len(values) != record.expected_hash_count:
            return ComparisonResult(
                matches=False,
                reason=f"expected {record.expected_hash_count} values, got {len(values)}",
                mismatch_kind="row_count",
            )
        digest = result_hash(values)
        if digest != record.expected_hash:
            return ComparisonResult(matches=False, reason="hash mismatch", mismatch_kind="hash")
        return ComparisonResult(matches=True)

    if record.result_format is ResultFormat.ROW_WISE or record.expected_rows:
        rowsort = record.sort_mode is SortMode.ROWSORT
        expected_rows = _expected_rows_str(record, rowsort)
        # _actual_values already rendered every cell to str: no re-copy needed
        candidate_rows = sorted(actual_rows) if rowsort else actual_rows
        if len(expected_rows) != len(candidate_rows):
            return ComparisonResult(
                matches=False,
                reason=f"expected {len(expected_rows)} rows, got {len(candidate_rows)}",
                expected_preview=["\t".join(row) for row in expected_rows[:5]],
                actual_preview=["\t".join(row) for row in candidate_rows[:5]],
                mismatch_kind="row_count",
            )
        for expected_row, actual_row in zip(expected_rows, candidate_rows):
            if len(expected_row) != len(actual_row):
                return ComparisonResult(
                    matches=False,
                    reason=f"expected {len(expected_row)} columns, got {len(actual_row)}",
                    mismatch_kind="format",
                )
            for expected_cell, actual_cell in zip(expected_row, actual_row):
                if expected_cell == actual_cell:
                    continue
                if _floats_close(expected_cell, actual_cell, float_tolerance):
                    continue
                return ComparisonResult(
                    matches=False,
                    reason=f"value mismatch: expected {expected_cell!r}, got {actual_cell!r}",
                    expected_preview=["\t".join(row) for row in expected_rows[:5]],
                    actual_preview=["\t".join(row) for row in candidate_rows[:5]],
                    mismatch_kind="value",
                )
        return ComparisonResult(matches=True)

    # value-wise comparison (the original SLT form)
    expected_values = _expected_values_str(record)
    actual_values = _apply_sort(actual_rows, record.sort_mode)
    if record.sort_mode is not SortMode.NOSORT:
        expected_values = sorted(expected_values, key=str) if record.sort_mode is SortMode.VALUESORT else expected_values
    if len(expected_values) != len(actual_values):
        return ComparisonResult(
            matches=False,
            reason=f"expected {len(expected_values)} values, got {len(actual_values)}",
            expected_preview=expected_values[:10],
            actual_preview=actual_values[:10],
            mismatch_kind="row_count",
        )
    for expected_value, actual_value in zip(expected_values, actual_values):
        if expected_value == actual_value:
            continue
        if _floats_close(expected_value, actual_value, float_tolerance):
            continue
        return ComparisonResult(
            matches=False,
            reason=f"value mismatch: expected {expected_value!r}, got {actual_value!r}",
            expected_preview=expected_values[:10],
            actual_preview=actual_values[:10],
            mismatch_kind="value",
        )
    return ComparisonResult(matches=True)
