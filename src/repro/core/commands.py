"""Runner-command semantics: the non-SQL commands SQuaLity interprets.

The paper's RQ1 catalogue distinguishes four feature families (Table 2):
environmental settings (*Include*, *Set Variable*, *Load*), execution-flow
control (*Loop*, *Skiptest*), multi-connection support, and client/CLI
commands.  SQuaLity interprets the commonly-used subset and records — but
deliberately does not execute — the rest (psql meta-commands, MySQL file/shell
operations), mirroring the paper's implementation decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.records import ControlRecord

#: Commands the unified runner interprets.
INTERPRETED_COMMANDS = frozenset(
    {
        "halt",
        "hash-threshold",
        "skipif",
        "onlyif",
        "mode",
        "require",
        "load",
        "loop",
        "endloop",
        "set",
        "let",
        "sleep",
        "restart",
        "reconnect",
        "include",
        "source",
        "disable_warnings",
        "enable_warnings",
        "disable_query_log",
        "enable_query_log",
        "disable_result_log",
        "enable_result_log",
        "echo",
        "error",
    }
)

#: Commands we recognise but treat as unsupported environment interactions
#: (file operations, shell access, server control) — executing them would tie
#: the runner to one environment, the exact reuse obstacle RQ3 documents.
ENVIRONMENT_COMMANDS = frozenset(
    {
        "exec",
        "system",
        "write_file",
        "append_file",
        "remove_file",
        "copy_file",
        "chmod",
        "mkdir",
        "rmdir",
        "shutdown_server",
        "restart_server",
        "wait_for_slave_to_stop",
        "perl",
        "cat_file",
        "list_files",
        "move_file",
        "change_user",
        "connect",
        "connection",
        "disconnect",
    }
)


@dataclass
class RunnerState:
    """Mutable state carried across the records of one test file."""

    host: str
    available_extensions: set[str] = field(default_factory=set)
    variables: dict[str, str] = field(default_factory=dict)
    halted: bool = False
    skipping: bool = False           # ``mode skip`` .. ``mode unskip``
    prefiltered: bool = False        # an unmet ``require`` halts the rest of the file
    hash_threshold: int = 8
    statements_skipped: int = 0

    def substitute(self, sql: str) -> str:
        """Replace ``$var`` / ``${var}`` occurrences with bound variables."""
        for name, value in self.variables.items():
            sql = sql.replace("${" + name + "}", value).replace("$" + name, value)
        return sql


@dataclass
class CommandEffect:
    """What interpreting one control record did."""

    handled: bool = True
    skip_rest_of_file: bool = False
    reset_connection: bool = False
    note: str = ""


def apply_control_record(record: ControlRecord, state: RunnerState) -> CommandEffect:
    """Interpret one control record, updating ``state`` in place."""
    command = record.command.lower()

    if command == "halt":
        state.halted = True
        return CommandEffect(skip_rest_of_file=True, note="halt")

    if command in ("hash-threshold",):
        if record.arguments:
            try:
                state.hash_threshold = int(record.arguments[0])
            except ValueError:
                pass
        return CommandEffect()

    if command == "mode":
        argument = record.arguments[0].lower() if record.arguments else ""
        if argument == "skip":
            state.skipping = True
        elif argument == "unskip":
            state.skipping = False
        return CommandEffect()

    if command == "require":
        required = record.arguments[0].lower() if record.arguments else ""
        if required and required not in state.available_extensions:
            state.prefiltered = True
            return CommandEffect(skip_rest_of_file=True, note=f"extension {required!r} not loaded")
        return CommandEffect()

    if command in ("load",):
        # Loading external data files depends on the developer's environment
        # (RQ3 "File Paths"); the unified runner skips them.
        return CommandEffect(note="load skipped: no external data available")

    if command in ("set", "let"):
        if record.arguments:
            text = " ".join(record.arguments)
            if "=" in text:
                name, _, value = text.partition("=")
                state.variables[name.strip().lstrip("$")] = value.strip().strip("'\"")
        return CommandEffect()

    if command in ("sleep",):
        return CommandEffect(note="sleep elided")

    if command in ("restart", "reconnect"):
        return CommandEffect(reset_connection=True)

    if command in ("include", "source"):
        # Includes refer to files shared inside the donor's source tree; they
        # are unavailable once test cases are transplanted (RQ3).
        return CommandEffect(note="include skipped: referenced file not transplanted")

    if command.startswith("psql:"):
        # psql meta-commands are executed by the CLI client, not the runner
        # (Section 3); SQuaLity records them without interpreting them.
        return CommandEffect(handled=False, note=f"psql meta-command {command[5:]!r} not interpreted")

    if command in ENVIRONMENT_COMMANDS:
        return CommandEffect(handled=False, note=f"environment command {command!r} not interpreted")

    if command in ("loop", "endloop", "foreach", "endfor"):
        # Loops are expanded at parse time by the DuckDB parser.
        return CommandEffect()

    if command in INTERPRETED_COMMANDS:
        return CommandEffect()

    return CommandEffect(handled=False, note=f"unknown runner command {command!r}")
