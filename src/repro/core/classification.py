"""Failure classification: the RQ3 dependency and RQ4 incompatibility taxonomies.

Two classifiers are provided, mirroring the paper's two analyses:

* :func:`classify_dependency` assigns a donor-on-donor failure to the RQ3
  categories of Table 5 — Environment (File Paths / Setting / Set Up),
  Extension, Client (Format / Numeric / Exception), and Misc (Runner).
* :func:`classify_incompatibility` assigns a cross-DBMS failure to the RQ4
  categories of Table 6 — Statements, Functions, Types, Operators,
  Configurations, Semantic, and Misc (with crashes and timeouts counted
  separately).

The classifiers combine the structured exception types raised by MiniDB with
message-pattern rules for the real ``sqlite3`` engine, following the paper's
advice that error-message patterns are a practical way to triage failures
(Section 9, "Supporting a new DBMS").
"""

from __future__ import annotations

import enum
import re
from collections import Counter
from dataclasses import dataclass

from repro.core.records import QueryRecord
from repro.core.runner import RecordOutcome, RecordResult
from repro.sqlparser.analyzer import extract_function_names, referenced_settings, uses_cast_operator
from repro.sqlparser.statements import statement_type, is_standard_statement


class DependencyCategory(enum.Enum):
    """RQ3 (Table 5) dependency categories for donor-on-donor failures."""

    FILE_PATHS = "File Paths"
    SETTING = "Setting"
    SETUP = "Set Up"
    EXTENSION = "Extension"
    CLIENT_FORMAT = "Format"
    CLIENT_NUMERIC = "Numeric"
    CLIENT_EXCEPTION = "Exception"
    RUNNER = "Runner"


class IncompatibilityCategory(enum.Enum):
    """RQ4 (Table 6) incompatibility categories for cross-DBMS failures."""

    STATEMENTS = "Statements"
    FUNCTIONS = "Functions"
    TYPES = "Types"
    OPERATORS = "Operators"
    CONFIGURATIONS = "Configurations"
    SEMANTIC = "Semantic"
    MISC = "Misc"


class DifficultyCategory(enum.Enum):
    """RQ4 (Table 7) roll-up: what makes a failing test case hard to reuse."""

    DIALECT_FEATURE = "Dialect-specific features"
    SYNTAX = "Syntax differences"
    SEMANTIC = "Semantic differences"


@dataclass
class ClassifiedFailure:
    """A failure together with its assigned category."""

    result: RecordResult
    category: enum.Enum
    detail: str = ""


_FILE_PATTERNS = re.compile(r"no such file|could not open file|cannot open|not found.*\.csv|\.dat", re.IGNORECASE)
_EXTENSION_PATTERNS = re.compile(r"regress|extension|\.so|shared library|not loaded", re.IGNORECASE)
_SETTING_PATTERNS = re.compile(r"lc_|locale|encoding|datestyle|timezone|search_path|client_min_messages", re.IGNORECASE)
_MISSING_OBJECT = re.compile(r"no such (table|column|view|index)|does not exist|not found", re.IGNORECASE)
_SYNTAX_ERROR = re.compile(r"syntax error|unrecognized token|parse error|near \"", re.IGNORECASE)
_FUNCTION_ERROR = re.compile(r"no such function|function .* (is|are) (recognised|not)|unknown function|not a function", re.IGNORECASE)
_TYPE_ERROR = re.compile(r"unknown data type|could not convert|invalid .*type|requires a length|cannot cast|invalid boolean", re.IGNORECASE)
_OPERATOR_ERROR = re.compile(r"operator|:: cast|DIV operator", re.IGNORECASE)
_CONFIG_ERROR = re.compile(r"unrecognized configuration|unrecognized pragma|does not support (SET|PRAGMA|SHOW)|unknown system", re.IGNORECASE)
_STATEMENT_ERROR = re.compile(r"does not support .* statements|not implemented|unsupported statement|must not appear within a subquery", re.IGNORECASE)


_SQL_FILE_PATTERNS = re.compile(r"read_csv|read_parquet|copy\s|from\s+'[^']*/|\.csv|\.data|\.dat\b", re.IGNORECASE)
_RUNNER_DIRECTIVE_WORDS = frozenset({"hash-threshold", "halt", "reconnect", "restart", "mode", "require", "loop", "endloop"})


def classify_dependency(result: RecordResult) -> DependencyCategory:
    """Classify a donor-on-donor failure into the RQ3 categories of Table 5."""
    error = (result.error or "").lower()
    sql = result.sql or ""
    first_word = sql.split()[0].lower() if sql.split() else ""
    stype = statement_type(sql)

    if result.error_type in ("UnknownCommandError",) or first_word in _RUNNER_DIRECTIVE_WORDS:
        return DependencyCategory.RUNNER
    if _FILE_PATTERNS.search(error) or _SQL_FILE_PATTERNS.search(sql) or stype == "COPY":
        return DependencyCategory.FILE_PATHS
    if _EXTENSION_PATTERNS.search(error) or stype in ("CREATE FUNCTION", "CREATE EXTENSION", "LOAD"):
        return DependencyCategory.EXTENSION
    if (
        _SETTING_PATTERNS.search(error)
        or result.error_type == "ConfigurationError"
        or stype in ("SHOW", "SET", "PRAGMA")
        or referenced_settings(sql)
    ):
        return DependencyCategory.SETTING
    if result.error_type in ("CatalogError",) or _MISSING_OBJECT.search(error):
        return DependencyCategory.SETUP
    if result.outcome is RecordOutcome.FAIL and not result.error:
        # A result mismatch without an error.  If the query reads from a table,
        # the data is not what the donor environment had (earlier set-up steps
        # such as data loads did not take effect) — the paper's Set Up class.
        # Constant queries that render differently are client differences.
        references_table = " from " in f" {sql.lower()} " and "from (" not in sql.lower()
        comparison = result.comparison
        if references_table and not _looks_numeric_mismatch(result.reason):
            return DependencyCategory.SETUP
        if comparison is not None and comparison.mismatch_kind == "value" and _looks_numeric_mismatch(comparison.reason):
            return DependencyCategory.CLIENT_NUMERIC
        return DependencyCategory.CLIENT_FORMAT
    if result.error:
        return DependencyCategory.CLIENT_EXCEPTION
    return DependencyCategory.RUNNER


def _looks_numeric_mismatch(reason: str) -> bool:
    numbers = re.findall(r"-?\d+(?:\.\d+)?(?:e-?\d+)?", reason)
    if len(numbers) < 2:
        return False
    try:
        first, second = float(numbers[-2]), float(numbers[-1])
    except ValueError:
        return False
    if first == second:
        return False
    scale = max(abs(first), abs(second), 1e-12)
    return abs(first - second) / scale < 0.05


def classify_incompatibility(result: RecordResult) -> IncompatibilityCategory:
    """Classify a cross-DBMS failure into the RQ4 categories of Table 6."""
    error = result.error or ""
    error_type = result.error_type or ""
    sql = result.sql or ""

    if error_type == "UnsupportedStatementError" or _STATEMENT_ERROR.search(error):
        return IncompatibilityCategory.STATEMENTS
    if error_type == "UnsupportedFunctionError" or _FUNCTION_ERROR.search(error):
        return IncompatibilityCategory.FUNCTIONS
    if error_type in ("UnsupportedTypeError", "ConversionError") or _TYPE_ERROR.search(error):
        return IncompatibilityCategory.TYPES
    if error_type == "UnsupportedOperatorError":
        return IncompatibilityCategory.OPERATORS
    if error_type == "ConfigurationError" or _CONFIG_ERROR.search(error):
        return IncompatibilityCategory.CONFIGURATIONS
    if error_type in ("SQLSyntaxError", "OperationalError") or _SYNTAX_ERROR.search(error):
        # syntax-level rejection: distinguish operator-ish constructs from
        # genuinely unsupported statements
        if uses_cast_operator(sql) or " div " in sql.lower() or "||" in sql:
            return IncompatibilityCategory.OPERATORS
        stype = statement_type(sql)
        if not is_standard_statement(stype):
            return IncompatibilityCategory.STATEMENTS
        return IncompatibilityCategory.STATEMENTS
    if error_type in ("CatalogError",) or _MISSING_OBJECT.search(error):
        # a table/function created by an earlier, dialect-specific statement is
        # missing: the root cause is the earlier statement-level incompatibility
        if extract_function_names(sql):
            return IncompatibilityCategory.FUNCTIONS
        return IncompatibilityCategory.STATEMENTS
    if result.outcome is RecordOutcome.FAIL and not error:
        # executed fine, produced a different result: semantic difference
        if referenced_settings(sql):
            return IncompatibilityCategory.CONFIGURATIONS
        return IncompatibilityCategory.SEMANTIC
    return IncompatibilityCategory.MISC


def classify_difficulty(result: RecordResult) -> DifficultyCategory:
    """Roll a failure up into the Table 7 difficulty classes."""
    category = classify_incompatibility(result)
    if category is IncompatibilityCategory.SEMANTIC:
        return DifficultyCategory.SEMANTIC
    if category in (IncompatibilityCategory.STATEMENTS, IncompatibilityCategory.FUNCTIONS, IncompatibilityCategory.TYPES, IncompatibilityCategory.CONFIGURATIONS):
        # dialect-specific feature (the host simply lacks it)
        sql = result.sql or ""
        stype = statement_type(sql)
        if is_standard_statement(stype) and category is IncompatibilityCategory.STATEMENTS:
            return DifficultyCategory.SYNTAX
        return DifficultyCategory.DIALECT_FEATURE
    return DifficultyCategory.SYNTAX


def classify_failures(
    results: list[RecordResult],
    scheme: str = "incompatibility",
) -> list[ClassifiedFailure]:
    """Classify every FAIL result under the chosen scheme."""
    classifier = {
        "incompatibility": classify_incompatibility,
        "dependency": classify_dependency,
        "difficulty": classify_difficulty,
    }[scheme]
    classified = []
    for result in results:
        if result.outcome is not RecordOutcome.FAIL:
            continue
        classified.append(ClassifiedFailure(result=result, category=classifier(result), detail=result.reason))
    return classified


def category_histogram(classified: list[ClassifiedFailure]) -> Counter:
    """Count failures per category (for the Table 5/6/7 rows)."""
    return Counter(failure.category for failure in classified)


def sample_failures(results: list[RecordResult], sample_size: int = 100, seed: int = 0) -> list[RecordResult]:
    """Random sample of failing results (the paper samples 100 per pair)."""
    import random

    failures = [result for result in results if result.outcome is RecordOutcome.FAIL]
    if len(failures) <= sample_size:
        return failures
    rng = random.Random(seed)
    return rng.sample(failures, sample_size)


def unexpected_status_share(results: list[RecordResult]) -> float:
    """Fraction of failures due to unexpected execution *status* (vs. wrong results).

    The paper reports 16.6% for SLT and ~95% for the DuckDB/PostgreSQL suites
    (Section 6, "Failed cases").
    """
    failures = [result for result in results if result.outcome is RecordOutcome.FAIL]
    if not failures:
        return 0.0
    status_failures = sum(1 for result in failures if result.error or not isinstance(result.record, QueryRecord))
    return status_failures / len(failures)
