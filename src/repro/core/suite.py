"""Loading native-format test files and suites into the unified IR.

This module is a thin facade over :mod:`repro.formats` — the registry-driven
format subsystem — kept so existing imports (``repro.core.suite.load_suite``)
stay stable.  Formats are resolved exclusively through the registry; passing
``suite_format=None`` auto-detects the format per file via
:func:`repro.formats.detect_format`.
"""

from __future__ import annotations

import os

from repro.core.records import TestFile, TestSuite


def supported_formats() -> list[str]:
    """Names of the test-suite formats SQuaLity can parse (including aliases)."""
    from repro.formats import available_formats

    return available_formats(include_aliases=True)


def parse_test_file(path: str, suite_format: str | None = None) -> TestFile:
    """Parse the test file at ``path`` (auto-detecting the format when unnamed)."""
    from repro.formats import parse_test_file as _parse_test_file

    return _parse_test_file(path, suite_format)


def parse_test_text(text: str, suite_format: str | None = None, path: str = "<memory>", **kwargs) -> TestFile:
    """Parse in-memory test text (auto-detecting the format when unnamed)."""
    from repro.formats import parse_test_text as _parse_test_text

    return _parse_test_text(text, suite_format, path=path, **kwargs)


def load_suite(
    directory: str,
    suite_format: str | None = None,
    name: str | None = None,
    limit: int | None = None,
) -> TestSuite:
    """Load every test file under ``directory`` in the given native format.

    With ``suite_format=None`` every registered format's extensions are
    collected and each file's format is sniffed individually.  ``limit``
    truncates the suite (useful for benchmark warm-ups).  Expected output
    files (``.out`` / ``.result``) are paired automatically by the per-format
    parsers and are not loaded as test files themselves.
    """
    from repro.formats import get_format, parse_test_file as _parse_detected, registered_parsers

    if suite_format is None:
        parser = None
        extensions = tuple({extension for candidate in registered_parsers() for extension in candidate.extensions})
    else:
        parser = get_format(suite_format)
        extensions = parser.extensions
    suite = TestSuite(name=name or suite_format or "detected")
    paths: list[str] = []
    for root, _dirs, files in os.walk(directory):
        if os.path.basename(root) in ("expected", "r"):
            continue  # output directories of the PostgreSQL / MySQL layouts
        for filename in sorted(files):
            if filename.endswith(extensions):
                paths.append(os.path.join(root, filename))
    paths.sort()
    if limit is not None:
        paths = paths[:limit]
    for path in paths:
        # suite labels stay the parser's canonical name (the seed behaviour:
        # "sqlite"/"postgresql" aliases still label files "slt"/"postgres")
        if parser is not None:
            suite.files.append(parser.parse_file(path))
        else:
            suite.files.append(_parse_detected(path))
    return suite
