"""Loading native-format test files and suites into the unified IR."""

from __future__ import annotations

import os
from typing import Callable

from repro.core.parser_duckdb import parse_duckdb_file, parse_duckdb_text
from repro.core.parser_mysql import parse_mysql_file, parse_mysql_text
from repro.core.parser_postgres import parse_postgres_file, parse_postgres_text
from repro.core.parser_slt import parse_slt_file, parse_slt_text
from repro.core.records import TestFile, TestSuite
from repro.errors import TestFormatError

#: suite name -> (file parser, text parser, file extensions)
_FORMATS: dict[str, tuple[Callable[..., TestFile], Callable[..., TestFile], tuple[str, ...]]] = {
    "slt": (parse_slt_file, parse_slt_text, (".test", ".slt")),
    "sqlite": (parse_slt_file, parse_slt_text, (".test", ".slt")),
    "duckdb": (parse_duckdb_file, parse_duckdb_text, (".test", ".test_slow")),
    "postgres": (parse_postgres_file, parse_postgres_text, (".sql",)),
    "postgresql": (parse_postgres_file, parse_postgres_text, (".sql",)),
    "mysql": (parse_mysql_file, parse_mysql_text, (".test",)),
}


def supported_formats() -> list[str]:
    """Names of the test-suite formats SQuaLity can parse."""
    return sorted(set(_FORMATS))


def parse_test_file(path: str, suite_format: str) -> TestFile:
    """Parse the test file at ``path`` using the named native format."""
    try:
        file_parser, _, _ = _FORMATS[suite_format.lower()]
    except KeyError:
        raise TestFormatError(f"unknown test-suite format: {suite_format!r}; known: {supported_formats()}") from None
    return file_parser(path)


def parse_test_text(text: str, suite_format: str, path: str = "<memory>", **kwargs) -> TestFile:
    """Parse in-memory test text using the named native format."""
    try:
        _, text_parser, _ = _FORMATS[suite_format.lower()]
    except KeyError:
        raise TestFormatError(f"unknown test-suite format: {suite_format!r}; known: {supported_formats()}") from None
    return text_parser(text, path=path, **kwargs)


def load_suite(directory: str, suite_format: str, name: str | None = None, limit: int | None = None) -> TestSuite:
    """Load every test file under ``directory`` in the given native format.

    ``limit`` truncates the suite (useful for benchmark warm-ups).  Expected
    output files (``.out`` / ``.result``) are paired automatically by the
    per-format parsers and are not loaded as test files themselves.
    """
    try:
        _, _, extensions = _FORMATS[suite_format.lower()]
    except KeyError:
        raise TestFormatError(f"unknown test-suite format: {suite_format!r}; known: {supported_formats()}") from None
    suite = TestSuite(name=name or suite_format)
    paths: list[str] = []
    for root, _dirs, files in os.walk(directory):
        if os.path.basename(root) in ("expected", "r"):
            continue  # output directories of the PostgreSQL / MySQL layouts
        for filename in sorted(files):
            if filename.endswith(extensions):
                paths.append(os.path.join(root, filename))
    paths.sort()
    if limit is not None:
        paths = paths[:limit]
    for path in paths:
        suite.files.append(parse_test_file(path, suite_format))
    return suite
