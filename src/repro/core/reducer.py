"""Delta-debugging test-case reduction.

The paper reduces every failure-inducing test case before reporting it
(Section 2, "RQ4 Failure investigation", citing Zeller & Hildebrandt's ddmin).
:func:`reduce_statements` implements ddmin over a list of SQL statements: it
finds a (1-minimal) subsequence that still triggers the failure predicate.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.adapters.base import DBMSAdapter, ExecutionStatus

#: A predicate deciding whether a candidate statement list still "fails".
FailurePredicate = Callable[[list[str]], bool]


def reduce_statements(statements: Sequence[str], still_fails: FailurePredicate, max_rounds: int = 64) -> list[str]:
    """Return a minimal sub-list of ``statements`` for which ``still_fails`` holds.

    Classic ddmin: try removing chunks at decreasing granularity until no
    single removable chunk remains.  ``still_fails`` must be True for the full
    input; otherwise the input is returned unchanged.
    """
    current = list(statements)
    if not still_fails(current):
        return current

    granularity = 2
    rounds = 0
    while len(current) >= 2 and rounds < max_rounds:
        rounds += 1
        chunk_size = max(1, len(current) // granularity)
        chunks = [current[i : i + chunk_size] for i in range(0, len(current), chunk_size)]

        reduced = False
        # try each complement (remove one chunk)
        for index in range(len(chunks)):
            candidate = [statement for position, chunk in enumerate(chunks) if position != index for statement in chunk]
            if candidate and still_fails(candidate):
                current = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if reduced:
            continue
        if granularity >= len(current):
            break
        granularity = min(len(current), granularity * 2)
    return current


def make_crash_predicate(adapter_factory: Callable[[], DBMSAdapter]) -> FailurePredicate:
    """Build a predicate: "executing these statements crashes or hangs the DBMS".

    A fresh adapter is created per candidate so earlier attempts cannot leak
    state into later ones (each reduction probe starts from a clean database,
    as the paper's methodology requires).
    """

    def predicate(statements: list[str]) -> bool:
        adapter = adapter_factory()
        adapter.connect()
        try:
            for statement in statements:
                outcome = adapter.execute(statement)
                if outcome.status in (ExecutionStatus.CRASH, ExecutionStatus.HANG):
                    return True
            return False
        finally:
            adapter.close()

    return predicate


def make_error_predicate(adapter_factory: Callable[[], DBMSAdapter], message_fragment: str) -> FailurePredicate:
    """Build a predicate matching a specific error-message fragment."""

    fragment = message_fragment.lower()

    def predicate(statements: list[str]) -> bool:
        adapter = adapter_factory()
        adapter.connect()
        try:
            for statement in statements:
                outcome = adapter.execute(statement)
                if fragment in (outcome.error or "").lower():
                    return True
            return False
        finally:
            adapter.close()

    return predicate
