"""Signal-aware graceful shutdown: drain latch + bounded drain deadline.

A campaign that dies to bare SIGINT/SIGTERM default handling loses its
in-flight files and leaves leased adapters stranded.  This module gives the
process one coordinated reaction instead:

* The **drain latch** is a process-global flag the execution layers poll at
  their natural unit boundaries — between matrix cells
  (:func:`repro.core.transplant.run_matrix`), between files inside a shard
  (:mod:`repro.core.parallel`), and between files of serial suite execution.
  Once the latch is set, in-flight files *finish* (their results flush to
  store and journal) and everything not yet started degrades to a partial
  result carrying an :class:`~repro.core.resilience.InfraFailure` of kind
  ``"shutdown-drain"`` — so the campaign exits through the existing
  partial-results path (CLI exit code 2) and a later run re-enters exactly
  the drained cells.
* :func:`signal_aware_shutdown` installs SIGINT/SIGTERM handlers around a
  campaign: the **first** signal requests a drain and arms a force-exit
  timer (``REPRO_DRAIN_SECONDS``, default 30 — a wedged drain must not hang
  forever); a **second** signal restores the default handler and re-raises
  itself, exiting immediately with the conventional ``128 + signum`` status.

Signal handlers can only be installed from the main thread;
:func:`signal_aware_shutdown` degrades to a no-op (with a debug log) when
entered from any other thread, so library callers can wrap campaigns
unconditionally.
"""

from __future__ import annotations

import logging
import os
import signal
import sys
import threading
from contextlib import contextmanager
from typing import Iterator

logger = logging.getLogger(__name__)

#: Environment variable bounding the drain window (seconds).
DRAIN_SECONDS_ENV = "REPRO_DRAIN_SECONDS"

#: Drain window when nothing is configured.
DEFAULT_DRAIN_SECONDS = 30.0

#: ``InfraFailure.kind`` recorded for work a drain prevented from running.
SHUTDOWN_DRAIN_KIND = "shutdown-drain"


def configured_drain_seconds() -> float:
    """The drain window: ``REPRO_DRAIN_SECONDS`` or the 30s default."""
    raw = os.environ.get(DRAIN_SECONDS_ENV)
    if raw:
        try:
            value = float(raw)
        except ValueError:
            value = 0.0
        if value > 0:
            return value
    return DEFAULT_DRAIN_SECONDS


class DrainLatch:
    """A one-way (until reset) "stop starting new work" flag."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reason: str | None = None

    def request(self, reason: str) -> None:
        if not self._event.is_set():
            self.reason = reason
            self._event.set()

    def draining(self) -> bool:
        return self._event.is_set()

    def reset(self) -> None:
        self._event.clear()
        self.reason = None


#: the process-global latch every execution layer polls
_LATCH = DrainLatch()


def draining() -> bool:
    """Whether a drain has been requested (fast path: one Event check)."""
    return _LATCH.draining()


def drain_reason() -> str:
    """Human-readable cause of the current drain ("" when not draining)."""
    return _LATCH.reason or ""


def request_drain(reason: str) -> None:
    """Set the process-global drain latch (idempotent)."""
    _LATCH.request(reason)


def reset_drain() -> None:
    """Clear the latch (end of a campaign scope; test hook)."""
    _LATCH.reset()


class ShutdownState:
    """What :func:`signal_aware_shutdown` observed, for the caller to act on."""

    def __init__(self) -> None:
        self.signum: int | None = None

    @property
    def drained(self) -> bool:
        """True when a signal requested a drain inside the guarded block."""
        return self.signum is not None

    @property
    def signal_name(self) -> str:
        if self.signum is None:
            return ""
        try:
            return signal.Signals(self.signum).name
        except ValueError:  # pragma: no cover - unknown signal number
            return str(self.signum)


@contextmanager
def signal_aware_shutdown(
    resume_command: str | None = None,
    signals: tuple[int, ...] = (signal.SIGINT, signal.SIGTERM),
    drain_seconds: float | None = None,
) -> Iterator[ShutdownState]:
    """Guard a campaign with drain-on-first-signal, die-on-second semantics.

    ``resume_command`` (when known) is printed with the drain notice so an
    operator knows exactly how to pick the campaign back up.  The force-exit
    timer uses ``drain_seconds`` (default :func:`configured_drain_seconds`)
    and exits ``128 + signum``, the same status an unhandled signal would
    have produced — a drain that wedges must look like the kill it is.

    On exit the latch, handlers, and timer are restored/cancelled, so nested
    or sequential campaigns start clean.
    """
    state = ShutdownState()
    if threading.current_thread() is not threading.main_thread():
        logger.debug("signal_aware_shutdown entered off the main thread; signals not intercepted")
        yield state
        return

    deadline = drain_seconds if drain_seconds is not None else configured_drain_seconds()
    holder: dict = {"timer": None}

    def _handler(signum, frame) -> None:
        if state.signum is not None:
            # second signal: the operator means it — die the default way
            signal.signal(signum, signal.SIG_DFL)
            os.kill(os.getpid(), signum)
            return
        state.signum = signum
        request_drain(f"signal {signal.Signals(signum).name}")
        timer = threading.Timer(deadline, os._exit, args=(128 + signum,))
        timer.daemon = True
        timer.start()
        holder["timer"] = timer
        lines = [
            f"received {signal.Signals(signum).name}: draining — in-flight files finish, "
            f"remaining work is journaled for resume (deadline {deadline:.0f}s; signal again to exit now)"
        ]
        if resume_command:
            lines.append(f"resume with: {resume_command}")
        print("\n".join(lines), file=sys.stderr, flush=True)

    previous = {signum: signal.signal(signum, _handler) for signum in signals}
    try:
        yield state
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        timer = holder["timer"]
        if timer is not None:
            timer.cancel()
        if state.signum is not None:
            reset_drain()
