"""The unified test runner: executes unified-format test files on any adapter.

Execution follows the paper's methodology: statement-by-statement, with every
record validated individually against its expectation.  Crashes and hangs are
recorded separately from ordinary failures (they are *never* expected), and
records can be skipped for three reasons that the RQ3/RQ4 analyses
distinguish: ``skipif``/``onlyif`` conditions, an unmet ``require`` (the
DuckDB pre-filtering), and ``mode skip`` regions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable

from repro.adapters.base import DBMSAdapter, ExecutionOutcome, ExecutionStatus
from repro.core import shutdown
from repro.core.commands import RunnerState, apply_control_record
from repro.core.comparison import ComparisonResult, compare_query_result
from repro.core.records import (
    ControlRecord,
    QueryRecord,
    Record,
    StatementRecord,
    TestFile,
    TestSuite,
)
from repro.dialects.translator import translate
from repro.dialects import ALL_DIALECTS


class RecordOutcome(enum.Enum):
    """Per-record verdict."""

    PASS = "pass"
    FAIL = "fail"
    SKIP = "skip"
    CRASH = "crash"
    HANG = "hang"


@dataclass
class RecordResult:
    """Result of running one record."""

    record: Record
    outcome: RecordOutcome
    reason: str = ""
    error: str = ""
    error_type: str = ""
    comparison: ComparisonResult | None = None
    execution: ExecutionOutcome | None = None

    @property
    def sql(self) -> str:
        return getattr(self.record, "sql", "")


@dataclass
class FileResult:
    """Results of running one test file on one host.

    Outcome counts are accumulated incrementally instead of re-scanning
    ``results`` on every property access (the seed behaviour): counters are
    caught up lazily with whatever was appended since the last access, so the
    properties stay O(1) amortized while ``results`` remains a plain,
    append-to-able list.  Replacing ``results`` wholesale (any length) and
    truncation are detected; only in-place element *overwrites* (which no
    caller performs) would go unnoticed.
    """

    path: str
    suite: str
    host: str
    results: list[RecordResult] = field(default_factory=list)
    _outcome_counts: dict = field(default_factory=dict, init=False, repr=False, compare=False)
    _counted: int = field(default=0, init=False, repr=False, compare=False)
    # strong reference, not id(): CPython reuses ids of dead objects, which
    # would make a replacement list silently pass for the counted one
    _counted_list: list | None = field(default=None, init=False, repr=False, compare=False)

    def _refresh_counts(self) -> dict:
        results = self.results
        if self._counted > len(results) or self._counted_list is not results:
            # results was truncated or the list object replaced: recount
            self._outcome_counts = {}
            self._counted = 0
            self._counted_list = results
        if self._counted < len(results):
            counts = self._outcome_counts
            for result in results[self._counted :]:
                outcome = result.outcome
                counts[outcome] = counts.get(outcome, 0) + 1
            self._counted = len(results)
        return self._outcome_counts

    def count(self, outcome: RecordOutcome) -> int:
        return self._refresh_counts().get(outcome, 0)

    @property
    def executed(self) -> int:
        return len(self.results) - self.count(RecordOutcome.SKIP)

    @property
    def passed(self) -> int:
        return self.count(RecordOutcome.PASS)

    @property
    def failed(self) -> int:
        return self.count(RecordOutcome.FAIL)

    @property
    def skipped(self) -> int:
        return self.count(RecordOutcome.SKIP)

    @property
    def crashes(self) -> int:
        return self.count(RecordOutcome.CRASH)

    @property
    def hangs(self) -> int:
        return self.count(RecordOutcome.HANG)

    def failures(self) -> list[RecordResult]:
        return [result for result in self.results if result.outcome is RecordOutcome.FAIL]


@dataclass
class SuiteResult:
    """Aggregated results of running a whole suite on one host."""

    suite: str
    host: str
    files: list[FileResult] = field(default_factory=list)
    #: unrecovered infrastructure faults
    #: (:class:`repro.core.resilience.InfraFailure` records) — empty for clean
    #: runs *and* for runs whose transient faults were recovered by retry, so
    #: a recovered campaign stays byte-identical to a fault-free one
    infra_failures: list = field(default_factory=list)

    @property
    def is_complete(self) -> bool:
        """True when no infrastructure fault degraded this result."""
        return not self.infra_failures

    @property
    def total_cases(self) -> int:
        return sum(len(file_result.results) for file_result in self.files)

    @property
    def executed_cases(self) -> int:
        return sum(file_result.executed for file_result in self.files)

    @property
    def passed_cases(self) -> int:
        return sum(file_result.passed for file_result in self.files)

    @property
    def failed_cases(self) -> int:
        return sum(file_result.failed for file_result in self.files)

    @property
    def skipped_cases(self) -> int:
        return sum(file_result.skipped for file_result in self.files)

    @property
    def crash_cases(self) -> int:
        return sum(file_result.crashes for file_result in self.files)

    @property
    def hang_cases(self) -> int:
        return sum(file_result.hangs for file_result in self.files)

    @property
    def success_rate(self) -> float:
        """Passed / executed, excluding crashes and hangs (Figure 4's metric)."""
        comparable = self.executed_cases - self.crash_cases - self.hang_cases
        if comparable <= 0:
            return 0.0
        return self.passed_cases / comparable

    def all_failures(self) -> list[RecordResult]:
        failures: list[RecordResult] = []
        for file_result in self.files:
            failures.extend(file_result.failures())
        return failures


def _synthesize_file_result(host_name: str, test_file: TestFile, outcome: RecordOutcome, reason: str) -> FileResult:
    """A stand-in :class:`FileResult` for a file infrastructure would not run.

    The first SQL record carries the terminal ``outcome`` (HANG for watchdog
    cutoffs, SKIP for quarantines, exhausted retries, and shutdown drains)
    and the rest are SKIPped, mirroring how the runner reports a mid-file
    engine crash.  These results are never persisted to the store — on
    resume the file re-executes.
    """
    file_result = FileResult(path=test_file.path, suite=test_file.suite, host=host_name)
    position = 0
    for record in test_file.records:
        if isinstance(record, ControlRecord):
            continue
        if position == 0:
            file_result.results.append(RecordResult(record=record, outcome=outcome, reason=reason, error=reason))
        else:
            file_result.results.append(RecordResult(record=record, outcome=RecordOutcome.SKIP, reason=reason))
        position += 1
    return file_result


def _drained_file_result(host_name: str, test_file: TestFile):
    """``(stand-in FileResult, InfraFailure)`` for a file a drain skipped.

    The failure record is what routes a drained campaign through the
    existing partial-results machinery: the cell is not memoized, the CLI
    exits 2, and resume re-enters exactly this file.
    """
    from repro.core.resilience import InfraFailure

    reason = f"shutdown drain: {shutdown.drain_reason()}" if shutdown.drain_reason() else "shutdown drain"
    failure = InfraFailure(
        kind=shutdown.SHUTDOWN_DRAIN_KIND,
        suite=test_file.suite,
        host=host_name,
        path=test_file.path,
        detail=shutdown.drain_reason(),
    )
    return _synthesize_file_result(host_name, test_file, RecordOutcome.SKIP, reason), failure


class TestRunner:
    """Runs unified-format test files on a DBMS adapter."""

    # not a pytest test class, despite the name
    __test__ = False

    def __init__(
        self,
        adapter: DBMSAdapter,
        host_name: str | None = None,
        available_extensions: Iterable[str] = (),
        float_tolerance: float = 0.0,
        translate_dialect: bool = False,
        donor_dialect: str | None = None,
        max_records_per_file: int | None = None,
    ):
        self.adapter = adapter
        self.host_name = host_name or adapter.name
        self.available_extensions = {extension.lower() for extension in available_extensions}
        self.float_tolerance = float_tolerance
        self.translate_dialect = translate_dialect
        self.donor_dialect = donor_dialect
        self.max_records_per_file = max_records_per_file

    # -- public API -------------------------------------------------------------------

    def run_file(self, test_file: TestFile) -> FileResult:
        """Execute one test file from a clean database."""
        self.adapter.reset()
        state = RunnerState(host=self.host_name, available_extensions=set(self.available_extensions))
        file_result = FileResult(path=test_file.path, suite=test_file.suite, host=self.host_name)

        records = test_file.records
        if self.max_records_per_file is not None:
            records = records[: self.max_records_per_file]

        crashed = False
        for record in records:
            if crashed:
                file_result.results.append(RecordResult(record=record, outcome=RecordOutcome.SKIP, reason="previous crash"))
                continue
            if isinstance(record, ControlRecord):
                effect = apply_control_record(record, state)
                if effect.reset_connection:
                    self.adapter.reset()
                continue
            if state.halted or state.prefiltered:
                file_result.results.append(
                    RecordResult(record=record, outcome=RecordOutcome.SKIP, reason="halted" if state.halted else "require not satisfied")
                )
                continue
            if state.skipping:
                file_result.results.append(RecordResult(record=record, outcome=RecordOutcome.SKIP, reason="mode skip"))
                continue
            if not record.runs_on(self.host_name):
                file_result.results.append(RecordResult(record=record, outcome=RecordOutcome.SKIP, reason="skipif/onlyif"))
                continue
            result = self._run_sql_record(record, state)
            file_result.results.append(result)
            if result.outcome is RecordOutcome.CRASH:
                crashed = True
        return file_result

    def run_suite(self, suite: TestSuite, workers: int = 1, executor: str = "auto", worker_pool=None, store=None, resilience=None) -> SuiteResult:
        """Execute every file of ``suite``, each from a clean database.

        With ``workers > 1`` the suite is split into per-file shards executed
        on a worker pool (see :mod:`repro.core.parallel`); results are merged
        in file order, so the outcome is identical to the serial run.  Falls
        back to serial execution when the adapter cannot be re-created in a
        worker (no registry entry).  ``worker_pool`` (a
        :class:`repro.core.parallel.WorkerPool`) lets a campaign share one
        persistent pool — and its per-worker adapters — across suites.
        ``store`` (an :class:`~repro.store.ArtifactStore`) makes those workers
        store-aware: each shard serves already-persisted per-file results from
        the store instead of re-executing them.  ``resilience`` (a
        :class:`repro.core.resilience.ResiliencePolicy`) arms per-file retry,
        watchdog, and circuit-breaker handling inside the shards; the serial
        path leaves resilience to the caller (the transplant layer retries
        whole cells).
        """
        if workers > 1 and len(suite.files) > 1:
            from repro.core.parallel import runner_spec_for, run_suite_sharded

            spec = runner_spec_for(self)
            if spec is not None:
                return run_suite_sharded(
                    suite, spec, workers=workers, executor=executor, worker_pool=worker_pool, store=store,
                    policy=resilience,
                ).result
        suite_result = SuiteResult(suite=suite.name, host=self.host_name)
        for test_file in suite.files:
            if shutdown.draining():
                # a shutdown drain finishes in-flight files but starts no new
                # ones: the rest of the suite degrades to resumable stand-ins
                file_result, failure = _drained_file_result(self.host_name, test_file)
                suite_result.files.append(file_result)
                suite_result.infra_failures.append(failure)
                continue
            suite_result.files.append(self.run_file(test_file))
        return suite_result

    # -- internals ---------------------------------------------------------------------

    def _prepare_sql(self, record: Record, state: RunnerState) -> str:
        sql = state.substitute(getattr(record, "sql", ""))
        if not self.translate_dialect or self.donor_dialect is None:
            return sql
        donor = {"slt": "sqlite"}.get(self.donor_dialect.lower(), self.donor_dialect.lower())
        source = ALL_DIALECTS.get(donor)
        target = ALL_DIALECTS.get(_canonical_host(self.host_name))
        if source is None or target is None or source.name == target.name:
            return sql
        return translate(sql, source, target).sql

    def _run_sql_record(self, record: Record, state: RunnerState) -> RecordResult:
        sql = self._prepare_sql(record, state)
        outcome = self.adapter.execute(sql)

        if outcome.status is ExecutionStatus.CRASH:
            return RecordResult(
                record=record, outcome=RecordOutcome.CRASH, reason="engine crashed", error=outcome.error, error_type=outcome.error_type, execution=outcome
            )
        if outcome.status is ExecutionStatus.HANG:
            return RecordResult(
                record=record, outcome=RecordOutcome.HANG, reason="engine hang / timeout", error=outcome.error, error_type=outcome.error_type, execution=outcome
            )

        if isinstance(record, StatementRecord):
            if record.expect_ok and outcome.status is ExecutionStatus.ERROR:
                return RecordResult(
                    record=record,
                    outcome=RecordOutcome.FAIL,
                    reason="statement unexpectedly failed",
                    error=outcome.error,
                    error_type=outcome.error_type,
                    execution=outcome,
                )
            if not record.expect_ok and outcome.status is ExecutionStatus.OK:
                return RecordResult(
                    record=record,
                    outcome=RecordOutcome.FAIL,
                    reason="statement unexpectedly succeeded",
                    execution=outcome,
                )
            return RecordResult(record=record, outcome=RecordOutcome.PASS, execution=outcome)

        assert isinstance(record, QueryRecord)
        if outcome.status is ExecutionStatus.ERROR:
            return RecordResult(
                record=record,
                outcome=RecordOutcome.FAIL,
                reason="query unexpectedly failed",
                error=outcome.error,
                error_type=outcome.error_type,
                execution=outcome,
            )
        comparison = compare_query_result(record, outcome, float_tolerance=self.float_tolerance)
        if comparison.matches:
            return RecordResult(record=record, outcome=RecordOutcome.PASS, comparison=comparison, execution=outcome)
        return RecordResult(
            record=record,
            outcome=RecordOutcome.FAIL,
            reason=comparison.reason,
            comparison=comparison,
            execution=outcome,
        )


def _canonical_host(host: str) -> str:
    aliases = {"sqlite3": "sqlite", "sqlite-mini": "sqlite", "postgresql": "postgres", "mariadb": "mysql"}
    return aliases.get(host.lower(), host.lower())
