"""Legacy import shim — the MySQL parser now lives in :mod:`repro.formats.mysql`.

Kept so seed-era imports keep working; new code should go through the format
registry (:func:`repro.formats.get_format`).
"""

from __future__ import annotations

from repro.formats.mysql import (
    _ERROR_DIRECTIVE,
    BARE_COMMANDS,
    MySQLFormat,
    _interpret_block,
    _looks_like_statement_echo,
    _parse_result_file,
    parse_mysql_file,
    parse_mysql_text,
)

__all__ = [
    "parse_mysql_text",
    "parse_mysql_file",
    "MySQLFormat",
    "BARE_COMMANDS",
    "_parse_result_file",
    "_interpret_block",
    "_looks_like_statement_echo",
    "_ERROR_DIRECTIVE",
]
