"""Deprecated import shim — the MySQL parser now lives in :mod:`repro.formats.mysql`.

Kept so seed-era imports keep working; new code should go through the format
registry (:func:`repro.formats.get_format`).  Importing it warns with
:class:`DeprecationWarning`; the shim is scheduled for removal two release
cycles after the streaming-engine release (see docs/ARCHITECTURE.md,
"Deprecations").
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.core.parser_mysql is deprecated; import from repro.formats.mysql "
    "or use repro.formats.get_format('mysql')",
    DeprecationWarning,
    stacklevel=2,
)

from repro.formats.mysql import (
    _ERROR_DIRECTIVE,
    BARE_COMMANDS,
    MySQLFormat,
    _interpret_block,
    _looks_like_statement_echo,
    _parse_result_file,
    parse_mysql_file,
    parse_mysql_text,
)

__all__ = [
    "parse_mysql_text",
    "parse_mysql_file",
    "MySQLFormat",
    "BARE_COMMANDS",
    "_parse_result_file",
    "_interpret_block",
    "_looks_like_statement_echo",
    "_ERROR_DIRECTIVE",
]
