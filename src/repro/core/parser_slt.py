"""Deprecated import shim — the SLT parser now lives in :mod:`repro.formats.slt`.

Kept so seed-era imports (``from repro.core.parser_slt import parse_slt_text``)
keep working; new code should go through the format registry
(:func:`repro.formats.get_format` / :func:`repro.formats.parse_test_text`).
Importing it warns with :class:`DeprecationWarning`; the shim is scheduled for
removal two release cycles after the streaming-engine release (see
docs/ARCHITECTURE.md, "Deprecations").
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.core.parser_slt is deprecated; import from repro.formats.slt "
    "or use repro.formats.get_format('slt')",
    DeprecationWarning,
    stacklevel=2,
)

from repro.core.records import Record
from repro.formats.base import SLT_CONTROL_COMMANDS as _CONTROL_COMMANDS
from repro.formats.registry import get_format
from repro.formats.slt import (
    _HASH_RESULT,
    SLTFormat,
    parse_slt_file,
    parse_slt_text,
)


def _split_blocks(text: str) -> list[tuple[int, list[str]]]:
    """Split file text into blocks of consecutive non-blank lines."""
    return list(SLTFormat.iter_blocks(text))


def _strip_comment(line: str) -> str:
    """Remove a trailing ``# comment`` from a directive line."""
    return SLTFormat.strip_comment(line)


def _parse_block(lines: list[str], start_line: int, path: str) -> list[Record]:
    return get_format("slt").parse_block(lines, start_line, path)


__all__ = [
    "parse_slt_text",
    "parse_slt_file",
    "SLTFormat",
    "_split_blocks",
    "_strip_comment",
    "_parse_block",
    "_CONTROL_COMMANDS",
    "_HASH_RESULT",
]
