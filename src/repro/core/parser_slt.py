"""Parser for the sqllogictest (SLT) format used by SQLite's test suite.

Format reference: https://www.sqlite.org/sqllogictest/doc/trunk/about.wiki

A test file is a sequence of *records* separated by blank lines.  Each record
is either::

    statement ok            |  statement error
    <SQL statement, possibly spanning several lines>

or::

    query <type-string> [sort-mode] [label]
    <SQL query>
    ----
    <expected result, one value per line>

Records may be preceded by ``skipif <dbms>`` / ``onlyif <dbms>`` condition
lines, and the file may contain ``halt`` and ``hash-threshold <n>`` control
records.  Large expected results are given in hash form::

    30 values hashing to 3c13dee48d9356ae19af2515e05e6b54
"""

from __future__ import annotations

import re

from repro.core.records import (
    Condition,
    ControlRecord,
    QueryRecord,
    Record,
    ResultFormat,
    SortMode,
    StatementRecord,
    TestFile,
)
from repro.errors import TestFormatError

_HASH_RESULT = re.compile(r"^(\d+)\s+values\s+hashing\s+to\s+([0-9a-f]{32})$")
_CONTROL_COMMANDS = {"halt", "hash-threshold", "mode", "set", "sleep", "restart", "reconnect", "load", "require", "loop", "endloop", "foreach", "endfor", "unzip", "include"}


def _split_blocks(text: str) -> list[tuple[int, list[str]]]:
    """Split file text into blocks of consecutive non-blank lines.

    Returns ``(first_line_number, lines)`` pairs, 1-based line numbers.
    Comment-only lines (starting with ``#``) are dropped, but a trailing
    comment after a directive (``onlyif mysql # DIV for integer division``) is
    kept for the directive parser to strip.
    """
    blocks: list[tuple[int, list[str]]] = []
    current: list[str] = []
    start = 0
    for number, line in enumerate(text.splitlines(), start=1):
        stripped = line.rstrip("\n")
        if stripped.strip() == "" :
            if current:
                blocks.append((start, current))
                current = []
            continue
        if stripped.lstrip().startswith("#"):
            continue
        if not current:
            start = number
        current.append(stripped)
    if current:
        blocks.append((start, current))
    return blocks


def _strip_comment(line: str) -> str:
    """Remove a trailing ``# comment`` from a directive line."""
    if "#" in line:
        return line.split("#", 1)[0].rstrip()
    return line


def parse_slt_text(text: str, path: str = "<memory>", suite: str = "slt") -> TestFile:
    """Parse SLT-format ``text`` into a :class:`TestFile`."""
    test_file = TestFile(path=path, suite=suite, source_lines=len(text.splitlines()))
    for start_line, lines in _split_blocks(text):
        records = _parse_block(lines, start_line, path)
        test_file.records.extend(records)
    return test_file


def parse_slt_file(path: str, suite: str = "slt") -> TestFile:
    """Parse the SLT file at ``path``."""
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        return parse_slt_text(handle.read(), path=path, suite=suite)


def _parse_block(lines: list[str], start_line: int, path: str) -> list[Record]:
    conditions: list[Condition] = []
    index = 0
    records: list[Record] = []

    while index < len(lines):
        line = _strip_comment(lines[index]).strip()
        if not line:
            index += 1
            continue
        words = line.split()
        head = words[0].lower()

        if head in ("skipif", "onlyif") and len(words) >= 2:
            conditions.append(Condition(kind=head, dbms=words[1].lower()))
            index += 1
            continue

        if head == "statement":
            if len(words) < 2:
                raise TestFormatError("statement record missing ok/error", path=path, line=start_line + index)
            expect_ok = words[1].lower() == "ok"
            sql_lines = lines[index + 1 :]
            expected_error = None
            if "----" in [l.strip() for l in sql_lines]:
                separator = [l.strip() for l in sql_lines].index("----")
                expected_error = "\n".join(sql_lines[separator + 1 :]).strip() or None
                sql_lines = sql_lines[:separator]
            record = StatementRecord(
                line=start_line + index,
                raw="\n".join(lines),
                conditions=list(conditions),
                sql="\n".join(sql_lines).strip(),
                expect_ok=expect_ok,
                expected_error=expected_error,
            )
            records.append(record)
            return records

        if head == "query":
            type_string = words[1] if len(words) > 1 else ""
            sort_mode = SortMode.NOSORT
            label = None
            for word in words[2:]:
                lowered = word.lower()
                if lowered in ("nosort", "rowsort", "valuesort"):
                    sort_mode = SortMode(lowered)
                else:
                    label = word
            body = lines[index + 1 :]
            stripped_body = [entry.strip() for entry in body]
            if "----" in stripped_body:
                separator = stripped_body.index("----")
                sql_lines = body[:separator]
                result_lines = [entry.rstrip() for entry in body[separator + 1 :]]
            else:
                sql_lines = body
                result_lines = []
            record = QueryRecord(
                line=start_line + index,
                raw="\n".join(lines),
                conditions=list(conditions),
                sql="\n".join(sql_lines).strip(),
                type_string=type_string,
                sort_mode=sort_mode,
                label=label,
            )
            if len(result_lines) == 1 and _HASH_RESULT.match(result_lines[0].strip()):
                match = _HASH_RESULT.match(result_lines[0].strip())
                record.result_format = ResultFormat.HASH
                record.expected_hash_count = int(match.group(1))
                record.expected_hash = match.group(2)
            else:
                record.result_format = ResultFormat.VALUE_WISE
                record.expected_values = [entry for entry in result_lines if entry != ""]
            records.append(record)
            return records

        if head in _CONTROL_COMMANDS:
            records.append(
                ControlRecord(
                    line=start_line + index,
                    raw=line,
                    conditions=list(conditions),
                    command=head,
                    arguments=words[1:],
                )
            )
            conditions = []
            index += 1
            continue

        # Unknown directive: record it as a control record so RQ1's feature
        # census sees it, rather than silently dropping it.
        records.append(
            ControlRecord(
                line=start_line + index,
                raw=line,
                conditions=list(conditions),
                command=head,
                arguments=words[1:],
            )
        )
        conditions = []
        index += 1
    return records
