"""Campaign resilience: retries, watchdog deadlines, and infra-failure records.

The paper's methodology depends on *completing* full cross-execution matrices
(RQ4 counts rediscovered bugs across every (suite, host) cell), but a
production-scale campaign meets infrastructure faults the experiment logic
cannot prevent: a flaky adapter connection, a wedged engine, a disk that
stops accepting writes.  This module is the one place those faults are
classified and bounded so that they degrade to *partial, resumable,
honestly-reported* results instead of killing the campaign:

* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  **deterministic seeded jitter** (no ``random`` — the delay is derived from
  a hash of ``(seed, token, attempt)``), gated on a retryable-error
  predicate so programming errors never loop.
* :func:`run_with_deadline` — a watchdog that turns a wedged execution into
  a :class:`~repro.errors.WatchdogTimeout` the campaign layer converts into
  a HANG outcome, instead of a worker stuck forever.
* :class:`ResiliencePolicy` — the bundle the campaign layers
  (:mod:`repro.core.parallel`, :mod:`repro.core.transplant`) thread through
  shard and cell execution.
* :class:`InfraFailure` — the structured record a partial campaign carries in
  ``SuiteResult.infra_failures`` / ``TransplantResult.infra_failures``.  Only
  *unrecovered* faults are recorded: a retry that succeeds leaves no trace in
  the result, which is what keeps a recovered campaign byte-identical to a
  fault-free one (``tests/test_chaos.py`` pins this with
  ``assert_equivalent``).

Timeout configuration is resolved end to end here as well:
``REPRO_TIMEOUT_SECONDS`` (or :func:`set_default_timeout`, or the experiments
CLI's ``--timeout``) feeds both the SQLite adapter's statement timeout and
the campaign watchdog deadlines.

This module deliberately imports nothing from :mod:`repro.adapters` (the
adapters import it for timeout resolution); the circuit breaker that
quarantines misbehaving adapter configurations lives with the pool it guards
(:class:`repro.adapters.pool.CircuitBreaker`).
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import WatchdogTimeout

#: Fallback statement/watchdog timeout when nothing is configured.
DEFAULT_TIMEOUT_SECONDS = 5.0

#: Environment variable configuring the default timeout end to end.
TIMEOUT_ENV_VAR = "REPRO_TIMEOUT_SECONDS"

_TIMEOUT_OVERRIDE: float | None = None


def set_default_timeout(seconds: float | None) -> float | None:
    """Set the process-wide timeout override; returns the previous override.

    ``None`` clears the override (the environment variable, then the built-in
    default, apply again).  The experiments CLI's ``--timeout`` also exports
    :data:`TIMEOUT_ENV_VAR` so process-pool workers inherit the value.
    """
    global _TIMEOUT_OVERRIDE
    previous = _TIMEOUT_OVERRIDE
    _TIMEOUT_OVERRIDE = float(seconds) if seconds is not None else None
    return previous


def _timeout_from_env() -> float | None:
    raw = os.environ.get(TIMEOUT_ENV_VAR)
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def default_timeout_seconds() -> float:
    """The effective statement timeout: override, environment, or default."""
    if _TIMEOUT_OVERRIDE is not None:
        return _TIMEOUT_OVERRIDE
    from_env = _timeout_from_env()
    return from_env if from_env is not None else DEFAULT_TIMEOUT_SECONDS


def configured_watchdog_seconds() -> float | None:
    """The watchdog deadline, or None when no timeout was configured.

    Unlike :func:`default_timeout_seconds` this has no built-in fallback: the
    watchdog runs the guarded operation on a helper thread, which is pure
    overhead for the (overwhelmingly common) non-wedged case, so campaigns
    only arm it when a timeout was explicitly configured.
    """
    if _TIMEOUT_OVERRIDE is not None:
        return _TIMEOUT_OVERRIDE
    return _timeout_from_env()


def is_transient_error(error: BaseException) -> bool:
    """Whether ``error`` plausibly goes away on retry.

    Infrastructure faults — lost connections, I/O hiccups, timeouts — are
    transient; programming errors (``TypeError``, assertion failures) are
    not and must propagate on the first attempt.  Adapters and the chaos
    harness can mark any exception explicitly with a truthy ``transient``
    attribute.
    """
    if getattr(error, "transient", False):
        return True
    return isinstance(error, (ConnectionError, TimeoutError, OSError))


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    ``attempts`` counts total tries (1 = no retry).  The delay before attempt
    ``n+1`` is ``base_delay * 2**(n-1)`` capped at ``max_delay``, plus a
    jitter fraction in ``[0, jitter)`` of that delay derived from
    ``sha256(seed, token, n)`` — deterministic for a given (seed, token), so
    two runs of the same campaign back off identically and tests can pin
    exact schedules.
    """

    attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    retryable: Callable[[BaseException], bool] = is_transient_error

    def should_retry(self, error: BaseException, attempt: int) -> bool:
        """Whether a failed ``attempt`` (1-based) warrants another try."""
        return attempt < self.attempts and self.retryable(error)

    def delay_for(self, attempt: int, token: str = "") -> float:
        """Backoff before the attempt *after* ``attempt`` (1-based) fails."""
        delay = min(self.base_delay * (2 ** max(0, attempt - 1)), self.max_delay)
        if self.jitter > 0:
            digest = hashlib.sha256(f"{self.seed}:{token}:{attempt}".encode("utf-8")).digest()
            fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
            delay += delay * self.jitter * fraction
        return delay

    def run(self, operation: Callable[[], Any], token: str = "", on_retry: Callable[[BaseException, int], None] | None = None) -> Any:
        """Run ``operation`` under this policy; re-raises the final error.

        ``on_retry(error, attempt)`` is invoked before each backoff — callers
        use it to discard a suspect adapter before the fresh attempt.
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                return operation()
            except Exception as error:
                if not self.should_retry(error, attempt):
                    raise
                if on_retry is not None:
                    on_retry(error, attempt)
                time.sleep(self.delay_for(attempt, token))


def run_with_deadline(operation: Callable[[], Any], deadline_seconds: float, label: str = "operation") -> Any:
    """Run ``operation`` with a watchdog deadline.

    The operation runs on a daemon helper thread; if it does not finish
    within ``deadline_seconds`` a :class:`~repro.errors.WatchdogTimeout` is
    raised and the helper thread is abandoned (Python cannot kill it — the
    caller must treat whatever state the operation touched, typically an
    adapter, as unusable and discard it).  Results and exceptions from an
    operation that finishes in time propagate unchanged.
    """
    outcome: dict[str, Any] = {}

    def _invoke() -> None:
        try:
            outcome["value"] = operation()
        except BaseException as error:  # travels back to the calling thread
            outcome["error"] = error

    thread = threading.Thread(target=_invoke, name=f"watchdog:{label}", daemon=True)
    thread.start()
    thread.join(deadline_seconds)
    if thread.is_alive():
        raise WatchdogTimeout(f"{label} exceeded {deadline_seconds}s watchdog deadline", deadline=deadline_seconds)
    if "error" in outcome:
        raise outcome["error"]
    return outcome.get("value")


@dataclass(frozen=True)
class InfraFailure:
    """One unrecovered infrastructure fault of a partial campaign.

    ``kind`` is one of ``"retry-exhausted"`` (a transient error survived
    every attempt), ``"watchdog-timeout"`` (a wedged execution was cut off),
    ``"adapter-quarantined"`` (the circuit breaker refused the adapter), or
    ``"shutdown-drain"`` (a signal-requested drain prevented the work from
    starting; see :mod:`repro.core.shutdown` — these cells re-enter on
    resume).  ``path`` is the affected test file, or ``""`` for whole-cell
    failures.
    Only *unrecovered* faults become records — recovered retries leave the
    results byte-identical to a fault-free run.
    """

    kind: str
    suite: str
    host: str
    path: str = ""
    detail: str = ""
    attempts: int = 1


@dataclass(frozen=True)
class ResiliencePolicy:
    """The resilience knobs campaigns thread through shard/cell execution.

    ``watchdog_seconds`` is the per-file deadline (None disarms the
    watchdog); ``quarantine_after`` is the circuit breaker's consecutive-
    failure threshold for one ``(adapter name, kwargs)`` configuration.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    watchdog_seconds: float | None = None
    quarantine_after: int = 3


def default_policy() -> ResiliencePolicy:
    """The policy campaigns use when the caller passes none: bounded retry,
    watchdog armed only when a timeout was configured (env/CLI/override)."""
    return ResiliencePolicy(retry=RetryPolicy(), watchdog_seconds=configured_watchdog_seconds())
