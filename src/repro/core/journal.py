"""Campaign write-ahead journal: durable progress records for crash recovery.

A campaign that dies mid-flight (SIGKILL, OOM, power loss) loses every piece
of in-memory coordination state — ``run_matrix(resume=...)`` only ever worked
within one process.  The journal makes campaign progress durable: an
append-only JSONL file, one fsync'd line per event, recording which matrix
cells started and finished (and which per-file artifacts they produced).
Replaying the journal after a crash reconstructs exactly where the campaign
stood, and a resumed ``run_matrix(journal=...)`` re-enters only the cells
the journal does not show as complete — the per-file ``file-results``
artifacts the dead process already persisted make that re-entry cost only
the files that were genuinely in flight.

Identity and placement:

* A campaign is identified by :func:`campaign_id` — the SHA-256 of the
  canonical matrix spec (suite content hashes, hosts, tolerance, translation
  switch, record cap) plus the store's code fingerprint.  Two processes
  running the same campaign against the same store derive the same id; a
  code change or a different matrix derives a different one, and opening a
  journal whose recorded id does not match raises
  :class:`~repro.errors.JournalMismatchError` instead of mixing campaigns.
* By default journals live under the store (``<store root>/journals/``),
  one file per campaign id, so ``--resume-from <dir>`` can point at the
  directory and each campaign of a multi-matrix run (plain + translated)
  finds its own journal.

Durability and torn tails:

* :meth:`CampaignJournal.append` writes one complete JSON line, flushes, and
  ``fsync``s before returning — an event the caller observed as journaled
  survives any subsequent crash.
* A crash *during* an append leaves a torn final line.
  :func:`replay_journal` tolerates exactly that — the final line (and only
  the final line) may be incomplete, and reads as "this event never
  happened"; garbage anywhere earlier is real corruption and raises
  :class:`~repro.errors.JournalError`.  Re-opening a torn journal truncates
  the tail before appending, so the file never accumulates mid-file garbage.

The journal is append-only history, not a deduplicated state table: a
resumed campaign appends fresh events for the cells it re-enters, and replay
folds the history into current state (the last ``cell-finish`` per cell
wins).
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import JournalError, JournalMismatchError
from repro.killpoints import kill_point
from repro.store.keys import canonical_bytes, suite_content_hash

#: Journal line-format version; bump on incompatible event-shape changes.
JOURNAL_VERSION = 1

#: Subdirectory of the store root where default-placed journals live.
JOURNAL_DIRNAME = "journals"


def campaign_spec(
    suites: "dict[str, Any]",
    hosts: tuple[str, ...],
    float_tolerance: float = 0.0,
    translate_dialect: bool = False,
    max_records_per_file: int | None = None,
) -> dict:
    """The canonical description of one ``run_matrix`` campaign.

    Suites join by *content hash*, not by name alone: a campaign over a
    regenerated-but-identical corpus is the same campaign (and may resume a
    journal the previous process wrote), while an edited corpus is a new
    one.  ``workers``/``executor`` are deliberately absent — sharding cannot
    change a campaign's results, so it must not change its identity.
    """
    return {
        "suites": {name: suite_content_hash(suite) for name, suite in suites.items()},
        "hosts": list(hosts),
        "float_tolerance": float_tolerance,
        "translate": bool(translate_dialect),
        "max_records_per_file": max_records_per_file,
    }


def campaign_id(spec: dict, fingerprint: str) -> str:
    """Stable identity of one campaign: matrix spec + store code fingerprint."""
    digest = hashlib.sha256()
    digest.update(fingerprint.encode("utf-8"))
    digest.update(b"\0")
    digest.update(canonical_bytes(spec))
    return digest.hexdigest()


def journal_path(directory: "str | os.PathLike", campaign: str) -> Path:
    """The journal file for ``campaign`` inside a journals directory."""
    return Path(directory) / f"campaign-{campaign[:16]}.jsonl"


@dataclass
class JournalReplay:
    """The state a journal's event history folds into.

    ``completed`` holds the ``(suite, host)`` cells whose *latest*
    ``cell-finish`` reported ``complete`` (no infrastructure degradation);
    ``started`` holds every cell that ever logged a ``cell-start``.  A cell
    in ``started`` but not ``completed`` was in flight (or degraded) when
    the writing process stopped — resume re-enters it.  ``files`` maps each
    cell to the artifact digests its journaled files produced.
    """

    path: Path
    campaign: str | None = None
    spec: dict | None = None
    fingerprint: str | None = None
    started: set = field(default_factory=set)
    completed: set = field(default_factory=set)
    files: dict = field(default_factory=dict)
    events: int = 0
    #: True when the file ended in a torn (partially-written) final line
    torn_tail: bool = False
    #: byte offset of the end of the last intact line (0 for an empty file);
    #: re-opening truncates here before appending
    valid_bytes: int = 0

    def incomplete_cells(self) -> list[tuple[str, str]]:
        """Cells that started but never finished cleanly, in sorted order."""
        return sorted(self.started - self.completed)


def replay_journal(path: "str | os.PathLike") -> JournalReplay:
    """Fold a journal file's history into a :class:`JournalReplay`.

    Tolerates a torn final line (the crash-mid-append signature): the torn
    bytes read as "no event".  Anything else that fails to parse — garbage
    on an interior line, a non-header first line — raises
    :class:`~repro.errors.JournalError`; a journal that misleads resume is
    worse than one that refuses.
    """
    path = Path(path)
    replay = JournalReplay(path=path)
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        return replay
    cut = raw.rfind(b"\n") + 1
    replay.valid_bytes = cut
    replay.torn_tail = cut < len(raw)
    for number, line in enumerate(raw[:cut].split(b"\n")[:-1], start=1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except ValueError as error:
            raise JournalError(f"corrupt journal {path}: unparseable line {number}: {error}") from error
        if not isinstance(event, dict) or "event" not in event:
            raise JournalError(f"corrupt journal {path}: line {number} is not an event object")
        _fold_event(replay, event, number)
    return replay


def _fold_event(replay: JournalReplay, event: dict, number: int) -> None:
    kind = event["event"]
    if replay.campaign is None:
        if kind != "campaign":
            raise JournalError(f"corrupt journal {replay.path}: line {number} precedes the campaign header")
        for required in ("campaign", "spec", "fingerprint"):
            if required not in event:
                raise JournalError(f"corrupt journal {replay.path}: campaign header lacks {required!r}")
        replay.campaign = event["campaign"]
        replay.spec = event["spec"]
        replay.fingerprint = event["fingerprint"]
        replay.events += 1
        return
    replay.events += 1
    if kind == "campaign":
        # a resumed process re-opens the journal and re-asserts the header;
        # CampaignJournal.open verified the id, so nothing to fold
        return
    cell = (event.get("suite"), event.get("host"))
    if kind == "cell-start":
        replay.started.add(cell)
        # re-entering a cell supersedes its previous finish: until the new
        # finish lands, the cell is in flight again
        replay.completed.discard(cell)
    elif kind == "cell-finish":
        replay.started.add(cell)
        if event.get("complete"):
            replay.completed.add(cell)
        else:
            replay.completed.discard(cell)
    elif kind == "file-finish":
        artifact = event.get("artifact")
        if artifact is not None:
            replay.files.setdefault(cell, []).append(artifact)
    # unknown event kinds are tolerated (forward compatibility): they were
    # intact lines, so they are history — just history this reader ignores


class CampaignJournal:
    """An open, append-only campaign journal (one campaign, one file).

    Use :meth:`open` — it derives the campaign id, validates any existing
    journal against it, truncates a torn tail, and writes the header for a
    fresh file.  :meth:`append` is durable: the line is flushed and fsync'd
    before the call returns.  Appends are serialized by an internal lock
    (each :meth:`append_many` batch lands as one contiguous fsync'd block):
    ``run_matrix`` journals from its coordinating thread, but the streaming
    engine journals cells from its fan-out threads.
    """

    def __init__(self, path: Path, campaign: str, spec: dict, fingerprint: str, handle: "io.BufferedWriter", replay: JournalReplay):
        self.path = path
        self.campaign = campaign
        self.spec = spec
        self.fingerprint = fingerprint
        #: the journal's state as of opening — what a resume should skip
        self.replay = replay
        self._handle = handle
        self._lock = threading.Lock()

    @classmethod
    def open(cls, path: "str | os.PathLike", spec: dict, fingerprint: str) -> "CampaignJournal":
        """Open (or create) the journal at ``path`` for this campaign.

        An existing journal is replayed and its recorded campaign id checked
        against ``campaign_id(spec, fingerprint)`` — a mismatch raises
        :class:`~repro.errors.JournalMismatchError`.  A torn final line is
        truncated away; a fresh (or empty) file gets the campaign header.
        """
        path = Path(path)
        campaign = campaign_id(spec, fingerprint)
        replay = replay_journal(path)
        if replay.campaign is not None and replay.campaign != campaign:
            raise JournalMismatchError(
                f"journal {path} records campaign {replay.campaign[:16]}..., "
                f"but this campaign is {campaign[:16]}... — wrong matrix, store, or code version"
            )
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = open(path, "ab")
        try:
            if replay.torn_tail:
                # drop the half-written final line so the next append starts
                # on a clean boundary (mid-file garbage would read as corrupt)
                handle.truncate(replay.valid_bytes)
                handle.seek(0, os.SEEK_END)
            journal = cls(path, campaign, spec, fingerprint, handle, replay)
            if replay.campaign is None:
                journal.append(
                    {
                        "event": "campaign",
                        "campaign": campaign,
                        "spec": spec,
                        "fingerprint": fingerprint,
                        "version": JOURNAL_VERSION,
                    }
                )
            return journal
        except BaseException:
            handle.close()
            raise

    @classmethod
    def open_in(cls, directory: "str | os.PathLike", spec: dict, fingerprint: str) -> "CampaignJournal":
        """Open this campaign's journal inside a journals directory."""
        return cls.open(journal_path(directory, campaign_id(spec, fingerprint)), spec, fingerprint)

    # -- appends -----------------------------------------------------------------------

    def append(self, event: dict) -> None:
        """Durably append one event line (write + flush + fsync)."""
        self.append_many([event])

    def append_many(self, events: "list[dict]") -> None:
        """Durably append several event lines under a single fsync.

        Batching matters for per-file events: one fsync per cell instead of
        one per file keeps journaling cost proportional to cells.
        """
        if not events:
            return
        payload = b"".join(
            json.dumps(event, sort_keys=True, separators=(",", ":")).encode("utf-8") + b"\n" for event in events
        )
        with self._lock:
            if self._handle.closed:
                raise JournalError(f"journal {self.path} is closed")
            try:
                self._handle.write(payload)
                self._handle.flush()
                os.fsync(self._handle.fileno())
            except OSError as error:
                raise JournalError(f"journal {self.path} append failed: {error}") from error
        kill_point("journal-append")

    def cell_started(self, suite: str, host: str) -> None:
        self.append({"event": "cell-start", "suite": suite, "host": host})

    def cell_finished(
        self,
        suite: str,
        host: str,
        complete: bool,
        artifact: str | None = None,
        files: "list[dict] | None" = None,
    ) -> None:
        """Journal one cell's completion, batching its per-file events.

        ``artifact`` is the cell-level store digest (None for storeless or
        degraded cells); ``files`` is a list of per-file event payloads —
        dicts with ``path`` and ``artifact`` keys — journaled as
        ``file-finish`` lines in the same durable batch.
        """
        events: list[dict] = [
            {"event": "file-finish", "suite": suite, "host": host, **entry} for entry in (files or [])
        ]
        events.append(
            {"event": "cell-finish", "suite": suite, "host": host, "complete": bool(complete), "artifact": artifact}
        )
        self.append_many(events)

    # -- state -------------------------------------------------------------------------

    def is_cell_complete(self, suite: str, host: str) -> bool:
        """Whether the journal (as of opening) records this cell complete."""
        return (suite, host) in self.replay.completed

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CampaignJournal {self.path} campaign={self.campaign[:16]} completed={len(self.replay.completed)}>"
