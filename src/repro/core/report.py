"""Plain-text rendering of experiment outputs (tables and heatmaps).

The benchmark harness prints the same rows/series the paper reports; this
module keeps the formatting in one place so every experiment and benchmark
renders consistently.
"""

from __future__ import annotations

from typing import Any, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str | None = None) -> str:
    """Render an ASCII table with left-aligned first column and right-aligned numbers."""
    columns = len(headers)
    normalized_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in normalized_rows:
        for index in range(columns):
            if index < len(row):
                widths[index] = max(widths[index], len(row[index]))

    def render_row(cells: Sequence[str]) -> str:
        rendered = []
        for index, cell in enumerate(cells):
            if index == 0:
                rendered.append(str(cell).ljust(widths[index]))
            else:
                rendered.append(str(cell).rjust(widths[index]))
        return "  ".join(rendered)

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row([str(header) for header in headers]))
    lines.append("  ".join("-" * width for width in widths))
    for row in normalized_rows:
        padded = list(row) + [""] * (columns - len(row))
        lines.append(render_row(padded))
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_percentage(value: float, decimals: int = 2) -> str:
    """Format a ratio as a percentage string (``0.5145`` -> ``"51.45%"``)."""
    return f"{value * 100:.{decimals}f}%"


def format_heatmap(row_labels: Sequence[str], column_labels: Sequence[str], values: dict[tuple[str, str], float], title: str | None = None) -> str:
    """Render the Figure 4 success-rate heatmap as a text matrix."""
    headers = ["Test Suite \\ Engine"] + list(column_labels)
    rows = []
    for row_label in row_labels:
        row: list[Any] = [row_label]
        for column_label in column_labels:
            value = values.get((row_label, column_label))
            row.append(format_percentage(value) if value is not None else "-")
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_distribution(distribution: dict[str, float], title: str | None = None, sort_desc: bool = True) -> str:
    """Render a label -> share mapping as a two-column table."""
    items = sorted(distribution.items(), key=lambda pair: -pair[1]) if sort_desc else list(distribution.items())
    rows = [[label, format_percentage(share)] for label, share in items]
    return format_table(["Category", "Share"], rows, title=title)
