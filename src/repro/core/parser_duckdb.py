"""Parser for DuckDB's test format (an extended sqllogictest dialect).

DuckDB specifies its tests in the SLT format with additional runner commands
(``require``, ``load``, ``loop``/``endloop``, ``mode``, ``restart``,
``statement error`` with expected message) and *row-wise* expected results:
each expected-result line is one row with values separated by tabs (Listing 3).
"""

from __future__ import annotations

import re

from repro.core.parser_slt import _parse_block, _split_blocks
from repro.core.records import (
    ControlRecord,
    QueryRecord,
    Record,
    ResultFormat,
    StatementRecord,
    TestFile,
)

_LOOP_PATTERN = re.compile(r"^loop\s+(\w+)\s+(-?\d+)\s+(-?\d+)$", re.IGNORECASE)


def parse_duckdb_text(text: str, path: str = "<memory>", suite: str = "duckdb") -> TestFile:
    """Parse DuckDB-test-format ``text`` into a :class:`TestFile`.

    The base SLT parsing is reused; afterwards, query expectations are
    re-interpreted row-wise (splitting each expected line on tabs), and
    ``loop``/``endloop`` blocks are expanded by substituting the loop variable
    into the templated records (the paper notes DuckDB's runner provides
    execution-flow control beyond plain SLT).
    """
    test_file = TestFile(path=path, suite=suite, source_lines=len(text.splitlines()))
    raw_records: list[Record] = []
    for start_line, lines in _split_blocks(text):
        raw_records.extend(_parse_block(lines, start_line, path))

    for record in raw_records:
        if isinstance(record, QueryRecord) and record.result_format is ResultFormat.VALUE_WISE:
            rows = [line.split("\t") if "\t" in line else line.split() for line in record.expected_values]
            if record.expected_values and all(len(row) == max(len(record.type_string), 1) for row in rows):
                record.result_format = ResultFormat.ROW_WISE
                record.expected_rows = rows
                record.expected_values = []

    test_file.records = _expand_loops(raw_records)
    return test_file


def parse_duckdb_file(path: str, suite: str = "duckdb") -> TestFile:
    """Parse the DuckDB-format test file at ``path``."""
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        return parse_duckdb_text(handle.read(), path=path, suite=suite)


def _expand_loops(records: list[Record]) -> list[Record]:
    """Expand ``loop var start end`` ... ``endloop`` blocks by substitution."""
    expanded: list[Record] = []
    index = 0
    while index < len(records):
        record = records[index]
        if isinstance(record, ControlRecord) and record.command == "loop":
            match = _LOOP_PATTERN.match(record.raw.strip()) if record.raw else None
            if match is None and len(record.arguments) == 3:
                variable, start_text, end_text = record.arguments
            elif match is not None:
                variable, start_text, end_text = match.group(1), match.group(2), match.group(3)
            else:
                expanded.append(record)
                index += 1
                continue
            # find the matching endloop (loops do not nest in practice)
            body: list[Record] = []
            cursor = index + 1
            while cursor < len(records):
                candidate = records[cursor]
                if isinstance(candidate, ControlRecord) and candidate.command == "endloop":
                    break
                body.append(candidate)
                cursor += 1
            expanded.append(record)  # keep the control record for RQ1 statistics
            for value in range(int(start_text), int(end_text)):
                for template in body:
                    expanded.append(_substitute(template, variable, value))
            if cursor < len(records):
                expanded.append(records[cursor])  # the endloop record
            index = cursor + 1
            continue
        expanded.append(record)
        index += 1
    return expanded


def _substitute(record: Record, variable: str, value: int) -> Record:
    """Return a copy of ``record`` with ``${var}`` occurrences substituted."""
    import copy

    clone = copy.deepcopy(record)
    needle = "${" + variable + "}"
    if isinstance(clone, (StatementRecord, QueryRecord)):
        clone.sql = clone.sql.replace(needle, str(value))
    if isinstance(clone, QueryRecord):
        clone.expected_values = [entry.replace(needle, str(value)) for entry in clone.expected_values]
        clone.expected_rows = [[cell.replace(needle, str(value)) for cell in row] for row in clone.expected_rows]
    return clone
