"""Deprecated import shim — the DuckDB parser now lives in :mod:`repro.formats.duckdb`.

Kept so seed-era imports keep working; new code should go through the format
registry (:func:`repro.formats.get_format`).  Importing it warns with
:class:`DeprecationWarning`; the shim is scheduled for removal two release
cycles after the streaming-engine release (see docs/ARCHITECTURE.md,
"Deprecations").
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.core.parser_duckdb is deprecated; import from repro.formats.duckdb "
    "or use repro.formats.get_format('duckdb')",
    DeprecationWarning,
    stacklevel=2,
)

from repro.formats.duckdb import (
    _LOOP_PATTERN,
    DuckDBFormat,
    _expand_loops,
    _substitute,
    parse_duckdb_file,
    parse_duckdb_text,
)

__all__ = [
    "parse_duckdb_text",
    "parse_duckdb_file",
    "DuckDBFormat",
    "_expand_loops",
    "_substitute",
    "_LOOP_PATTERN",
]
