"""Transplanting test suites: running a donor's suite on host DBMSs.

The paper's RQ3 executes each suite on its *donor* (the DBMS it was written
for) and RQ4 executes each suite on every *host*.  :func:`run_transplant`
produces one :class:`TransplantResult` per (suite, host) pair, and
:func:`run_matrix` produces the full matrix behind Figure 4 / Tables 4 and 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adapters.base import DBMSAdapter
from repro.adapters.faults import FaultReport, FaultSummary
from repro.adapters.registry import create_adapter
from repro.core.records import TestSuite
from repro.core.runner import RecordOutcome, SuiteResult, TestRunner
from repro.perf import cache as perf_cache

#: Host names used throughout the experiments, in the paper's column order.
DEFAULT_HOSTS = ("sqlite", "postgres", "duckdb", "mysql")

#: Which adapter acts as the donor for each suite.
DONOR_OF_SUITE = {
    "slt": "sqlite",
    "sqlite": "sqlite",
    "postgres": "postgres",
    "postgresql": "postgres",
    "duckdb": "duckdb",
    "mysql": "mysql",
}

#: Extensions available on each donor when running its own suite (the DuckDB
#: suite pre-filters on ``require``; the paper reports 26.2% pre-filtered).
DEFAULT_EXTENSIONS = {
    "sqlite": {"series", "json1"},
    "postgres": {"plpgsql"},
    "duckdb": {"json", "parquet"},
    "mysql": set(),
}


@dataclass
class TransplantResult:
    """Outcome of running one donor suite on one host."""

    suite: str
    host: str
    donor: str
    result: SuiteResult
    crashes: list[FaultReport] = field(default_factory=list)
    hangs: list[FaultReport] = field(default_factory=list)

    @property
    def is_donor_run(self) -> bool:
        return DONOR_OF_SUITE.get(self.suite, self.suite) == self.host

    @property
    def success_rate(self) -> float:
        return self.result.success_rate


def run_transplant(
    suite: TestSuite,
    host: str,
    adapter: DBMSAdapter | None = None,
    float_tolerance: float = 0.0,
    translate_dialect: bool = False,
    available_extensions: set[str] | None = None,
    max_records_per_file: int | None = None,
    workers: int = 1,
    executor: str = "auto",
) -> TransplantResult:
    """Run ``suite`` on ``host`` and collect results plus crash/hang reports.

    ``workers > 1`` shards the suite's files across a worker pool (see
    :mod:`repro.core.parallel`); the merged result is identical to the serial
    run.  ``executor`` selects the pool flavour (``"process"``, ``"thread"``,
    or ``"auto"``).
    """
    donor = DONOR_OF_SUITE.get(suite.name, suite.name)
    if adapter is None:
        adapter = create_adapter(host)
        if workers <= 1:
            # the sharded path builds fresh adapters inside the workers; only
            # the serial path executes on this instance (run_file reconnects
            # via reset() anyway, but connecting here keeps seed behaviour)
            adapter.connect()
    if available_extensions is None:
        available_extensions = DEFAULT_EXTENSIONS.get(host, set()) if donor == host else set()
    runner = TestRunner(
        adapter,
        host_name=host,
        available_extensions=available_extensions,
        float_tolerance=float_tolerance,
        translate_dialect=translate_dialect,
        donor_dialect=donor,
        max_records_per_file=max_records_per_file,
    )
    suite_result = runner.run_suite(suite, workers=workers, executor=executor)

    crashes: list[FaultReport] = []
    hangs: list[FaultReport] = []
    for file_result in suite_result.files:
        for record_result in file_result.results:
            if record_result.outcome is RecordOutcome.CRASH:
                crashes.append(FaultReport(dbms=host, kind="crash", statement=record_result.sql, message=record_result.error))
            elif record_result.outcome is RecordOutcome.HANG:
                hangs.append(FaultReport(dbms=host, kind="hang", statement=record_result.sql, message=record_result.error))
    return TransplantResult(suite=suite.name, host=host, donor=donor, result=suite_result, crashes=crashes, hangs=hangs)


@dataclass
class TransplantMatrix:
    """All (suite, host) transplant results of one campaign."""

    entries: dict[tuple[str, str], TransplantResult] = field(default_factory=dict)

    def add(self, result: TransplantResult) -> None:
        self.entries[(result.suite, result.host)] = result

    def get(self, suite: str, host: str) -> TransplantResult:
        return self.entries[(suite, host)]

    def suites(self) -> list[str]:
        return sorted({suite for suite, _ in self.entries})

    def hosts(self) -> list[str]:
        return sorted({host for _, host in self.entries})

    def success_rate(self, suite: str, host: str) -> float:
        return self.entries[(suite, host)].success_rate

    def fault_summary(self) -> FaultSummary:
        summary = FaultSummary()
        for entry in self.entries.values():
            for report in entry.crashes:
                summary.add(report)
            for report in entry.hangs:
                summary.add(report)
        return summary


def run_matrix(
    suites: dict[str, TestSuite],
    hosts: tuple[str, ...] = DEFAULT_HOSTS,
    float_tolerance: float = 0.0,
    translate_dialect: bool = False,
    max_records_per_file: int | None = None,
    workers: int = 1,
    executor: str = "auto",
    reuse_donor_runs_from: TransplantMatrix | None = None,
) -> TransplantMatrix:
    """Run every suite on every host (the Figure 4 campaign).

    ``reuse_donor_runs_from`` lets a translated campaign reuse the donor-on-
    donor entries of an already-computed plain matrix: translation is the
    identity when donor == host (the runner skips it outright), so those runs
    are exactly equal and re-executing them is pure redundancy.  The reuse is
    part of the cache layer and honours the global cache switch.
    """
    matrix = TransplantMatrix()
    for suite in suites.values():
        for host in hosts:
            if reuse_donor_runs_from is not None and perf_cache.caching_enabled():
                donor = DONOR_OF_SUITE.get(suite.name, suite.name)
                if donor == host and (suite.name, host) in reuse_donor_runs_from.entries:
                    matrix.add(reuse_donor_runs_from.get(suite.name, host))
                    continue
            matrix.add(
                run_transplant(
                    suite,
                    host,
                    float_tolerance=float_tolerance,
                    translate_dialect=translate_dialect,
                    max_records_per_file=max_records_per_file,
                    workers=workers,
                    executor=executor,
                )
            )
    return matrix
